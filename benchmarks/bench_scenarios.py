"""Benchmark: scenario-batched corner sweep vs looping the PR 3 engine.

The workload is a seed-stable 2000-instance random design
(:func:`repro.generators.random_design`) swept over 64 scenarios
(:func:`repro.generators.random_scenarios`: the three-corner envelope plus
Monte-Carlo derates).  Two contenders produce the worst slack of every
scenario under *all three delay models*:

* **per-scenario loop** -- what a corner sweep cost before the scenario
  axis: materialize each scenario as scaled inputs
  (:func:`repro.scenarios.scaled_design` /
  :func:`~repro.scenarios.scaled_parasitics`), rebuild the
  :class:`~repro.graph.DesignDB` + :class:`~repro.graph.TimingGraph`
  pipeline, and read the three worst slacks -- 64 full re-ingests;
* **scenario batch** -- one
  :meth:`~repro.graph.TimingGraph.analyze_scenarios` call: a single
  scenario-batched forest solve plus one ``(edges, 64, 3)`` levelized
  propagation.

Parity is asserted at rtol 1e-12 for every scenario and every model (a
speedup over a disagreeing engine would be meaningless), and the speedup is
asserted **>= 8x**.  The printed table is the record for
``docs/performance.md``.
"""

import time

import pytest

from repro.generators import random_design, random_scenarios
from repro.graph import TimingGraph
from repro.scenarios import scaled_design, scaled_parasitics
from repro.sta.delaycalc import DelayModel
from repro.utils.tables import format_table

N_INSTANCES = 2_000
N_SCENARIOS = 64
PERIOD = 2e-9
THRESHOLD = 0.5
INPUT_DRIVE = 120.0
MODELS = (DelayModel.ELMORE, DelayModel.UPPER_BOUND, DelayModel.LOWER_BOUND)


def _best(function, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def workload():
    design, parasitics = random_design(N_INSTANCES, seed=7)
    scenarios = random_scenarios(N_SCENARIOS, seed=11)
    graph = TimingGraph(
        design,
        dict(parasitics),
        clock_period=PERIOD,
        threshold=THRESHOLD,
        input_drive_resistance=INPUT_DRIVE,
    )
    return design, parasitics, scenarios, graph


def _loop_sweep(design, parasitics, scenarios):
    """The pre-scenario-axis pipeline: one full re-ingest per scenario."""
    slacks = []
    for scenario in scenarios:
        reference = TimingGraph(
            scaled_design(design, scenario),
            {
                name: scaled_parasitics(record, scenario)
                for name, record in parasitics.items()
            },
            clock_period=scenario.clock_period or PERIOD,
            threshold=(
                THRESHOLD if scenario.threshold is None else scenario.threshold
            ),
            input_drive_resistance=INPUT_DRIVE * scenario.drive_derate,
        )
        slacks.append([reference.worst_slack(model) for model in MODELS])
    return slacks


def test_scenario_sweep_speedup(benchmark, workload, report):
    design, parasitics, scenarios, graph = workload

    batched_time, batched = _best(
        lambda: graph.analyze_scenarios(scenarios, with_critical_paths=False),
        repeats=3,
    )
    loop_time, loop = _best(lambda: _loop_sweep(design, parasitics, scenarios), repeats=1)

    # Parity first: every scenario, every model, rtol 1e-12.
    worst_mismatch = 0.0
    for index in range(N_SCENARIOS):
        for column in range(len(MODELS)):
            want = loop[index][column]
            got = float(batched.worst_slack[index, column])
            worst_mismatch = max(
                worst_mismatch, abs(got - want) / max(abs(want), 1e-18)
            )
    assert worst_mismatch < 1e-12, f"worst slack mismatch {worst_mismatch:.3e}"

    benchmark(
        lambda: graph.analyze_scenarios(scenarios, with_critical_paths=False)
    )

    speedup = loop_time / batched_time
    rows = [
        (
            f"per-scenario loop ({N_SCENARIOS} full re-ingests)",
            loop_time * 1e3,
            1.0,
        ),
        (
            f"scenario batch (one solve, {N_SCENARIOS} x 3 models)",
            batched_time * 1e3,
            speedup,
        ),
    ]
    table = format_table(
        ["workload", "time (ms)", "speedup"],
        rows,
        precision=3,
        title=(
            f"{N_SCENARIOS}-scenario sweep, {N_INSTANCES} instances, "
            "3 delay models"
        ),
    )
    report("scenario-sweep speedup", table)

    # Acceptance: >= 8x for the 64-scenario sweep (measured ~40-60x locally).
    assert speedup >= 8.0, f"scenario-sweep speedup {speedup:.2f}x < 8x"


def test_candidate_batching_matches_trial_swaps(workload):
    """What-if candidate evaluation equals actually applying each swap."""
    from repro.opt.sizing import next_drive_strength
    from repro.sta.cells import standard_cell_library

    design, parasitics, _, graph = workload
    library = standard_cell_library()
    candidates = []
    for name, record in sorted(graph.db.instances.items()):
        stronger = next_drive_strength(record.cell, library)
        if stronger is not None:
            candidates.append((name, stronger))
        if len(candidates) == 24:
            break
    predicted = graph.whatif_resize_worst_slack(
        candidates, DelayModel.UPPER_BOUND
    )
    for index in (0, len(candidates) // 2, len(candidates) - 1):
        name, cell = candidates[index]
        trial = TimingGraph(
            design,
            dict(parasitics),
            clock_period=PERIOD,
            threshold=THRESHOLD,
            input_drive_resistance=INPUT_DRIVE,
        )
        old = trial.db.instances[name].cell
        trial.resize_instance(name, cell)
        want = trial.worst_slack(DelayModel.UPPER_BOUND)
        trial.resize_instance(name, old)  # Instances are shared: restore.
        assert predicted[index] == pytest.approx(want, rel=1e-9)
