"""Benchmark of the Section IV algorithmic claim (E-alg).

The paper contrasts two ways of obtaining the characteristic times of every
output:

* the direct approach, which costs time proportional to the *square* of the
  number of elements when applied to all outputs, and
* the constructive (algebraic / recurrence) approach, which is linear.

This benchmark times both on chains of growing size and prints the measured
per-size timings; pytest-benchmark records the largest case of each so the
two numbers appear side by side in the benchmark table.
"""

import time

import pytest

from repro.core.networks import rc_ladder
from repro.core.timeconstants import characteristic_times, characteristic_times_all
from repro.utils.tables import format_table

SIZES = (50, 100, 200, 400)
LARGEST = SIZES[-1]


def all_outputs_quadratic(tree):
    """The O(N^2) route: independent direct summation per output."""
    return {node: characteristic_times(tree, node) for node in tree.nodes if node != tree.root}


def all_outputs_linear(tree):
    """The O(N) route: the shared-recurrence computation of all outputs at once."""
    return characteristic_times_all(tree, [n for n in tree.nodes if n != tree.root])


def _measure(function, tree, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function(tree)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def scaling_table():
    rows = []
    for size in SIZES:
        tree = rc_ladder(size, 10.0, 1e-12)
        quadratic = _measure(all_outputs_quadratic, tree)
        linear = _measure(all_outputs_linear, tree)
        rows.append((size, quadratic * 1e3, linear * 1e3, quadratic / linear))
    return rows


def test_scaling_quadratic_baseline(benchmark, scaling_table, report):
    tree = rc_ladder(LARGEST, 10.0, 1e-12)
    result = benchmark(all_outputs_quadratic, tree)
    assert len(result) == LARGEST

    table = format_table(
        ["sections", "direct all-outputs (ms)", "linear all-outputs (ms)", "speedup"],
        scaling_table,
        precision=4,
        title="E-alg: quadratic vs linear computation of all outputs",
    )
    report("E-alg: scaling study", table)

    # The linear algorithm must win, and win by more on bigger networks.
    speedups = [row[3] for row in scaling_table]
    assert speedups[-1] > 5.0
    assert speedups[-1] > speedups[0]


def test_scaling_linear_algorithm(benchmark):
    tree = rc_ladder(LARGEST, 10.0, 1e-12)
    result = benchmark(all_outputs_linear, tree)
    assert len(result) == LARGEST


def test_linear_and_quadratic_agree_on_largest_case():
    tree = rc_ladder(LARGEST, 10.0, 1e-12)
    direct = all_outputs_quadratic(tree)
    fast = all_outputs_linear(tree)
    worst = max(abs(direct[n].tde - fast[n].tde) / direct[n].tde for n in direct)
    assert worst < 1e-9
