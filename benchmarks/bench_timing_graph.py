"""Benchmark: design-scale TimingGraph vs the legacy networkx TimingAnalyzer.

The workload is a seed-stable 5000-instance random design
(:func:`repro.generators.random_design`) with per-net parasitics -- a mix of
lumped caps and RC trees.  Three measurements:

* **full analysis** -- everything a design sign-off needs: ingest the
  parasitics, build the engine and produce arrivals for *all three delay
  models* (Elmore + both bounds -- what the paper's ternary ``OK`` verdict
  consumes).  Legacy: ``TimingAnalyzer`` with its shared stage cache, three
  ``run()`` calls.  New: ``DesignDB`` (one batched FlatForest solve) plus
  ``TimingGraph`` (one levelization, per-level vectorized relaxations for all
  models at once).  Asserted **>= 10x**.
* **incremental ECO re-timing** -- a sequence of random per-net parasitic
  edits, each followed by a worst-slack query.  The graph re-solves one stage
  tree and re-propagates only the downstream cone; the legacy engine can only
  re-run the full analysis.  Amortized per-edit speedup asserted **>= 50x**
  (measured in the thousands).
* **parity** -- arrivals and worst slacks of the two engines agree at
  rtol 1e-12 across all three models, before and after the edit sequence.
  A speedup over an engine that disagrees would be meaningless.

The printed table doubles as the record for ``docs/performance.md``.
"""

import random
import time

import pytest

from repro.generators import random_design
from repro.graph import DesignDB, TimingGraph
from repro.sta.analysis import TimingAnalyzer
from repro.sta.delaycalc import DelayModel
from repro.sta.parasitics import lumped
from repro.utils.tables import format_table

N_INSTANCES = 5_000
PERIOD = 2e-9
EDITS = 60
MODELS = (DelayModel.ELMORE, DelayModel.UPPER_BOUND, DelayModel.LOWER_BOUND)


def _best(function, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def workload():
    return random_design(N_INSTANCES, seed=7)


def _legacy_full(design, parasitics):
    analyzer = TimingAnalyzer(design, parasitics, clock_period=PERIOD)
    return {model: analyzer.run(model) for model in MODELS}


def _graph_full(design, parasitics):
    graph = TimingGraph(DesignDB(design, parasitics), clock_period=PERIOD)
    graph.arrivals_matrix
    return graph


def _assert_parity(graph, legacy_reports, rtol=1e-12):
    for model in MODELS:
        report = legacy_reports[model]
        arrivals = graph.arrivals(model)
        worst = 0.0
        for pin, want in report.arrivals.items():
            if want > 0.0:
                worst = max(worst, abs(arrivals[pin] - want) / want)
        assert worst < rtol, f"{model}: worst arrival mismatch {worst:.3e}"
        assert graph.worst_slack(model) == pytest.approx(report.worst_slack, rel=rtol)


def test_timing_graph_speedup(benchmark, workload, report):
    design, parasitics = workload

    legacy_time, legacy_reports = _best(
        lambda: _legacy_full(design, parasitics), repeats=2
    )
    graph_time, graph = _best(lambda: _graph_full(design, parasitics), repeats=3)
    _assert_parity(graph, legacy_reports)

    # Incremental ECO loop: random lumped-parasitic edits, worst slack after
    # each.  The legacy engine's only option per edit is a full re-analysis.
    rng = random.Random(1)
    nets = graph.db.timed_nets()
    edits = [(rng.choice(nets), rng.uniform(1e-15, 8e-14)) for _ in range(EDITS)]

    def eco_loop():
        for net, capacitance in edits:
            graph.update_net(net, lumped(net, capacitance))
            graph.worst_slack(DelayModel.UPPER_BOUND)

    start = time.perf_counter()
    eco_loop()
    per_edit = (time.perf_counter() - start) / EDITS

    # Exactness after the whole edit sequence, against both engines.
    edited = dict(parasitics)
    for net, capacitance in edits:
        edited[net] = lumped(net, capacitance)
    _assert_parity(graph, _legacy_full(design, edited))

    benchmark(lambda: _graph_full(design, parasitics))

    full_speedup = legacy_time / graph_time
    eco_speedup = legacy_time / per_edit
    rows = [
        ("legacy TimingAnalyzer, 3 models", legacy_time * 1e3, 1.0),
        ("TimingGraph full analysis (DB + graph + 3 models)", graph_time * 1e3, full_speedup),
        ("legacy full re-analysis per ECO edit", legacy_time * 1e3, 1.0),
        (f"TimingGraph per ECO edit (amortized over {EDITS})", per_edit * 1e3, eco_speedup),
    ]
    table = format_table(
        ["workload", "time (ms)", "speedup"],
        rows,
        precision=3,
        title=f"design-scale timing, {N_INSTANCES} instances",
    )
    report("timing-graph speedup", table)

    # Acceptance: >= 10x full-design analysis, >= 50x amortized incremental.
    assert full_speedup >= 10.0, f"full-analysis speedup {full_speedup:.2f}x < 10x"
    assert eco_speedup >= 50.0, f"amortized ECO speedup {eco_speedup:.2f}x < 50x"


def test_incremental_cone_is_local(workload):
    """An edit's re-propagation touches a small cone, not the whole design."""
    design, parasitics = workload
    graph = TimingGraph(DesignDB(design, parasitics), clock_period=PERIOD)
    graph.arrivals_matrix
    rng = random.Random(2)
    nets = graph.db.timed_nets()
    total = 0
    for _ in range(20):
        net = rng.choice(nets)
        total += graph.update_net(net, lumped(net, rng.uniform(1e-15, 8e-14)))
    average_cone = total / 20
    assert average_cone < len(graph.vertex_names) / 10
