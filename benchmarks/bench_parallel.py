"""Benchmark: the sharded multi-core solve engine vs the serial kernels.

The workload is the scenario-sweep benchmark's design-scale plane: a
seed-stable 2000-instance random design
(:func:`repro.generators.random_design`) whose stage-tree forest is swept
over 64 scenarios (:func:`repro.generators.random_scenarios`) under full
``(S, N)`` effective element planes -- exactly what
:meth:`repro.graph.DesignDB.solve_scenarios` hands the engine.  Three
contenders produce every node's characteristic times under every scenario:

* ``engine="numpy"`` -- the serial vectorized kernels (the reference);
* ``engine="process"`` -- node-balanced shards solved by worker processes
  over shared-memory planes (:mod:`repro.parallel.engine`);
* the chunked axis -- a 256-scenario sweep through
  ``scenario_chunk``-bounded passes, demonstrating the bounded working set.

Parity is asserted at rtol 1e-12 for every array of every contender (the
sharding actually guarantees bitwise equality -- a speedup over a
disagreeing engine would be meaningless).  The speedup assertion -- **>= 2x
for the 64-scenario, 2000-instance sweep** -- applies on machines with at
least 4 usable cores; below that the sharded path cannot physically beat
the serial one and the run only records the measured ratio.  The printed
table is the record for ``docs/performance.md``.
"""

import time

import numpy as np
import pytest

from repro.generators import random_design, random_scenarios
from repro.graph import TimingGraph
from repro.parallel import default_job_count, scenario_chunks
from repro.utils.tables import format_table

N_INSTANCES = 2_000
N_SCENARIOS = 64
N_SCENARIOS_CHUNKED = 256
PERIOD = 2e-9
THRESHOLD = 0.5
INPUT_DRIVE = 120.0
FIELDS = ("tp", "tde", "tre", "ree", "total_capacitance")
CORES = default_job_count()
#: At least two workers even on small machines, so the shared-memory path
#: is always the one whose parity gets pinned; capped to avoid oversharding.
JOBS = max(2, min(CORES, 8))


def _best(function, repeats=5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def workload():
    design, parasitics = random_design(N_INSTANCES, seed=7)
    graph = TimingGraph(
        design,
        dict(parasitics),
        clock_period=PERIOD,
        threshold=THRESHOLD,
        input_drive_resistance=INPUT_DRIVE,
    )
    forest = graph.db.forest
    rng = np.random.default_rng(11)
    n = forest.node_count

    def planes(count):
        # Full node-major effective element planes (transposed views), the
        # layout DesignDB.solve_scenarios hands the engine.
        return {
            "edge_r": (forest._edge_r[:, None] * rng.uniform(0.85, 1.2, (n, count))).T,
            "edge_c": (forest._edge_c[:, None] * rng.uniform(0.85, 1.2, (n, count))).T,
            "node_c": (forest._node_c[:, None] * rng.uniform(0.85, 1.2, (n, count))).T,
        }

    return graph, forest, planes(N_SCENARIOS), planes(N_SCENARIOS_CHUNKED)


def _assert_parity(got, want, label):
    worst = 0.0
    for name in FIELDS:
        a = np.asarray(getattr(got, name))
        b = np.asarray(getattr(want, name))
        scale = np.maximum(np.abs(b), 1e-18)
        worst = max(worst, float(np.max(np.abs(a - b) / scale)))
    assert worst < 1e-12, f"{label}: worst relative mismatch {worst:.3e}"
    return worst


def test_sharded_engine_speedup(benchmark, workload, report):
    graph, forest, planes, _ = workload

    # Warm both paths (worker-pool fork, shared-block creation, page cache).
    serial_result = forest.solve_batch(**planes, count=N_SCENARIOS, engine="numpy")
    sharded_result = forest.solve_batch(
        **planes, count=N_SCENARIOS, engine="process", jobs=JOBS
    )
    worst = _assert_parity(sharded_result, serial_result, "sharded vs serial")
    del serial_result, sharded_result

    serial_time, _ = _best(
        lambda: forest.solve_batch(**planes, count=N_SCENARIOS, engine="numpy")
    )
    sharded_time, _ = _best(
        lambda: forest.solve_batch(
            **planes, count=N_SCENARIOS, engine="process", jobs=JOBS
        )
    )
    speedup = serial_time / sharded_time

    sweep_serial, _ = _best(
        lambda: graph.db.solve_scenarios(
            random_scenarios(N_SCENARIOS, seed=11), engine="numpy"
        ),
        repeats=3,
    )
    sweep_sharded, _ = _best(
        lambda: graph.db.solve_scenarios(
            random_scenarios(N_SCENARIOS, seed=11), engine="process", jobs=JOBS
        ),
        repeats=3,
    )

    benchmark(
        lambda: forest.solve_batch(
            **planes, count=N_SCENARIOS, engine="process", jobs=JOBS
        )
    )

    rows = [
        ("forest solve, engine=numpy (serial reference)", serial_time * 1e3, 1.0),
        (
            f"forest solve, engine=process ({JOBS} workers)",
            sharded_time * 1e3,
            speedup,
        ),
        (
            "whole solve_scenarios, engine=numpy",
            sweep_serial * 1e3,
            1.0,
        ),
        (
            f"whole solve_scenarios, engine=process ({JOBS} workers)",
            sweep_sharded * 1e3,
            sweep_serial / sweep_sharded,
        ),
    ]
    table = format_table(
        ["workload", "time (ms)", "speedup"],
        rows,
        precision=3,
        title=(
            f"{N_SCENARIOS}-scenario x {N_INSTANCES}-instance sweep, "
            f"{CORES} usable cores, parity {worst:.1e}"
        ),
    )
    report("sharded-engine speedup", table)

    # Acceptance: >= 2x on >= 4 cores.  Fewer cores cannot express the
    # speedup -- those runs still pin parity above and record the ratio.
    if CORES >= 4:
        assert speedup >= 2.0, (
            f"sharded speedup {speedup:.2f}x < 2x on {CORES} cores"
        )


def test_chunked_axis_bounds_working_set(workload, report):
    _, forest, _, big_planes = workload
    n = forest.node_count

    serial = forest.solve_batch(**big_planes, count=N_SCENARIOS_CHUNKED, engine="numpy")
    chunked_serial = forest.solve_batch(
        **big_planes, count=N_SCENARIOS_CHUNKED, engine="numpy", scenario_chunk=48
    )
    chunked_sharded = forest.solve_batch(
        **big_planes,
        count=N_SCENARIOS_CHUNKED,
        engine="process",
        jobs=JOBS,
        scenario_chunk=48,
    )
    _assert_parity(chunked_serial, serial, "chunked serial vs serial")
    worst = _assert_parity(chunked_sharded, serial, "chunked sharded vs serial")

    pieces = scenario_chunks(N_SCENARIOS_CHUNKED, n, chunk=48)
    widest = max(hi - lo for lo, hi in pieces)
    report(
        "chunked scenario axis",
        f"{N_SCENARIOS_CHUNKED} scenarios x {n} nodes in {len(pieces)} passes; "
        f"working planes bounded at {widest} x {n} cells "
        f"({widest * n * 8 / 2**20:.1f} MiB each); parity {worst:.1e}",
    )
    assert len(pieces) >= 2
    assert widest * n * 8 < N_SCENARIOS_CHUNKED * n * 8
