"""Benchmark of the vectorized flat-tree engine against the dict engine.

Four measurements on the all-sink characteristic-times workload (the paper's
linear-time claim, scaled up):

* **compile+solve** -- ``FlatTree.from_tree`` plus a full vectorized solve,
  versus ``characteristic_times_all`` on a 10k-node random tree.  This is
  the one-shot cost and must be at least 5x faster.
* **re-solve** -- the amortized cost once compiled (what every incremental
  workload pays per iteration): two orders of magnitude.
* **candidate loop** -- a driver-sizing-style sweep: update two element
  values, query one output.  The flat incremental path versus rebuilding the
  tree and running the dict engine per candidate.
* **forest batch** -- 200 small nets solved in one ``FlatForest`` versus one
  at a time through the dict engine.

The printed table doubles as the record for ``docs/performance.md``.
"""

import time

import numpy as np
import pytest

from repro.core.timeconstants import characteristic_times_all
from repro.flat import FlatForest, FlatTree
from repro.generators.random_trees import (
    RandomTreeConfig,
    random_forest,
    random_tree,
)
from repro.utils.tables import format_table

#: The headline workload: a bushy 10k-node random tree (depth ~ log N, the
#: realistic shape for clock and signal nets; a pure chain degenerates the
#: level sweeps -- see docs/performance.md).
NODES = 10_000
CONFIG = RandomTreeConfig(nodes=NODES, branching_bias=1.0, distributed_fraction=0.3)
SMALL = RandomTreeConfig(nodes=60, branching_bias=0.8)
FOREST_TREES = 200


def _best(function, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def workload():
    tree = random_tree(42, CONFIG)
    flat = FlatTree.from_tree(tree)
    return tree, flat


@pytest.fixture(scope="module")
def measurements(workload):
    tree, flat = workload
    dict_time = _best(lambda: characteristic_times_all(tree, tree.nodes))
    compile_time = _best(lambda: FlatTree.from_tree(tree).solve())

    def re_solve():
        flat._times = None
        flat.solve()

    resolve_time = _best(re_solve)

    # Candidate loop: edit the same two elements, query one output.
    leaf = tree.leaves()[-1]
    candidates = np.linspace(50.0, 500.0, 40)

    def incremental_loop():
        for value in candidates:
            flat.update_resistance("n1", float(value))
            flat.update_capacitance(leaf, float(value) * 1e-15)
            flat.characteristic_times(leaf)

    small_tree = random_tree(7, SMALL)
    small_leaf = small_tree.leaves()[-1]
    small_flat = FlatTree.from_tree(small_tree)

    def incremental_small_loop():
        for value in candidates:
            small_flat.update_resistance("n1", float(value))
            small_flat.update_capacitance(small_leaf, float(value) * 1e-15)
            small_flat.characteristic_times(small_leaf)

    def rebuild_small_loop():
        for value in candidates:
            rebuilt = random_tree(7, SMALL)
            # The rebuild cost is what the pre-flat opt loops paid per
            # candidate; the edit itself is irrelevant to the timing.
            characteristic_times_all(rebuilt, [small_leaf])

    def reanalyse_10k_loop():
        # The pre-flat cost per candidate, sans rebuild: a full dict-engine
        # re-analysis of the 10k-node tree (measured once; it is slow).
        for value in candidates[:4]:
            characteristic_times_all(tree, [leaf])

    incremental_time = _best(incremental_loop, repeats=3)
    incremental_small = _best(incremental_small_loop, repeats=3)
    rebuild_small = _best(rebuild_small_loop, repeats=3)
    reanalyse_10k = _best(reanalyse_10k_loop, repeats=1) * (len(candidates) / 4.0)

    # Forest batch of small nets.
    forest = random_forest(FOREST_TREES, seed=100, config=SMALL)

    def forest_solve():
        forest._times = None
        forest.solve()

    forest_time = _best(forest_solve, repeats=3)
    trees = [random_tree(100 + s, SMALL) for s in range(FOREST_TREES)]

    def dict_loop():
        for member in trees:
            characteristic_times_all(member)

    dict_loop_time = _best(dict_loop, repeats=3)

    return {
        "dict": dict_time,
        "compile": compile_time,
        "resolve": resolve_time,
        "incremental_10k": incremental_time,
        "reanalyse_10k": reanalyse_10k,
        "incremental_small": incremental_small,
        "rebuild_small": rebuild_small,
        "forest": forest_time,
        "dict_loop": dict_loop_time,
    }


def test_flat_engine_speedup(benchmark, workload, measurements, report):
    tree, _ = workload
    benchmark(lambda: FlatTree.from_tree(tree).solve())

    m = measurements
    rows = [
        ("dict engine, all sinks (10k nodes)", m["dict"] * 1e3, 1.0),
        ("flat compile + solve", m["compile"] * 1e3, m["dict"] / m["compile"]),
        ("flat re-solve (amortized)", m["resolve"] * 1e3, m["dict"] / m["resolve"]),
        (
            "40-candidate loop, rebuild+dict (60 nodes)",
            m["rebuild_small"] * 1e3,
            1.0,
        ),
        (
            "40-candidate loop, flat incremental (60 nodes)",
            m["incremental_small"] * 1e3,
            m["rebuild_small"] / m["incremental_small"],
        ),
        (
            "40-candidate loop, dict re-analysis (10k nodes)",
            m["reanalyse_10k"] * 1e3,
            1.0,
        ),
        (
            "40-candidate loop, flat incremental (10k nodes)",
            m["incremental_10k"] * 1e3,
            m["reanalyse_10k"] / m["incremental_10k"],
        ),
        (f"{FOREST_TREES} nets, dict engine one-by-one", m["dict_loop"] * 1e3, 1.0),
        (
            f"{FOREST_TREES} nets, one FlatForest solve",
            m["forest"] * 1e3,
            m["dict_loop"] / m["forest"],
        ),
    ]
    table = format_table(
        ["workload", "time (ms)", "speedup"],
        rows,
        precision=3,
        title="flat engine vs dict engine",
    )
    report("flat-engine speedup", table)

    # Acceptance: >= 5x on the all-sink characteristic-times workload.
    assert m["dict"] / m["compile"] >= 5.0, (
        f"compile+solve speedup {m['dict'] / m['compile']:.2f}x < 5x"
    )
    assert m["dict"] / m["resolve"] >= 5.0
    # Incremental candidate evaluation must beat rebuilding by a wide margin.
    assert m["rebuild_small"] / m["incremental_small"] >= 5.0
    # Batching many nets must beat per-net dict analysis.
    assert m["dict_loop"] / m["forest"] >= 5.0


def test_flat_engine_parity_on_benchmark_tree(workload):
    """The speedup is only meaningful if the numbers agree."""
    tree, _ = workload
    # A fresh compile: the measurement fixture edits the shared instance.
    flat = FlatTree.from_tree(tree)
    reference = characteristic_times_all(tree, tree.nodes)
    times = flat.solve()
    worst_tde = 0.0
    worst_tre = 0.0
    for name, want in reference.items():
        i = flat.index(name)
        if want.tde > 0:
            worst_tde = max(worst_tde, abs(times.tde[i] - want.tde) / want.tde)
        if want.tre > 0:
            worst_tre = max(worst_tre, abs(times.tre[i] - want.tre) / want.tre)
    assert worst_tde < 1e-9
    assert worst_tre < 1e-9


def test_forest_batching_beats_per_tree_solves():
    """Shared level sweeps: one batched solve beats 200 individual solves."""
    forest = random_forest(200, seed=1, config=SMALL)
    members = forest.trees

    def one_by_one():
        for member in members:
            member._times = None
            member.solve()

    t_forest = _best(lambda: (setattr(forest, "_times", None), forest.solve()), repeats=3)
    t_members = _best(one_by_one, repeats=3)
    assert t_forest < t_members
