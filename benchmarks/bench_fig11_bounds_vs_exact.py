"""Benchmark / reproduction of Figure 11: bounds versus the exact response (E-fig11).

Times the full comparison (exact modal simulation of the Figure 7 network
plus envelope evaluation over 0-600 time units), prints the crossing table,
and asserts that the exact response never escapes the envelope and that each
exact crossing falls inside its delay bounds.
"""

from repro.experiments.figure11 import figure11_comparison
from repro.utils.tables import format_table


def run_comparison():
    return figure11_comparison(points=300, segments_per_line=40)


def test_fig11_bounds_vs_exact(benchmark, report):
    comparison = benchmark(run_comparison)

    table = format_table(
        ["threshold", "t_min (bound)", "t_exact (sim)", "t_max (bound)"],
        comparison.crossings,
        precision=5,
        title="Figure 11 -- exact simulated crossings vs delay bounds",
    )
    summary = (
        f"{table}\n"
        f"worst lower-bound escape: {comparison.check.worst_lower_violation:.3e}\n"
        f"worst upper-bound escape: {comparison.check.worst_upper_violation:.3e}\n"
        f"mean envelope width     : {comparison.mean_envelope_width:.4f}"
    )
    report("E-fig11: bounds vs exact simulation", summary)

    assert comparison.check.within(5e-3)
    for _, t_lower, t_exact, t_upper in comparison.crossings:
        assert t_lower <= t_exact <= t_upper
