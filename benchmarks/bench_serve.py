"""Benchmark: coalesced what-if service vs a serialized per-request loop.

The load generator drives a live :class:`repro.serve.TimingServer` over
real sockets, two ways:

* **serialized** -- one client, requests issued strictly one at a time
  against a zero-tick server: every what-if pays its own forest solve,
  the per-request floor a naive service would give every caller;
* **coalesced** -- ``N_CLIENTS`` concurrent clients (>= 64 per the
  acceptance bar; 128 here) against a ticked server: requests landing
  within the coalescing window merge into one candidates-as-scenarios
  solve through :meth:`~repro.graph.TimingGraph.whatif_resize_worst_slack`.

Both modes answer from identical session state (nothing mutates), so
every response -- serialized, coalesced, whatever batch it rode in -- is
checked against a direct in-process ``whatif_resize_worst_slack`` call at
rtol 1e-12 (in practice the scenario columns are bitwise independent and
the match is exact).  Throughput is requests/second over the whole burst;
latency is per-request wall time with p50/p99 reported.  The acceptance
assertion is **coalesced throughput >= 3x serialized** -- the whole point
of the batcher is that throughput *rises* under concurrency instead of
queueing linearly.
"""

import asyncio
import os
import time

import pytest

from repro.generators.random_designs import random_design
from repro.graph import DesignDB, TimingGraph
from repro.serve import ServeClient, TimingServer
from repro.serve.schema import parasitics_to_payload
from repro.sta.cells import standard_cell_library
from repro.sta.netlist import design_to_dict
from repro.utils.tables import format_table

N_INSTANCES = 300
N_CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "128"))
REQUESTS_PER_CLIENT = 4
N_REQUESTS = N_CLIENTS * REQUESTS_PER_CLIENT
TICK = 0.003
DEADLINE = 300.0
LIBRARY = standard_cell_library()


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


@pytest.fixture(scope="module")
def workload():
    design, parasitics = random_design(N_INSTANCES, seed=7)
    payload = {
        "name": "bench",
        "netlist": design_to_dict(design),
        "parasitics": [parasitics_to_payload(p) for p in parasitics.values()],
    }
    candidates = []
    for name, instance in sorted(design.instances.items()):
        cell = instance.cell.name
        if cell.endswith("_X1") and not instance.cell.is_sequential:
            candidates.append((name, cell[:-3] + "_X2"))
    assert len(candidates) >= 32
    direct = TimingGraph(DesignDB(design, parasitics))
    expected = direct.whatif_resize_worst_slack(
        [(instance, LIBRARY[cell]) for instance, cell in candidates]
    )
    oracle = {
        (instance, cell): float(score)
        for (instance, cell), score in zip(candidates, expected)
    }
    return payload, candidates, oracle


def _swap_for(candidates, index):
    return candidates[index % len(candidates)]


async def _serialized_burst(payload, candidates):
    """One client, one request at a time, zero-tick server: the floor."""
    server = TimingServer(port=0, tick=0.0)
    await server.start()
    client = ServeClient("127.0.0.1", server.port)
    try:
        await client.connect()
        await client.create_session(payload)
        latencies = []
        responses = []
        start = time.perf_counter()
        for index in range(N_REQUESTS):
            instance, cell = _swap_for(candidates, index)
            t0 = time.perf_counter()
            response = await client.whatif("bench", [[instance, cell]])
            latencies.append(time.perf_counter() - t0)
            responses.append(((instance, cell), response["scores"][0]))
        elapsed = time.perf_counter() - start
        return elapsed, latencies, responses, None
    finally:
        await client.close()
        await server.stop()


async def _coalesced_burst(payload, candidates):
    """N_CLIENTS concurrent clients against a ticked, coalescing server."""
    server = TimingServer(port=0, tick=TICK)
    await server.start()
    admin = ServeClient("127.0.0.1", server.port)
    clients = []
    try:
        await admin.connect()
        await admin.create_session(payload)
        for _ in range(N_CLIENTS):
            client = ServeClient("127.0.0.1", server.port)
            await client.connect()
            clients.append(client)

        latencies = []
        responses = []

        async def drive(worker, client):
            for round_index in range(REQUESTS_PER_CLIENT):
                index = worker + round_index * N_CLIENTS
                instance, cell = _swap_for(candidates, index)
                t0 = time.perf_counter()
                response = await client.whatif("bench", [[instance, cell]])
                latencies.append(time.perf_counter() - t0)
                responses.append(((instance, cell), response["scores"][0]))

        start = time.perf_counter()
        await asyncio.gather(
            *[drive(worker, client) for worker, client in enumerate(clients)]
        )
        elapsed = time.perf_counter() - start
        stats = (await admin.session_info("bench"))["batching"]
        return elapsed, latencies, responses, stats
    finally:
        for client in clients:
            await client.close()
        await admin.close()
        await server.stop()


def _check_parity(responses, oracle, label):
    worst = 0.0
    for key, got in responses:
        want = oracle[key]
        scale = max(abs(want), 1e-18)
        worst = max(worst, abs(got - want) / scale)
    assert worst < 1e-12, f"{label}: worst relative mismatch {worst:.3e}"
    return worst


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, DEADLINE))


def test_coalesced_throughput_beats_serialized_loop(benchmark, workload, report):
    payload, candidates, oracle = workload

    # Warm both paths once (session build, first solve, socket setup).
    _run(_serialized_burst(payload, candidates))
    _run(_coalesced_burst(payload, candidates))

    serial_elapsed, serial_lat, serial_responses, _ = _run(
        _serialized_burst(payload, candidates)
    )
    coal_elapsed, coal_lat, coal_responses, stats = _run(
        _coalesced_burst(payload, candidates)
    )

    worst_serial = _check_parity(serial_responses, oracle, "serialized")
    worst_coal = _check_parity(coal_responses, oracle, "coalesced")
    assert len(serial_responses) == N_REQUESTS
    assert len(coal_responses) == N_REQUESTS

    serial_rps = N_REQUESTS / serial_elapsed
    coal_rps = N_REQUESTS / coal_elapsed
    speedup = coal_rps / serial_rps

    benchmark.extra_info.update(
        {
            "clients": N_CLIENTS,
            "requests": N_REQUESTS,
            "serialized_rps": serial_rps,
            "coalesced_rps": coal_rps,
            "throughput_speedup": speedup,
            "serialized_p50_ms": _percentile(serial_lat, 0.50) * 1e3,
            "serialized_p99_ms": _percentile(serial_lat, 0.99) * 1e3,
            "coalesced_p50_ms": _percentile(coal_lat, 0.50) * 1e3,
            "coalesced_p99_ms": _percentile(coal_lat, 0.99) * 1e3,
            "max_batch_requests": stats["max_batch_requests"],
            "mean_batch_requests": stats["mean_batch_requests"],
        }
    )
    benchmark(lambda: _run(_coalesced_burst(payload, candidates)))

    rows = [
        (
            "serialized (1 client, tick=0)",
            serial_rps,
            _percentile(serial_lat, 0.50) * 1e3,
            _percentile(serial_lat, 0.99) * 1e3,
            1.0,
        ),
        (
            f"coalesced ({N_CLIENTS} clients, tick={TICK * 1e3:g} ms)",
            coal_rps,
            _percentile(coal_lat, 0.50) * 1e3,
            _percentile(coal_lat, 0.99) * 1e3,
            speedup,
        ),
    ]
    table = format_table(
        ["mode", "req/s", "p50 (ms)", "p99 (ms)", "throughput x"],
        rows,
        precision=2,
        title=(
            f"{N_REQUESTS} single-swap what-ifs on a {N_INSTANCES}-instance "
            f"design; batches up to {stats['max_batch_requests']} requests "
            f"(mean {stats['mean_batch_requests']:.1f}); "
            f"parity {max(worst_serial, worst_coal):.1e}"
        ),
    )
    report("coalesced what-if service", table)

    assert N_CLIENTS >= 64
    assert speedup >= 3.0, (
        f"coalesced throughput {coal_rps:.0f} req/s is only {speedup:.2f}x "
        f"the serialized loop's {serial_rps:.0f} req/s"
    )
