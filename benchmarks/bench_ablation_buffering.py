"""Ablation: repeater insertion vs the quadratic line-delay growth of Fig. 13.

The PLA sweep shows delay growing quadratically with line length.  Repeater
insertion is the structural fix; this ablation sweeps line length, finds the
optimal repeater count for each length, and reports the guaranteed delay of
the unbuffered and buffered lines side by side -- quadratic vs (approximately)
linear growth.
"""

import pytest

from repro.mos.drivers import DriverModel
from repro.opt.buffering import Repeater, compare_buffering, optimal_buffer_count
from repro.utils.tables import format_table

DRIVER = DriverModel("drv", effective_resistance=500.0, output_capacitance=20e-15)
REPEATER = Repeater("rep", drive_resistance=500.0, input_capacitance=20e-15, intrinsic_delay=30e-12)

#: Line lengths expressed as (total resistance, total capacitance): 1x .. 8x.
LINE_SCALES = (1, 2, 4, 8)
BASE_RESISTANCE = 2.0e3
BASE_CAPACITANCE = 0.4e-12
LOAD = 30e-15


@pytest.fixture(scope="module")
def buffering_rows():
    rows = []
    for scale in LINE_SCALES:
        comparison = compare_buffering(
            DRIVER,
            REPEATER,
            BASE_RESISTANCE * scale,
            BASE_CAPACITANCE * scale,
            LOAD,
        )
        rows.append(
            (
                scale,
                comparison.unbuffered.total_delay * 1e9,
                comparison.buffered.total_delay * 1e9,
                comparison.buffered.repeater_count,
                comparison.improvement,
            )
        )
    return rows


def test_buffering_vs_line_length(benchmark, buffering_rows, report):
    plan = benchmark(
        optimal_buffer_count,
        DRIVER,
        REPEATER,
        BASE_RESISTANCE * 4,
        BASE_CAPACITANCE * 4,
        LOAD,
    )
    assert plan.repeater_count >= 1

    table = format_table(
        ["line length (x)", "unbuffered (ns)", "buffered (ns)", "repeaters", "speed-up"],
        buffering_rows,
        precision=4,
        title="Ablation: repeater insertion vs line length (guaranteed 50% delays)",
    )
    report("ablation: repeater insertion", table)

    # Unbuffered delay grows ~quadratically (x8 vs x4 -> ~4x), buffered ~linearly.
    unbuffered = {row[0]: row[1] for row in buffering_rows}
    buffered = {row[0]: row[2] for row in buffering_rows}
    assert unbuffered[8] / unbuffered[4] > 3.0
    assert buffered[8] / buffered[4] < 2.6
    # Buffering never hurts, and pays off massively on the longest line.
    assert all(row[4] >= 1.0 for row in buffering_rows)
    assert buffering_rows[-1][4] > 3.0
