"""Benchmark-suite configuration.

Keeps the ``src`` layout importable without installation and provides the
report printer used by every per-figure benchmark: each benchmark both times
its kernel (pytest-benchmark) and prints the regenerated table so the run's
output doubles as the reproduction record (see EXPERIMENTS.md).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")
_SRC = os.path.abspath(_SRC)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest  # noqa: E402  (after sys.path fix)


@pytest.fixture
def report(capsys):
    """Print a block of text so it survives pytest's capture (shown with -s or on failure)."""

    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n===== {title} =====")
            print(body)

    return _print
