"""Ablation: bound tightness versus where the resistance sits (DESIGN.md).

The paper remarks that the bounds are "very tight in the case where most of
the resistance is in the pullup".  This ablation sweeps the split of a fixed
total resistance between the driver and the wire and reports the relative
width of the delay bounds, confirming (and quantifying) that remark.
"""

import pytest

from repro.core.bounds import BoundedResponse
from repro.core.timeconstants import characteristic_times
from repro.core.tree import RCTree
from repro.simulate.compare import bound_tightness
from repro.utils.tables import format_table

TOTAL_RESISTANCE = 1000.0
WIRE_CAPACITANCE = 1e-12
LOAD_CAPACITANCE = 1e-12
DRIVER_FRACTIONS = (0.95, 0.8, 0.6, 0.4, 0.2, 0.05)
THRESHOLDS = (0.2, 0.5, 0.8)


def build(driver_fraction: float) -> BoundedResponse:
    tree = RCTree()
    tree.add_resistor("in", "drv", TOTAL_RESISTANCE * driver_fraction)
    tree.add_line("drv", "out", TOTAL_RESISTANCE * (1.0 - driver_fraction), WIRE_CAPACITANCE)
    tree.add_capacitor("out", LOAD_CAPACITANCE)
    return BoundedResponse(characteristic_times(tree, "out"))


@pytest.fixture(scope="module")
def tightness_rows():
    return [
        (fraction, bound_tightness(build(fraction), THRESHOLDS))
        for fraction in DRIVER_FRACTIONS
    ]


def test_tightness_vs_resistance_split(benchmark, tightness_rows, report):
    result = benchmark(bound_tightness, build(0.5), THRESHOLDS)
    assert result > 0.0

    table = format_table(
        ["driver share of R", "mean relative bound width"],
        tightness_rows,
        precision=4,
        title="Ablation: bound tightness vs driver/wire resistance split",
    )
    report("ablation: bound tightness", table)

    widths = [row[1] for row in tightness_rows]
    # More resistance in the driver -> markedly tighter bounds (the relative
    # width is not exactly monotone near the fully wire-dominated end, so the
    # assertion compares the two regimes rather than every neighbouring pair).
    assert widths[0] < 0.15  # driver-dominated: bounds within ~15%
    assert widths[0] < 0.5 * widths[-1]
    assert max(widths[:3]) < min(widths[3:])
