"""Micro-benchmarks of the algebra and analysis kernels.

Not tied to a specific paper figure; these keep the cost of the core
operations visible so regressions are caught: two-port evaluation of a tree,
expression parsing, bound evaluation, and the per-output cost on a large
random tree.
"""

import numpy as np

from repro.algebra.compiler import tree_to_twoport
from repro.algebra.expression import parse_expression
from repro.core.bounds import delay_bounds, voltage_lower_bound, voltage_upper_bound
from repro.core.timeconstants import characteristic_times
from repro.generators.random_trees import RandomTreeConfig, random_tree

FIG7_TEXT = "(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9"

BIG_TREE = random_tree(seed=42, config=RandomTreeConfig(nodes=2000, branching_bias=0.6))
BIG_OUTPUT = BIG_TREE.leaves()[-1]


def test_parse_figure7_expression(benchmark):
    expr = benchmark(parse_expression, FIG7_TEXT)
    assert expr.to_twoport().td2 == 363.0


def test_twoport_evaluation_large_tree(benchmark):
    twoport = benchmark(tree_to_twoport, BIG_TREE, BIG_OUTPUT)
    assert twoport.ct > 0


def test_direct_characteristic_times_large_tree(benchmark):
    times = benchmark(characteristic_times, BIG_TREE, BIG_OUTPUT)
    assert times.tp > 0


def test_delay_bound_evaluation(benchmark):
    times = characteristic_times(BIG_TREE, BIG_OUTPUT)
    bounds = benchmark(delay_bounds, times, 0.5)
    assert bounds.lower <= bounds.upper


def test_vectorised_envelope_evaluation(benchmark):
    times = characteristic_times(BIG_TREE, BIG_OUTPUT)
    grid = np.linspace(0.0, 10.0 * times.tp, 10_000)

    def evaluate():
        return voltage_lower_bound(times, grid), voltage_upper_bound(times, grid)

    lower, upper = benchmark(evaluate)
    assert np.all(lower <= upper + 1e-12)
