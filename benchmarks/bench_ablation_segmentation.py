"""Ablation: how many lumped sections does a distributed line need? (DESIGN.md)

The characteristic-time engine handles URC lines in closed form, but the
exact simulator (and any external SPICE run) must lump them.  This ablation
sweeps the section count and reports the voltage and delay error against the
analytic diffusion-equation solution, which justifies the default of 20-50
sections used elsewhere in the repository.
"""

import pytest

from repro.distributed.segmentation import convergence_study, segmentation_error
from repro.utils.tables import format_table

SEGMENT_COUNTS = (1, 2, 3, 5, 10, 20, 50)


@pytest.fixture(scope="module")
def study():
    return convergence_study(segment_counts=SEGMENT_COUNTS)


def test_segmentation_convergence_table(benchmark, study, report):
    # Time a single representative case (10 sections) for the benchmark record.
    point = benchmark(segmentation_error, 1.0, 1.0, 10)
    assert point.segments == 10

    table = format_table(
        ["sections", "max |dV|", "50% delay error (RC)"],
        [(p.segments, p.max_error, p.delay_error_50) for p in study],
        precision=3,
        title="Ablation: lumped-section count vs analytic URC response",
    )
    report("ablation: URC segmentation", table)

    errors = [p.max_error for p in study]
    assert errors == sorted(errors, reverse=True)
    assert errors[-1] < 5e-3


def test_pi_beats_l_sections_at_equal_count(report):
    pi = segmentation_error(1.0, 1.0, 5, style="pi")
    ell = segmentation_error(1.0, 1.0, 5, style="L")
    report(
        "ablation: pi vs L sections (5 segments)",
        f"pi : max error {pi.max_error:.4f}, 50% delay error {pi.delay_error_50:+.4f} RC\n"
        f"L  : max error {ell.max_error:.4f}, 50% delay error {ell.delay_error_50:+.4f} RC",
    )
    assert abs(pi.delay_error_50) < abs(ell.delay_error_50)
