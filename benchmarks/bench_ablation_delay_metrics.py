"""Ablation: moment-based delay estimates vs the Elmore delay and the bounds.

The paper closes by noting that tighter bounds were being looked for; the
direction the field took was higher-order moment matching.  This ablation
quantifies, on representative nets, how much accuracy the second- and
third-moment estimates (D2M, AWE-2) buy over the plain Elmore delay at a 50%
threshold -- and contrasts them with the Penfield-Rubinstein bounds, which
are less precise but are the only numbers here carrying a guarantee.
"""

import pytest

from repro.apps.pla import pla_line_tree
from repro.core.networks import figure7_tree, rc_ladder, symmetric_fanout
from repro.moments.metrics import estimate_all
from repro.simulate.state_space import exact_step_response
from repro.utils.tables import format_table

CASES = {
    "figure7": (figure7_tree(), "out"),
    "ladder20": (rc_ladder(20, 20.0, 1e-12), "out"),
    "fanout4": (symmetric_fanout(4, 300.0, 150.0, 1e-12, 2e-12), "load3"),
    "pla60": (pla_line_tree(60), "out"),
}


@pytest.fixture(scope="module")
def metric_rows():
    rows = []
    for name, (tree, output) in CASES.items():
        exact = exact_step_response(tree, segments_per_line=40).delay(output, 0.5)
        estimates = estimate_all(tree, output, 0.5, segments_per_line=40, exact=exact)
        errors = estimates.errors_vs_exact()
        rows.append(
            (
                name,
                errors["elmore"] * 100.0,
                errors["single_pole"] * 100.0,
                errors["d2m"] * 100.0,
                errors["two_pole"] * 100.0,
                (estimates.bound_lower / exact - 1.0) * 100.0,
                (estimates.bound_upper / exact - 1.0) * 100.0,
            )
        )
    return rows


def test_delay_metric_accuracy(benchmark, metric_rows, report):
    tree, output = CASES["ladder20"]
    exact = exact_step_response(tree).delay(output, 0.5)
    estimates = benchmark(estimate_all, tree, output, 0.5, exact=exact)
    assert estimates.exact is not None

    table = format_table(
        ["network", "Elmore %", "1-pole %", "D2M %", "AWE-2 %", "PR lower %", "PR upper %"],
        metric_rows,
        precision=3,
        title="Ablation: 50%-delay estimate error vs exact (positive = pessimistic)",
    )
    report("ablation: delay metrics", table)

    for row in metric_rows:
        _, elmore, _, d2m, two_pole, lower, upper = row
        # The moment metrics beat raw Elmore everywhere...
        assert abs(d2m) < abs(elmore)
        assert abs(two_pole) < abs(elmore)
        # ...while the bounds keep their guarantee (lower below, upper above).
        assert lower <= 1e-6
        assert upper >= -1e-6
