"""Benchmark: the Numba-compiled ``"native"`` backend vs the numpy kernels.

Two workloads:

* the sharded-engine benchmark's design-scale plane -- a seed-stable
  2000-instance random design swept over 64 scenarios under full ``(S, N)``
  effective element planes -- run through the complete backend matrix
  (``numpy`` / ``contract`` / ``native`` serial / ``process`` / ``process``
  x ``native``), the acceptance surface for the compiled tier;
* a shape matrix (balanced / chain / random-binary forests) pinning that
  the compiled kernels hold parity and pick the right inner strategy
  (fused level sweeps on shallow shapes, compiled contraction rounds on
  chains) across topology classes.

Parity is asserted at rtol 1e-12 for every array of every contender
against the serial numpy reference (the compiled kernels replay the same
per-level, bucket-order accumulation, so only LLVM-level reassociation
separates them -- far inside the budget).  The speedup assertion --
**>= 2x over numpy for the 64-scenario, 2000-instance sweep** -- applies
to the best native arm; composition with process sharding is measured in
the same table.  An ECO check re-runs the matrix after ``replace_tree``
so the compiled path survives structure invalidation.  The printed tables
are the record for ``docs/performance.md``.

The whole module skips on machines without a working Numba JIT (the
``"native"`` backend itself degrades to numpy there -- pinned by
``tests/parallel/test_native.py`` -- but there is nothing to measure).
"""

import time

import numpy as np
import pytest

numba = pytest.importorskip("numba")

from repro.flat import FlatForest, FlatTree  # noqa: E402
from repro.flat.native import native_ready, native_status  # noqa: E402
from repro.generators import random_design  # noqa: E402
from repro.generators.random_trees import random_flat_tree  # noqa: E402
from repro.graph import TimingGraph  # noqa: E402
from repro.parallel import default_job_count, last_selection  # noqa: E402
from repro.utils.tables import format_table  # noqa: E402

N_INSTANCES = 2_000
N_SCENARIOS = 64
N_SHAPE_NODES = 4_000
PERIOD = 2e-9
THRESHOLD = 0.5
INPUT_DRIVE = 120.0
FIELDS = ("tp", "tde", "tre", "ree", "total_capacitance")
CORES = default_job_count()
#: Same sharding policy as bench_parallel: at least two workers so the
#: process x native composition is always exercised, capped at eight.
JOBS = max(2, min(CORES, 8))

#: The full backend matrix: (row label, engine, jobs).
MATRIX = (
    ("numpy (serial reference)", "numpy", None),
    ("contract", "contract", None),
    ("native, serial", "native", 1),
    (f"process ({JOBS} workers)", "process", JOBS),
    (f"native x process ({JOBS} workers)", "native", JOBS),
)

pytestmark = pytest.mark.skipif(
    not native_ready(),
    reason=f"native kernels unavailable ({native_status()})",
)


def _best(function, repeats=5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_parity(got, want, label):
    worst = 0.0
    for name in FIELDS:
        a = np.asarray(getattr(got, name))
        b = np.asarray(getattr(want, name))
        scale = np.maximum(np.abs(b), 1e-30)
        worst = max(worst, float(np.max(np.abs(a - b) / scale)))
    assert worst < 1e-12, f"{label}: worst relative mismatch {worst:.3e}"
    return worst


def _planes(forest, count, seed):
    rng = np.random.default_rng(seed)
    n = forest.node_count
    return {
        "edge_r": (forest._edge_r[:, None] * rng.uniform(0.85, 1.2, (n, count))).T,
        "edge_c": (forest._edge_c[:, None] * rng.uniform(0.85, 1.2, (n, count))).T,
        "node_c": (forest._node_c[:, None] * rng.uniform(0.85, 1.2, (n, count))).T,
    }


@pytest.fixture(scope="module")
def design_workload():
    design, parasitics = random_design(N_INSTANCES, seed=7)
    graph = TimingGraph(
        design,
        dict(parasitics),
        clock_period=PERIOD,
        threshold=THRESHOLD,
        input_drive_resistance=INPUT_DRIVE,
    )
    forest = graph.db.forest
    return forest, _planes(forest, N_SCENARIOS, seed=11)


def _chain_tree(nodes, seed):
    rng = np.random.default_rng(seed)
    parent = [-1] + list(range(nodes - 1))
    edge_r = np.concatenate([[0.0], rng.uniform(1.0, 1000.0, nodes - 1)])
    edge_c = np.concatenate([[0.0], rng.uniform(1e-15, 1e-12, nodes - 1)])
    node_c = np.concatenate([[0.0], rng.uniform(1e-15, 1e-12, nodes - 1)])
    return FlatTree.from_arrays(parent, edge_r, edge_c, node_c)


def _balanced_tree(nodes, seed):
    rng = np.random.default_rng(seed)
    parent = [-1] + [(index - 1) // 2 for index in range(1, nodes)]
    edge_r = np.concatenate([[0.0], rng.uniform(1.0, 1000.0, nodes - 1)])
    edge_c = np.concatenate([[0.0], rng.uniform(1e-15, 1e-12, nodes - 1)])
    node_c = np.concatenate([[0.0], rng.uniform(1e-15, 1e-12, nodes - 1)])
    return FlatTree.from_arrays(parent, edge_r, edge_c, node_c)


def _shape_forests():
    return {
        "balanced": FlatForest([_balanced_tree(N_SHAPE_NODES, seed=3)]),
        "chain": FlatForest([_chain_tree(N_SHAPE_NODES, seed=3)]),
        "random": FlatForest(
            [random_flat_tree(seed=index) for index in range(60)]
        ),
    }


def test_native_backend_matrix_speedup(benchmark, design_workload, report):
    forest, planes = design_workload

    results = {}
    times = {}
    for label, engine, jobs in MATRIX:
        # Warm every path once (JIT load, pool fork, shared blocks).
        forest.solve_batch(**planes, count=N_SCENARIOS, engine=engine, jobs=jobs)
        times[label], results[label] = _best(
            lambda engine=engine, jobs=jobs: forest.solve_batch(
                **planes, count=N_SCENARIOS, engine=engine, jobs=jobs
            )
        )

    reference_label = MATRIX[0][0]
    reference = results[reference_label]
    worst = 0.0
    for label, _, _ in MATRIX[1:]:
        worst = max(worst, _assert_parity(results[label], reference, label))

    # The native arms must actually have run compiled kernels, not the
    # numpy fallback.
    forest.solve_batch(**planes, count=N_SCENARIOS, engine="native", jobs=1)
    selection = last_selection()
    assert selection["engine"] == "native" and not selection["reason"]

    benchmark(
        lambda: forest.solve_batch(
            **planes, count=N_SCENARIOS, engine="native", jobs=1
        )
    )

    serial_time = times[reference_label]
    rows = [
        (label, times[label] * 1e3, serial_time / times[label])
        for label, _, _ in MATRIX
    ]
    report(
        "native backend matrix",
        format_table(
            ["backend", "time (ms)", "speedup"],
            rows,
            precision=3,
            title=(
                f"{N_SCENARIOS}-scenario x {N_INSTANCES}-instance sweep, "
                f"{CORES} usable cores, parity {worst:.1e}"
            ),
        ),
    )

    # Acceptance: the best native arm clears 2x over the serial numpy
    # sweeps on the 64 x 2000 workload.
    native_best = max(
        serial_time / times[label]
        for label, engine, _ in MATRIX
        if engine == "native"
    )
    assert native_best >= 2.0, (
        f"best native speedup {native_best:.2f}x < 2x on {CORES} cores"
    )


def test_native_shape_matrix_parity(report):
    rows = []
    for shape, forest in _shape_forests().items():
        planes = _planes(forest, N_SCENARIOS, seed=5)
        reference = forest.solve_batch(
            **planes, count=N_SCENARIOS, engine="numpy"
        )
        for label, engine, jobs in MATRIX[1:]:
            forest.solve_batch(
                **planes, count=N_SCENARIOS, engine=engine, jobs=jobs
            )
            elapsed, result = _best(
                lambda engine=engine, jobs=jobs: forest.solve_batch(
                    **planes, count=N_SCENARIOS, engine=engine, jobs=jobs
                ),
                repeats=3,
            )
            worst = _assert_parity(result, reference, f"{shape}/{label}")
            rows.append((shape, label, elapsed * 1e3, worst))
    report(
        "native shape matrix",
        format_table(
            ["shape", "backend", "time (ms)", "worst rel err"],
            rows,
            precision=3,
            title=(
                f"{N_SHAPE_NODES}-node shapes x {N_SCENARIOS} scenarios, "
                "parity vs serial numpy"
            ),
        ),
    )
    assert rows, "shape matrix produced no measurements"


def test_native_parity_survives_eco(design_workload, report):
    forest, _ = design_workload
    eco = FlatForest(list(forest.trees))
    eco.replace_tree(3, random_flat_tree(seed=99))
    planes = _planes(eco, N_SCENARIOS, seed=13)
    reference = eco.solve_batch(**planes, count=N_SCENARIOS, engine="numpy")
    worst = 0.0
    for label, engine, jobs in MATRIX[1:]:
        result = eco.solve_batch(
            **planes, count=N_SCENARIOS, engine=engine, jobs=jobs
        )
        worst = max(
            worst, _assert_parity(result, reference, f"post-ECO {label}")
        )
    report(
        "native ECO parity",
        f"replace_tree(3) then full backend matrix: worst relative "
        f"mismatch {worst:.1e} (budget 1e-12)",
    )
    assert worst < 1e-12
