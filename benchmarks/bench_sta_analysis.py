"""Benchmark of the downstream STA flow built on the bounds.

Times a full timing run (graph construction, stage delay calculation over RC
trees, arrival propagation) on a synthetic pipeline of inverter chains with
extracted interconnect, in each of the three delay models.  This is the
"downstream adoption" benchmark: it shows the bounds being consumed at the
scale of a (small) digital block rather than a single net.
"""

import pytest

from repro.apps.nets import daisy_chain_net
from repro.mos.drivers import DriverModel
from repro.sta.analysis import TimingAnalyzer
from repro.sta.cells import standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import Design
from repro.sta.parasitics import rc_tree_parasitics

STAGES = 40


def build_design_and_parasitics():
    library = standard_cell_library()
    design = Design("inv_pipeline")
    design.add_clock("clk")
    design.add_primary_input("din")
    design.add_primary_output("dout")
    design.add_instance("ff_in", library["DFF_X1"], D="din", CK="clk", Q="n0")
    parasitics = {}
    previous = "n0"
    for stage in range(STAGES):
        net = f"n{stage + 1}"
        cell = library["INV_X1"] if stage % 2 else library["INV_X2"]
        design.add_instance(f"u{stage}", cell, A=previous, Y=net)
        wire = daisy_chain_net([0.0], 150e-6, driver=None)
        parasitics[net] = rc_tree_parasitics(net, wire, {f"u{stage + 1}/A": "load0"})
        previous = net
    design.add_instance("ff_out", library["DFF_X1"], D=previous, CK="clk", Q="dout")
    return design, parasitics


DESIGN, PARASITICS = build_design_and_parasitics()


@pytest.mark.parametrize("model", [DelayModel.ELMORE, DelayModel.UPPER_BOUND, DelayModel.LOWER_BOUND])
def test_sta_run(benchmark, model):
    analyzer = TimingAnalyzer(DESIGN, PARASITICS, clock_period=20e-9)
    report = benchmark(analyzer.run, model)
    assert len(report.endpoint_slacks) >= 2


def test_sta_certification(benchmark, report):
    analyzer = TimingAnalyzer(DESIGN, PARASITICS, clock_period=20e-9)
    verdict = benchmark(analyzer.certify)
    elmore = analyzer.run(DelayModel.ELMORE)
    report(
        "STA on a 40-stage pipeline",
        f"verdict at 20 ns period : {verdict.name}\n"
        f"worst slack (Elmore)    : {elmore.worst_slack * 1e9:+.3f} ns\n"
        f"critical path length    : {len(elmore.critical_path)} hops",
    )
    assert verdict.name in ("PASS", "INDETERMINATE", "FAIL")
