"""Benchmark / reproduction of Figure 13: PLA delay versus minterm count (E-fig13).

Times the whole sweep (2 .. 100 minterms, bounds at a 0.7 threshold), prints
the regenerated table, and checks the two conclusions the paper draws from
the log-log plot: quadratic growth and a guaranteed delay of roughly 10 ns at
100 minterms.
"""

from repro.experiments.figure13 import PAPER_MINTERM_COUNTS, figure13_sweep
from repro.utils.tables import format_table


def run_sweep():
    return figure13_sweep(PAPER_MINTERM_COUNTS)


def test_fig13_pla_sweep(benchmark, report):
    sweep = benchmark(run_sweep)

    table = format_table(
        ["minterms", "t_min (ns)", "t_max (ns)"],
        [(row.minterms, row.t_lower_ns, row.t_upper_ns) for row in sweep.rows],
        precision=4,
        title="Figure 13 -- PLA line delay bounds (threshold 0.7)",
    )
    summary = (
        f"{table}\n"
        f"upper bound at 100 minterms: {sweep.upper_bound_at_100_ns:.2f} ns (paper: ~10 ns)\n"
        f"log-log slope (upper bound): {sweep.loglog_slope():.2f} (paper: quadratic)"
    )
    report("E-fig13: PLA minterm sweep", summary)

    assert 8.0 <= sweep.upper_bound_at_100_ns <= 12.0
    assert 1.5 <= sweep.loglog_slope() <= 2.2
    uppers = [row.t_upper for row in sweep.rows]
    assert uppers == sorted(uppers)
