"""Benchmark / reproduction of Figure 10's delay-bound table (E-fig10a).

Regenerates the TMIN / TMAX rows for thresholds 0.1 .. 0.9 of the Figure 7
network through the full Section IV pipeline (expression -> two-port algebra
-> bound formulas), times that pipeline, and checks the rows against the
values printed in the paper.
"""

import pytest

from repro.algebra.expression import figure7_expression
from repro.core.bounds import delay_bound_table
from repro.core.networks import FIGURE10_DELAY_ROWS
from repro.experiments.figure10 import PAPER_THRESHOLDS
from repro.utils.tables import format_table


def regenerate_rows():
    times = figure7_expression().to_twoport().characteristic_times("out")
    return delay_bound_table(times, PAPER_THRESHOLDS)


def test_fig10_delay_table(benchmark, report):
    rows = benchmark(regenerate_rows)

    table = format_table(
        ["V", "TMIN (ours)", "TMAX (ours)", "TMIN (paper)", "TMAX (paper)"],
        [
            (ours[0], ours[1], ours[2], paper[1], paper[2])
            for ours, paper in zip(rows, FIGURE10_DELAY_ROWS)
        ],
        precision=5,
        title="Figure 10 (delay bounds) -- regenerated vs paper",
    )
    report("E-fig10a: delay-bound table", table)

    for ours, paper in zip(rows, FIGURE10_DELAY_ROWS):
        assert ours[1] == pytest.approx(paper[1], rel=5e-4, abs=5e-3)
        assert ours[2] == pytest.approx(paper[2], rel=5e-4)
