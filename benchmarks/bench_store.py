"""Benchmark: out-of-core shard store vs a fully materialized forest.

The workload is a streamed million-net random design
(:func:`repro.generators.stream_random_nets` -> :func:`repro.store.ingest_blocks`,
~13M RC nodes at the default net-size distribution).  Three measurements:

* **bounded-RSS ingest + solve** -- a subprocess fabricates, ingests and
  solves the whole design out of core and reports its own peak RSS
  (``ru_maxrss``).  Asserted **<= 25%** of the fully-materialized forest
  footprint (``nodes x 8 bytes x 11`` resident planes: five element/topology
  arrays, offsets/level buckets, and the three node-indexed result planes
  plus per-tree reductions an in-RAM :class:`~repro.flat.FlatForest` solve
  holds at once).  The subprocess is the measurement boundary because
  ``ru_maxrss`` is a process-lifetime high-water mark.
* **throughput** -- wall-clock ingest and solve rates (nets/s, nodes/s),
  printed for ``docs/performance.md``.
* **parity** -- the persisted out-of-core results agree at rtol 1e-12 with
  an in-RAM :func:`repro.parallel.solve_forest_batch` reference on a ~50k-net
  prefix subsample (the streamed generator is seed-stable block for block),
  under the numpy backend and -- where Numba is importable -- the native one.
  A memory bound over results that disagree would be meaningless.

``REPRO_BENCH_STORE_NETS`` scales the design (default 1,000,000 nets) so the
same benchmark smoke-tests in seconds under CI's constrained address space.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.flat.native import native_available
from repro.generators import stream_random_nets
from repro.parallel import ForestStructure, solve_forest_batch
from repro.store import StoredForest
from repro.store.format import depths_from_parent
from repro.utils.tables import format_table

N_NETS = int(os.environ.get("REPRO_BENCH_STORE_NETS", "1000000"))
SEED = 13
BLOCK_NETS = 4096
#: Planes a fully-materialized in-RAM solve keeps resident at once:
#: parent/depth/edge_r/edge_c/node_c + offsets/tree_id/level buckets
#: (~3 index planes' worth) + tde/tre/ree result planes.
MATERIALIZED_PLANES = 11
RSS_FRACTION = 0.25
#: The RSS oracle only binds at full scale: below ~1M nets the Python +
#: numpy interpreter baseline (~100 MB) dominates the subprocess's peak
#: RSS and the 25% budget measures nothing about the store.  Smoke runs
#: (CI's REPRO_BENCH_STORE_NETS override) still assert parity and print
#: the measured ratio.
RSS_ORACLE_MIN_NETS = 1_000_000
SUBSAMPLE_BLOCKS = max(1, min(12, N_NETS // BLOCK_NETS))  # ~50k nets
RTOL = 1e-12

_WORKER = """
import json, os, resource, sys, time
from repro.generators import stream_random_nets
from repro.store import StoredForest, ingest_blocks

n_nets, seed, block_nets, directory = (
    int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3]), sys.argv[4]
)
t0 = time.perf_counter()
manifest = ingest_blocks(
    stream_random_nets(n_nets, seed=seed, block_nets=block_nets),
    directory,
    overwrite=True,
)
t1 = time.perf_counter()
forest = StoredForest(directory)
times = forest.solve()
t2 = time.perf_counter()
# Stream a checksum off the memmap-backed result planes: proves the solve
# is readable end-to-end without pinning the full planes in RAM at once.
checksum = float(times.tp.sum())
payload = {
    "node_count": manifest.node_count,
    "tree_count": manifest.tree_count,
    "shard_count": len(manifest.shards),
    "ingest_s": t1 - t0,
    "solve_s": t2 - t1,
    "checksum": checksum,
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}
print(json.dumps(payload))
"""


@pytest.fixture(scope="module")
def out_of_core_run(tmp_path_factory):
    """Ingest + solve the full design in a subprocess; report its peak RSS."""
    directory = str(tmp_path_factory.mktemp("store") / "design.store")
    env = dict(os.environ)
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _WORKER, str(N_NETS), str(SEED), str(BLOCK_NETS), directory],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    stats = json.loads(completed.stdout.strip().splitlines()[-1])
    stats["directory"] = directory
    return stats


def _subsample_reference(engine):
    """In-RAM solve of the seed-stable ~50k-net prefix of the same stream."""
    blocks = list(
        stream_random_nets(
            SUBSAMPLE_BLOCKS * BLOCK_NETS, seed=SEED, block_nets=BLOCK_NETS
        )
    )
    node_offset = 0
    starts_parts, parent_parts, planes = [], [], ([], [], [])
    for block in blocks:
        starts_parts.append(block.starts[:-1] + node_offset)
        parent_parts.append(
            np.where(block.parent < 0, block.parent, block.parent + node_offset)
        )
        for part, name in zip(planes, ("edge_r", "edge_c", "node_c")):
            part.append(getattr(block, name))
        node_offset += block.node_count
    offsets = np.concatenate(starts_parts + [np.asarray([node_offset])])
    parent = np.concatenate(parent_parts)
    depth = depths_from_parent(parent)
    structure = ForestStructure(parent=parent, depth=depth, offsets=offsets)
    base = tuple(np.concatenate(part) for part in planes)
    times = solve_forest_batch(structure, base, (None, None, None), 1, engine=engine)
    return offsets, times


def _engines():
    engines = ["numpy"]
    if native_available():
        engines.append("native")
    return engines


def test_out_of_core_store(out_of_core_run, report):
    stats = out_of_core_run
    node_count = stats["node_count"]

    # --- bounded-RSS oracle ------------------------------------------
    materialized_bytes = node_count * 8 * MATERIALIZED_PLANES
    peak_bytes = stats["maxrss_kb"] * 1024
    budget = RSS_FRACTION * materialized_bytes
    rss_oracle = N_NETS >= RSS_ORACLE_MIN_NETS
    if rss_oracle:
        assert peak_bytes <= budget, (
            f"out-of-core peak RSS {peak_bytes / 1e6:.0f} MB exceeds "
            f"{RSS_FRACTION:.0%} of the {materialized_bytes / 1e6:.0f} MB "
            "materialized footprint"
        )

    # --- parity oracle on the seed-stable prefix subsample -----------
    stored = StoredForest(stats["directory"])
    stored_times = stored.solve()
    for engine in _engines():
        offsets, reference = _subsample_reference(engine)
        n = int(offsets[-1])
        trees = int(offsets.shape[0]) - 1
        np.testing.assert_allclose(
            np.asarray(stored_times.tde[:n]), reference.tde[0], rtol=RTOL
        )
        np.testing.assert_allclose(
            np.asarray(stored_times.tre[:n]), reference.tre[0], rtol=RTOL
        )
        np.testing.assert_allclose(
            np.asarray(stored_times.tp[:trees]), reference.tp[0], rtol=RTOL
        )
    subsample_nets = SUBSAMPLE_BLOCKS * BLOCK_NETS

    # --- report -------------------------------------------------------
    rows = [
        ("nets", f"{stats['tree_count']:,}"),
        ("nodes", f"{node_count:,}"),
        ("shards", f"{stats['shard_count']:,}"),
        ("ingest", f"{stats['ingest_s']:.2f} s "
                   f"({stats['tree_count'] / stats['ingest_s']:,.0f} nets/s)"),
        ("solve", f"{stats['solve_s']:.2f} s "
                  f"({node_count / stats['solve_s']:,.0f} nodes/s)"),
        ("peak RSS", f"{peak_bytes / 1e6:,.0f} MB"),
        ("materialized footprint", f"{materialized_bytes / 1e6:,.0f} MB"),
        ("RSS ratio", f"{peak_bytes / materialized_bytes:.1%}"
                      f" (budget {RSS_FRACTION:.0%}, "
                      + ("asserted" if rss_oracle else
                         f"informational below {RSS_ORACLE_MIN_NETS:,} nets")
                      + ")"),
        ("parity subsample", f"{subsample_nets:,} nets @ rtol {RTOL:g}"
                             f" [{', '.join(_engines())}]"),
    ]
    report(
        "out-of-core shard store (streamed ingest + solve)",
        format_table(["metric", "value"], [[k, v] for k, v in rows]),
    )
