"""Benchmark: pointer-jumping contraction vs the level sweeps on deep forests.

The level sweeps issue one numpy call per depth level -- O(depth) dispatch
overhead that erases the vectorization win on chain-shaped nets (the "depth
pathology" of docs/performance.md).  The contraction engine
(:mod:`repro.flat.contraction`) replays a ``ceil(log2(depth + 1))``-round
jump schedule instead, so its dispatch count is 14 where the chain sweep's
is 10k.

The workload solves a 4-scenario batch on one ~10k-node tree of each shape
class: the chain (maximal depth -- the pathology itself), the caterpillar
(spine depth with leaves at every level), the balanced binary tree (the
friendly case, where contraction's heavier rounds should *not* win much or
at all) and the star (depth 1, degenerate).  Parity against the serial
level sweeps is asserted at rtol 1e-12 for every array of every shape in
the same run as the timings -- a speedup over a disagreeing kernel would be
meaningless.

Acceptance: **>= 5x over the serial level sweeps on the 10k-node chain.**
The printed table is the record for docs/performance.md.
"""

import time

import numpy as np
import pytest

from repro.flat import FlatForest
from repro.flat.contraction import last_round_count
from repro.generators.random_trees import RandomTreeConfig, random_flat_tree
from repro.utils.tables import format_table

N_NODES = 10_000
N_SCENARIOS = 4
FIELDS = ("tp", "tde", "tre", "ree", "total_capacitance")


def _best(function, repeats=5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def _chain(nodes, seed):
    return random_flat_tree(seed, RandomTreeConfig(nodes=nodes, branching_bias=0.0))


def _caterpillar(nodes, seed):
    # Spine at even indices, a leaf hanging off at odd ones: depth ~ nodes/2.
    rng = np.random.default_rng(seed)
    parent = [-1]
    spine = 0
    for index in range(1, nodes + 1):
        parent.append(spine)
        if index % 2 == 1:
            spine = index
    return _from_parents(parent, rng)


def _balanced(nodes, seed):
    rng = np.random.default_rng(seed)
    parent = [-1] + [(index - 1) // 2 for index in range(1, nodes + 1)]
    return _from_parents(parent, rng)


def _star(nodes, seed):
    rng = np.random.default_rng(seed)
    return _from_parents([-1] + [0] * nodes, rng)


def _from_parents(parent, rng):
    from repro.flat import FlatTree

    n = len(parent)
    edge_r = np.concatenate([[0.0], rng.uniform(1.0, 1000.0, n - 1)])
    edge_c = np.concatenate([[0.0], rng.uniform(1e-15, 1e-12, n - 1)])
    node_c = np.concatenate([[0.0], rng.uniform(1e-15, 1e-12, n - 1)])
    return FlatTree.from_arrays(parent, edge_r, edge_c, node_c)


SHAPES = (
    ("chain", _chain),
    ("caterpillar", _caterpillar),
    ("balanced", _balanced),
    ("star", _star),
)


def _parity(got, want):
    worst = 0.0
    for name in FIELDS:
        a = np.asarray(getattr(got, name))
        b = np.asarray(getattr(want, name))
        scale = np.maximum(np.abs(b), 1e-30)
        worst = max(worst, float(np.max(np.abs(a - b) / scale)))
    return worst


@pytest.fixture(scope="module")
def forests():
    return {name: FlatForest([build(N_NODES, 7)]) for name, build in SHAPES}


def test_contraction_beats_level_sweeps_on_chains(benchmark, forests, report):
    rows = []
    chain_speedup = None
    worst_parity = 0.0
    rounds = {}
    for name, _ in SHAPES:
        forest = forests[name]
        serial = forest.solve_batch(count=N_SCENARIOS, engine="numpy")
        contracted = forest.solve_batch(count=N_SCENARIOS, engine="contract")
        rounds[name] = last_round_count()
        parity = _parity(contracted, serial)
        worst_parity = max(worst_parity, parity)
        assert parity < 1e-12, f"{name}: worst relative mismatch {parity:.3e}"
        del serial, contracted

        serial_time, _ = _best(
            lambda f=forest: f.solve_batch(count=N_SCENARIOS, engine="numpy")
        )
        contract_time, _ = _best(
            lambda f=forest: f.solve_batch(count=N_SCENARIOS, engine="contract")
        )
        speedup = serial_time / contract_time
        if name == "chain":
            chain_speedup = speedup
        depth = int(forests[name]._depth.max())
        rows.append(
            (
                f"{name} (depth {depth}, {rounds[name]} rounds)",
                serial_time * 1e3,
                contract_time * 1e3,
                speedup,
            )
        )

    # The single-scenario chain is the classic pathology from the docs: the
    # level sweeps' 10k-dispatch overhead against 14 contraction rounds.
    chain = forests["chain"]
    single_serial, _ = _best(lambda: chain.solve_batch(count=1, engine="numpy"))
    single_contract, _ = _best(lambda: chain.solve_batch(count=1, engine="contract"))
    rows.append(
        (
            "chain, single scenario",
            single_serial * 1e3,
            single_contract * 1e3,
            single_serial / single_contract,
        )
    )

    benchmark(lambda: chain.solve_batch(count=N_SCENARIOS, engine="contract"))

    table = format_table(
        ["topology", "level sweeps (ms)", "contraction (ms)", "speedup"],
        rows,
        precision=3,
        title=(
            f"{N_NODES}-node trees x {N_SCENARIOS} scenarios, "
            f"parity {worst_parity:.1e}"
        ),
    )
    report("contraction vs level sweeps", table)

    assert rounds["chain"] <= 15, rounds
    assert chain_speedup >= 5.0, (
        f"contraction speedup {chain_speedup:.2f}x < 5x on the {N_NODES}-node chain"
    )
