"""Benchmark / reproduction of Figure 5: the qualitative bound envelope (E-fig5).

Figure 5 is a sketch, so there is no number to match; the benchmark times the
envelope + exact-response sampling for the Figure 7 network and asserts the
structural facts the sketch depicts (ordered envelopes that sandwich the
exact response and converge to the final value).
"""

from repro.experiments.figure05 import figure05_envelope


def run_envelope():
    return figure05_envelope(points=200, segments_per_line=30)


def test_fig05_envelope(benchmark, report):
    envelope = benchmark(run_envelope)

    summary = (
        f"samples                    : {len(envelope.times)}\n"
        f"upper envelope at t=0      : {envelope.upper_start:.4f} (= 1 - T_De/T_P)\n"
        f"envelopes ordered          : {envelope.envelopes_ordered}\n"
        f"exact response inside      : {envelope.exact_inside}\n"
        f"both envelopes approach 1  : {envelope.approaches_one}"
    )
    report("E-fig5: qualitative form of the bounds", summary)

    assert envelope.envelopes_ordered
    assert envelope.exact_inside
    assert envelope.approaches_one
