"""Benchmark / reproduction of Figure 10's voltage-bound table (E-fig10b).

Regenerates the VMIN / VMAX rows for times 20 .. 2000 of the Figure 7
network and checks them against the paper's printed values.
"""

import pytest

from repro.algebra.expression import figure7_expression
from repro.core.bounds import voltage_bound_table
from repro.core.networks import FIGURE10_VOLTAGE_ROWS
from repro.experiments.figure10 import PAPER_TIMES
from repro.utils.tables import format_table


def regenerate_rows():
    times = figure7_expression().to_twoport().characteristic_times("out")
    return voltage_bound_table(times, PAPER_TIMES)


def test_fig10_voltage_table(benchmark, report):
    rows = benchmark(regenerate_rows)

    table = format_table(
        ["T", "VMIN (ours)", "VMAX (ours)", "VMIN (paper)", "VMAX (paper)"],
        [
            (ours[0], ours[1], ours[2], paper[1], paper[2])
            for ours, paper in zip(rows, FIGURE10_VOLTAGE_ROWS)
        ],
        precision=5,
        title="Figure 10 (voltage bounds) -- regenerated vs paper",
    )
    report("E-fig10b: voltage-bound table", table)

    for ours, paper in zip(rows, FIGURE10_VOLTAGE_ROWS):
        assert ours[1] == pytest.approx(paper[1], abs=5e-5)
        assert ours[2] == pytest.approx(paper[2], abs=5e-5)
