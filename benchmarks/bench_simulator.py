"""Benchmarks of the simulation substrate (modal vs transient engines).

These are substrate benchmarks rather than paper figures: they record how
expensive the "exact solution from circuit simulation" used by Fig. 11 is,
relative to the closed-form bounds, which is the whole point of the paper --
the bounds cost microseconds where the simulation costs milliseconds.
"""

import time

from repro.core.bounds import delay_bounds
from repro.core.networks import figure7_tree, rc_ladder
from repro.core.timeconstants import characteristic_times
from repro.simulate.state_space import exact_step_response
from repro.simulate.transient import transient_step_response

LADDER = rc_ladder(200, 10.0, 1e-12)


def test_modal_simulation_figure7(benchmark):
    response = benchmark(exact_step_response, figure7_tree(), segments_per_line=40)
    assert response.final_values.max() > 0.99


def test_modal_simulation_ladder200(benchmark):
    response = benchmark(exact_step_response, LADDER)
    assert len(response.nodes) == 200


def test_transient_simulation_ladder200(benchmark):
    times = characteristic_times(LADDER, "out")

    def run():
        return transient_step_response(LADDER, 5.0 * times.tp, steps=500)

    result = benchmark(run)
    assert result.voltages.shape[1] == 200


def test_bounds_thousands_of_times_cheaper_than_simulation(report):
    """Quantify the paper's 'computationally simple' claim on the Fig. 7 network."""
    tree = figure7_tree()
    start = time.perf_counter()
    for _ in range(100):
        times = characteristic_times(tree, "out")
        delay_bounds(times, 0.5)
    bound_time = (time.perf_counter() - start) / 100

    start = time.perf_counter()
    for _ in range(5):
        exact_step_response(tree, segments_per_line=40).delay("out", 0.5)
    simulation_time = (time.perf_counter() - start) / 5

    ratio = simulation_time / bound_time
    report(
        "bounds vs simulation cost",
        f"bound evaluation : {bound_time * 1e6:8.1f} us\n"
        f"exact simulation : {simulation_time * 1e6:8.1f} us\n"
        f"ratio            : {ratio:8.1f}x",
    )
    assert ratio > 5.0
