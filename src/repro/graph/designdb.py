"""Design-scale parasitic ingest: every net of a design in one flat batch.

A :class:`DesignDB` takes a :class:`~repro.sta.netlist.Design` plus per-net
parasitics (dict :class:`~repro.sta.parasitics.NetParasitics`, or array-native
:class:`NetModel` records streamed straight out of
:func:`repro.spef.reader.iter_spef_nets` -- no intermediate dict ``RCTree``)
and compiles one *stage tree* per timed net: the driver's resistance in series
with the net's parasitics, with every sink pin's input capacitance attached at
its node.  All stage trees are concatenated into a single
:class:`~repro.flat.FlatForest` and solved together, so the characteristic
times of **every sink pin of every net** come out of one set of vectorized
level sweeps -- this is what replaces the per-net, per-model dict walks of the
legacy :class:`~repro.sta.analysis.TimingAnalyzer`.

The database is also the incremental substrate for ECO loops:
:meth:`update_net` re-compiles and re-solves exactly one stage tree (O(net
size)) and :meth:`update_instance_cell` touches only the nets electrically
affected by a cell swap (the instance's output net, whose drive resistance
changed, and its input nets, whose sink capacitance changed).  Both splice the
shared forest via :meth:`~repro.flat.FlatForest.replace_tree` so batch
consumers (e.g. :func:`repro.apps.nets.design_net_summaries`) stay coherent.

With ``store_dir=`` the shared forest goes out of core: stage trees stream
straight into a :class:`repro.store.ShardStoreWriter` as they compile (one
resident stage at a time, never a concatenated forest) and every solve runs
shard-by-shard through :class:`repro.store.StoredForest` -- the same sink
table, the same incremental updates, with working RSS bounded by one shard
plus one scenario chunk instead of the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import AnalysisError
from repro.flat import FlatForest, FlatTree
from repro.sta.cells import Cell
from repro.sta.delaycalc import compile_stage
from repro.sta.netlist import Design, Net
from repro.sta.parasitics import NetParasitics
from repro.store import ShardStoreWriter, StoredForest

__all__ = ["DesignDB", "NetModel", "SinkTable", "ScenarioSinkTable"]


@dataclass(frozen=True)
class NetModel:
    """Array-native parasitics of one net: a compiled tree or a lumped cap.

    ``base`` is the net's parasitic tree compiled to a
    :class:`~repro.flat.FlatTree` (root = driver node); ``pin_nodes`` maps sink
    pins to node names inside it.  When ``base`` is ``None`` the net is a
    single lumped capacitor.  This is the representation
    :class:`DesignDB` keeps for every net -- dict
    :class:`~repro.sta.parasitics.NetParasitics` are converted on ingest, SPEF
    nets arrive in this form directly.
    """

    net: str
    lumped_capacitance: float = 0.0
    base: Optional[FlatTree] = None
    pin_nodes: Mapping[str, str] = field(default_factory=dict)

    @classmethod
    def from_parasitics(cls, parasitics: NetParasitics) -> "NetModel":
        """Compile dict parasitics once into the array form."""
        base = None
        if parasitics.tree is not None:
            base = FlatTree.from_tree(parasitics.tree)
        return cls(
            net=parasitics.net,
            lumped_capacitance=parasitics.lumped_capacitance,
            base=base,
            pin_nodes=dict(parasitics.pin_nodes),
        )


@dataclass(frozen=True)
class SinkTable:
    """Characteristic times of every sink pin of every timed net, as columns.

    Rows are grouped by net (``slice_of`` gives a net's contiguous row range)
    and ordered like ``Net.loads`` within each net.  ``live`` masks rows whose
    stage actually carries capacitance; dead rows have zero delay under every
    model.
    """

    nets: List[str]
    pins: List[str]
    tp: np.ndarray
    tde: np.ndarray
    tre: np.ndarray
    total_capacitance: np.ndarray

    @property
    def live(self) -> np.ndarray:
        """Rows whose stage tree carries capacitance (bounds are defined)."""
        return self.total_capacitance > 0.0

    def __len__(self) -> int:
        return len(self.pins)


@dataclass(frozen=True)
class ScenarioSinkTable:
    """Per-sink characteristic times under every scenario, as matrices.

    The row axis (``nets``/``pins``) is exactly the single-scenario
    :class:`SinkTable`'s; every numeric array gains a leading ``(S,)``
    scenario axis.  Produced by :meth:`DesignDB.solve_scenarios`.
    """

    scenario_names: List[str]
    nets: List[str]
    pins: List[str]
    tp: np.ndarray
    tde: np.ndarray
    tre: np.ndarray
    total_capacitance: np.ndarray

    @property
    def live(self) -> np.ndarray:
        """``(S, rows)`` mask of stages that carry capacitance per scenario."""
        return self.total_capacitance > 0.0

    @property
    def scenario_count(self) -> int:
        """Number of scenarios ``S``."""
        return self.tp.shape[0]

    def __len__(self) -> int:
        return len(self.pins)


class _ScenarioLayout:
    """Forest-aligned metadata the scenario solver derates against."""

    __slots__ = ("wire_c", "pin_c", "drive_nodes", "sink_nodes", "sink_tree")

    def __init__(self, wire_c, pin_c, drive_nodes, sink_nodes, sink_tree):
        self.wire_c = wire_c  # (N,) wire-only node capacitance
        self.pin_c = pin_c  # (N,) pin-load capacitance merged at each node
        self.drive_nodes = drive_nodes  # (trees,) node carrying the drive R edge
        self.sink_nodes = sink_nodes  # (rows,) forest node per sink-table row
        self.sink_tree = sink_tree  # (rows,) forest tree per sink-table row


class _StageEntry:
    """Bookkeeping for one timed net's compiled stage tree."""

    __slots__ = ("net", "tree_index", "row_slice", "pin_index", "flat", "wire_c")

    def __init__(self, net: str, tree_index: int, row_slice: slice):
        self.net = net
        self.tree_index = tree_index
        self.row_slice = row_slice
        self.pin_index: Dict[str, int] = {}
        self.flat: Optional[FlatTree] = None
        #: Wire-only node capacitance (pin loads excluded), from compile_stage.
        self.wire_c: Optional[np.ndarray] = None


class DesignDB:
    """A design plus parasitics compiled for batched, incremental analysis."""

    def __init__(
        self,
        design: Design,
        parasitics: Optional[Mapping[str, Union[NetParasitics, NetModel]]] = None,
        *,
        input_drive_resistance: float = 0.0,
        default_wire_capacitance: float = 0.0,
        store_dir: Optional[str] = None,
    ):
        self._design = design
        self._input_drive_resistance = input_drive_resistance
        self._default_wire_capacitance = default_wire_capacitance
        self._store_dir = store_dir
        self._store: Optional[StoredForest] = None
        self._nets: Dict[str, Net] = design.connectivity()
        self._clock_nets = set(design.clocks)
        self._instances = design.instances
        self._models: Dict[str, NetModel] = {}
        for name, record in (parasitics or {}).items():
            self._models[name] = (
                record
                if isinstance(record, NetModel)
                else NetModel.from_parasitics(record)
            )
        self._entries: Dict[str, _StageEntry] = {}
        self._compile()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _model_of(self, net: str) -> NetModel:
        model = self._models.get(net)
        if model is None:
            model = NetModel(
                net=net, lumped_capacitance=self._default_wire_capacitance
            )
            self._models[net] = model
        return model

    def _drive_resistance(self, net: Net) -> float:
        if net.driver.is_port:
            return self._input_drive_resistance
        return self._instances[net.driver.instance].cell.drive_resistance

    def _sink_capacitances(self, net: Net) -> Dict[str, float]:
        sinks: Dict[str, float] = {}
        for load in net.loads:
            if load.is_port:
                sinks[str(load)] = 0.0
            else:
                sinks[str(load)] = self._instances[
                    load.instance
                ].cell.input_capacitance
        return sinks

    def _compile_net(self, net: Net) -> Tuple[FlatTree, Dict[str, int], np.ndarray]:
        model = self._model_of(net.name)
        return compile_stage(
            self._drive_resistance(net),
            self._sink_capacitances(net),
            lumped_capacitance=model.lumped_capacitance,
            base=model.base,
            pin_nodes=model.pin_nodes,
            # Stage arrays are valid by construction; skip re-validation.
            _trusted=True,
        )

    def _compile(self) -> None:
        nets: List[str] = []
        pins: List[str] = []
        trees: List[FlatTree] = []
        global_pin_index: List[int] = []  # per sink row, forest node index
        row_tree: List[int] = []  # per sink row, forest tree index
        row = 0
        offset = 0
        tree_index = 0
        self._forest_stale: Dict[int, FlatTree] = {}
        self._scenario_layout_cache: Optional[_ScenarioLayout] = None
        clock_nets = self._clock_nets
        writer: Optional[ShardStoreWriter] = None
        if self._store_dir is not None:
            writer = ShardStoreWriter(self._store_dir, overwrite=True)
        try:
            for net in self._nets.values():
                if net.driver is None or not net.loads:
                    continue
                if net.name in clock_nets:
                    continue
                flat, pin_index, wire_c = self._compile_net(net)
                entry = _StageEntry(
                    net.name, tree_index, slice(row, row + len(pin_index))
                )
                entry.pin_index = pin_index
                entry.wire_c = wire_c
                self._entries[net.name] = entry
                if writer is not None:
                    # Stream the stage into the store and drop it: peak RSS
                    # during compile stays O(shard), not O(design).
                    writer.add_flat_tree(flat)
                else:
                    entry.flat = flat
                    trees.append(flat)
                # pin_index preserves the sink order (one entry per load).
                for pin, local in pin_index.items():
                    nets.append(net.name)
                    pins.append(pin)
                    global_pin_index.append(offset + local)
                    row_tree.append(tree_index)
                offset += len(flat)
                row += len(pin_index)
                tree_index += 1
        except BaseException:
            if writer is not None:
                writer.abort()
            raise
        self._timed_net_order = [t for t in self._entries]

        times = None
        self._forest: Optional[FlatForest] = None
        if writer is not None:
            if tree_index:
                writer.close()
                self._store = StoredForest(self._store_dir)
                times = self._store.solve()
            else:
                writer.abort()
        elif trees:
            self._forest = FlatForest(trees)
            times = self._forest.solve()
        if times is not None:
            indices = np.asarray(global_pin_index, dtype=np.int64)
            tree_of_row = np.asarray(row_tree, dtype=np.int64)
            tp = np.asarray(times.tp)[tree_of_row]
            tde = np.asarray(times.tde[indices])
            tre = np.asarray(times.tre[indices])
            total = np.asarray(times.total_capacitance)[tree_of_row]
        else:
            tp = np.zeros(0)
            tde = np.zeros(0)
            tre = np.zeros(0)
            total = np.zeros(0)
        self._sinks = SinkTable(
            nets=nets, pins=pins, tp=tp, tde=tde, tre=tre, total_capacitance=total
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def design(self) -> Design:
        """The ingested design."""
        return self._design

    @property
    def nets(self) -> Dict[str, Net]:
        """The design's net table (driver and loads per net)."""
        return self._nets

    @property
    def clock_nets(self) -> set:
        """Nets declared as (ideal) clocks."""
        return set(self._clock_nets)

    @property
    def instances(self) -> Dict[str, "Instance"]:
        """Instances by name (shared with the design)."""
        return self._instances

    @property
    def sinks(self) -> SinkTable:
        """The batched per-sink characteristic times of every timed net."""
        return self._sinks

    def _active_forest(self) -> Optional[Union[FlatForest, StoredForest]]:
        """Whichever forest backs this database, with pending splices applied.

        Incremental updates queue their member replacements and the splices
        are applied here on first read -- an ECO loop that never consults the
        forest pays nothing for keeping it coherent.  Both forest kinds
        expose the same ``replace_tree`` / ``solve_batch`` / ``_offsets``
        surface, so the splice loop is shared.
        """
        target = self._store if self._store is not None else self._forest
        if target is not None and self._forest_stale:
            for tree_index, flat in self._forest_stale.items():
                target.replace_tree(tree_index, flat)
            self._forest_stale.clear()
        return target

    @property
    def forest(self) -> Optional[FlatForest]:
        """The in-RAM stage-tree forest (``None`` for a design with no timed nets).

        A store-backed database (``store_dir=``) has no resident forest by
        design; reach for :attr:`store` instead.
        """
        if self._store is not None:
            raise AnalysisError(
                "this database is store-backed (store_dir=); its forest lives"
                " on disk -- use .store for the StoredForest"
            )
        forest = self._active_forest()
        assert forest is None or isinstance(forest, FlatForest)
        return forest

    @property
    def store(self) -> Optional[StoredForest]:
        """The on-disk forest behind ``store_dir=`` (``None`` when in-RAM)."""
        if self._store is None:
            return None
        store = self._active_forest()
        assert isinstance(store, StoredForest)
        return store

    def stage_tree(self, net: str) -> FlatTree:
        """The compiled stage tree of one timed net.

        A store-backed database does not retain compiled stages in RAM, so
        the tree is recompiled on demand (O(net size)).
        """
        entry = self._entries.get(net)
        if entry is None:
            raise AnalysisError(f"net {net!r} is not a timed net of this design")
        if entry.flat is None:
            flat, _, _ = self._compile_net(self._nets[net])
            return flat
        return entry.flat

    def sink_rows(self, net: str) -> slice:
        """Row range of ``net``'s sinks inside :attr:`sinks`."""
        entry = self._entries.get(net)
        if entry is None:
            raise AnalysisError(f"net {net!r} is not a timed net of this design")
        return entry.row_slice

    def timed_nets(self) -> List[str]:
        """Names of every net with a compiled stage tree, in table order."""
        return list(self._timed_net_order)

    def net_model(self, net: str) -> NetModel:
        """The (array-native) parasitics currently attached to ``net``."""
        return self._model_of(net)

    def drive_resistance_of(self, net: str) -> float:
        """Drive resistance at the head of ``net`` (cell R, or the input default)."""
        record = self._nets.get(net)
        if record is None or record.driver is None:
            raise AnalysisError(f"net {net!r} has no driver")
        return self._drive_resistance(record)

    def sink_capacitances_of(self, net: str) -> Dict[str, float]:
        """Input capacitance presented by each load pin of ``net``."""
        record = self._nets.get(net)
        if record is None:
            raise AnalysisError(f"unknown net {net!r}")
        return self._sink_capacitances(record)

    # ------------------------------------------------------------------
    # Scenario-batched analysis
    # ------------------------------------------------------------------
    def _scenario_layout(self) -> _ScenarioLayout:
        """Forest-aligned wire/pin/driver metadata, rebuilt after any edit.

        The pin-load vector is derived here, lazily, so designs that never
        run a scenario solve pay nothing for the wire/pin split beyond the
        per-stage wire array ``compile_stage`` already emits.
        """
        forest = self._active_forest()  # applies pending splices first
        if self._scenario_layout_cache is None:
            n = forest.node_count
            wire_c = np.empty(n)
            pin_c = np.zeros(n)
            sink_nodes: List[int] = []
            sink_tree: List[int] = []
            offsets = forest._offsets
            for entry in self._entries.values():
                lo = int(offsets[entry.tree_index])
                hi = int(offsets[entry.tree_index + 1])
                wire_c[lo:hi] = entry.wire_c
                sinks = self._sink_capacitances(self._nets[entry.net])
                # pin_index preserves sink-table row order within the net.
                for pin, local in entry.pin_index.items():
                    pin_c[lo + local] += sinks[pin]
                    sink_nodes.append(lo + local)
                    sink_tree.append(entry.tree_index)
            self._scenario_layout_cache = _ScenarioLayout(
                wire_c=wire_c,
                pin_c=pin_c,
                # Node 1 of every stage tree carries the drive-resistance edge.
                drive_nodes=np.asarray(offsets[:-1] + 1, dtype=np.int64),
                sink_nodes=np.asarray(sink_nodes, dtype=np.int64),
                sink_tree=np.asarray(sink_tree, dtype=np.int64),
            )
        return self._scenario_layout_cache

    def solve_scenarios(
        self,
        scenarios,
        *,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> ScenarioSinkTable:
        """Characteristic times of every sink pin under every scenario.

        One scenario-batched forest solve replaces the per-scenario re-ingest
        loop: the set's derates compile to per-node factor planes (wire R x
        ``r_derate`` x per-net scale, driver R x ``drive_derate``, wire C x
        ``c_derate`` x per-net scale, pin loads x ``c_derate``) and
        :meth:`repro.flat.FlatForest.solve_batch` sweeps all scenarios at
        once.  Row order matches :attr:`sinks`; results always reflect the
        database's *current* state (incremental edits included).

        ``engine`` / ``jobs`` select the :mod:`repro.parallel` execution
        backend for the forest solve (``None`` auto-selects by sweep size);
        results are identical for every backend.
        """
        sinks = self._sinks
        names = list(scenarios.names)
        s = len(names)
        if self._forest is None and self._store is None:
            empty = np.zeros((s, 0))
            return ScenarioSinkTable(
                scenario_names=names,
                nets=list(sinks.nets),
                pins=list(sinks.pins),
                tp=empty,
                tde=empty.copy(),
                tre=empty.copy(),
                total_capacitance=empty.copy(),
            )
        timed = set(self._timed_net_order)
        for scenario in scenarios:
            unknown = sorted(set(scenario.net_scale) - timed)
            if unknown:
                raise AnalysisError(
                    f"scenario {scenario.name!r} scales nets {unknown!r} that are "
                    "not timed nets of this design (misspelled, undriven, "
                    "loadless or clock nets); a silent no-op corner would "
                    "report results for a scenario that was never applied"
                )
        layout = self._scenario_layout()
        forest = self._active_forest()
        net_scale = scenarios.net_scales(self._timed_net_order)  # (S, trees)
        c_derate = scenarios.c_derates[np.newaxis, :]
        if self._store is not None:
            store = forest
            tree_scale = np.ascontiguousarray(net_scale.T)  # (trees, S)
            r_derates = scenarios.r_derates[np.newaxis, :]
            drive_derates = scenarios.drive_derates[np.newaxis, :]

            def planes_for(shard: int, node_lo: int, node_hi: int):
                # One shard's effective (S, n) planes, fabricated on demand
                # from the shard's own base arrays -- the sweep never holds
                # an (S, N) design-wide matrix.
                hot = store.materialize(shard)
                _, _, tree_lo, tree_hi = store.shard_bounds(shard)
                counts = np.diff(hot.starts)
                node_scale = np.repeat(
                    tree_scale[tree_lo:tree_hi], counts, axis=0
                )  # (n, S)
                r_factor = node_scale * r_derates
                # Node 1 of every stage tree carries the drive-R edge.
                r_factor[hot.starts[:-1] + 1, :] = drive_derates
                wire_factor = node_scale * c_derate
                window = slice(node_lo, node_hi)
                return (
                    (hot.edge_r[:, np.newaxis] * r_factor).T,
                    (hot.edge_c[:, np.newaxis] * wire_factor).T,
                    (
                        layout.wire_c[window, np.newaxis] * wire_factor
                        + layout.pin_c[window, np.newaxis] * c_derate
                    ).T,
                )

            times = store.solve_batch(
                count=s, engine=engine, jobs=jobs, planes_for=planes_for
            )
        else:
            # Factor planes are built node-major -- (N, S), the kernels' own
            # orientation -- and passed as transposed views: the serial
            # engine's contiguity pass and the process engine's shared-plane
            # fill both then cost zero / one memcpy instead of an (S, N)
            # transpose.
            node_scale = net_scale.T[forest._tree_id]  # (N, S)
            r_factor = node_scale * scenarios.r_derates[np.newaxis, :]
            r_factor[layout.drive_nodes, :] = scenarios.drive_derates[
                np.newaxis, :
            ]
            wire_factor = node_scale * c_derate
            times = forest.solve_batch(
                edge_r=(forest._edge_r[:, np.newaxis] * r_factor).T,
                edge_c=(forest._edge_c[:, np.newaxis] * wire_factor).T,
                node_c=(
                    layout.wire_c[:, np.newaxis] * wire_factor
                    + layout.pin_c[:, np.newaxis] * c_derate
                ).T,
                count=s,
                engine=engine,
                jobs=jobs,
            )
        return ScenarioSinkTable(
            scenario_names=names,
            nets=list(sinks.nets),
            pins=list(sinks.pins),
            tp=times.tp[:, layout.sink_tree],
            tde=times.tde[:, layout.sink_nodes],
            tre=times.tre[:, layout.sink_nodes],
            total_capacitance=times.total_capacitance[:, layout.sink_tree],
        )

    def whatif_cell_elements(
        self, swaps: Sequence[Tuple[str, Cell]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Forest element planes where plane ``s`` applies cell swap ``s``.

        Each candidate ``(instance, cell)`` becomes one scenario row: the
        instance's output net gets the candidate's drive resistance and every
        timed net it loads gets the candidate's input capacitance at the
        instance's pin node.  Nothing in the database is mutated -- this is
        the what-if substrate :meth:`repro.graph.TimingGraph.whatif_resize_worst_slack`
        evaluates in one batched solve, replacing per-candidate trial swaps.
        Returns ``(edge_r, node_c)``, each shaped ``(len(swaps), N)``.
        """
        if self._store is not None:
            raise AnalysisError(
                "what-if cell planes need the in-RAM forest; a store-backed"
                " database (store_dir=) evaluates candidate swaps through"
                " update_instance_cell instead"
            )
        forest = self.forest
        if forest is None:
            raise AnalysisError("the design has no timed nets to evaluate")
        offsets = forest._offsets
        s = len(swaps)
        # Node-major working planes, returned as transposed views (see
        # solve_scenarios): the solve engines consume them copy-free.
        edge_r = np.repeat(forest._edge_r[:, np.newaxis], s, axis=1).T
        node_c = np.repeat(forest._node_c[:, np.newaxis], s, axis=1).T
        for row, (instance, cell) in enumerate(swaps):
            record = self._instances.get(instance)
            if record is None:
                raise AnalysisError(f"unknown instance {instance!r}")
            old = record.cell
            out_entry = self._entries.get(record.connections.get(old.output, ""))
            if out_entry is not None:
                resistance = (
                    cell.drive_resistance if cell.drive_resistance > 0 else 1e-6
                )
                edge_r[row, int(offsets[out_entry.tree_index]) + 1] = resistance
            delta = cell.input_capacitance - old.input_capacitance
            if delta:
                # Every non-output pin (inputs and a sequential cell's clock
                # pin alike) presents the input capacitance on its net, so a
                # clock pin fed by a *timed* net must see the delta too --
                # exactly the nets update_instance_cell would recompile.
                for pin, net_name in record.connections.items():
                    if pin == old.output:
                        continue
                    entry = self._entries.get(net_name)
                    if entry is None:
                        continue
                    local = entry.pin_index.get(f"{instance}/{pin}")
                    if local is not None:
                        node_c[row, int(offsets[entry.tree_index]) + local] += delta
        return edge_r, node_c

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def _resolve_net(self, net: str) -> _StageEntry:
        entry = self._entries.get(net)
        if entry is None:
            raise AnalysisError(
                f"net {net!r} has no stage tree (undriven, loadless or a clock net); "
                "incremental updates only apply to timed nets"
            )
        return entry

    def _recompile_entry(self, entry: _StageEntry) -> None:
        """Re-compile + re-solve one net's stage and patch the shared state."""
        net = self._nets[entry.net]
        flat, pin_index, wire_c = self._compile_net(net)
        entry.flat = None if self._store is not None else flat
        entry.pin_index = pin_index
        entry.wire_c = wire_c
        self._scenario_layout_cache = None
        if self._forest is not None or self._store is not None:
            self._forest_stale[entry.tree_index] = flat
        times = flat.solve()
        indices = np.asarray(
            [pin_index[str(load)] for load in net.loads], dtype=np.int64
        )
        window = entry.row_slice
        sinks = self._sinks
        sinks.tp[window] = times.tp
        sinks.tde[window] = times.tde[indices]
        sinks.tre[window] = times.tre[indices]
        sinks.total_capacitance[window] = times.total_capacitance

    def update_net(
        self, net: str, parasitics: Union[NetParasitics, NetModel]
    ) -> slice:
        """Replace one net's parasitics and re-solve just its stage tree.

        Returns the net's (unchanged) sink-row range so callers -- most
        importantly :meth:`repro.graph.TimingGraph.update_net` -- can patch
        exactly the affected arc delays.
        """
        entry = self._resolve_net(net)
        model = (
            parasitics
            if isinstance(parasitics, NetModel)
            else NetModel.from_parasitics(parasitics)
        )
        if model.net != net:
            raise AnalysisError(
                f"parasitics are for net {model.net!r}, not {net!r}"
            )
        self._models[net] = model
        self._recompile_entry(entry)
        return entry.row_slice

    def update_instance_cell(self, instance: str, cell: Cell) -> List[str]:
        """Swap one instance's library cell and re-solve the affected nets.

        A cell swap changes the drive resistance of the instance's *output*
        net and the sink capacitance it presents on each of its *input* nets;
        only those stage trees are re-compiled.  Returns the affected timed
        net names (the instance's intrinsic-delay change is the caller's to
        propagate -- see :meth:`repro.graph.TimingGraph.resize_instance`).
        """
        record = self._instances.get(instance)
        if record is None:
            raise AnalysisError(f"unknown instance {instance!r}")
        old = record.cell
        if set(old.pins) != set(cell.pins) or old.output != cell.output:
            raise AnalysisError(
                f"cell swap {old.name!r} -> {cell.name!r} changes the pin "
                "interface; only footprint-compatible swaps are supported"
            )
        record.cell = cell
        affected: List[str] = []
        for pin, net_name in record.connections.items():
            if net_name in self._entries:
                if net_name not in affected:
                    affected.append(net_name)
        for net_name in affected:
            self._recompile_entry(self._entries[net_name])
        return affected

    # ------------------------------------------------------------------
    # SPEF ingest
    # ------------------------------------------------------------------
    @classmethod
    def from_spef(
        cls,
        design: Design,
        spef: str,
        *,
        is_path: bool = False,
        input_drive_resistance: float = 0.0,
        default_wire_capacitance: float = 0.0,
        store_dir: Optional[str] = None,
    ) -> "DesignDB":
        """Build a database by streaming a SPEF file straight into net models.

        Each ``*D_NET`` section is parsed directly into parent-index arrays
        (:func:`repro.spef.reader.iter_spef_nets` -- no intermediate dict
        ``RCTree``), matched to the design net of the same name, and its sink
        pins are bound to the parasitic nodes carrying the same
        ``instance/pin`` (or port) name.  Nets absent from the SPEF fall back
        to the default lumped wire capacitance.
        """
        from repro.spef.reader import iter_spef_nets

        if is_path:
            with open(spef, "r", encoding="utf-8") as handle:
                spef = handle.read()
        connectivity = design.connectivity()
        models: Dict[str, NetModel] = {}
        for record in iter_spef_nets(spef):
            net = connectivity.get(record.name)
            if net is None:
                continue
            base = record.to_flat_tree()
            known = set(record.node_names)
            pin_nodes = {
                str(load): str(load) for load in net.loads if str(load) in known
            }
            models[record.name] = NetModel(
                net=record.name, base=base, pin_nodes=pin_nodes
            )
        return cls(
            design,
            models,
            input_drive_resistance=input_drive_resistance,
            default_wire_capacitance=default_wire_capacitance,
            store_dir=store_dir,
        )
