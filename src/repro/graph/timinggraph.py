"""Levelized, array-native static timing over a whole design.

A :class:`TimingGraph` compiles a :class:`~repro.graph.DesignDB` into flat
edge arrays -- one vertex per pin, *net arcs* from each driver pin to each
load pin, *cell arcs* from each input (or clock) pin to the output pin -- and
levelizes the DAG once.  Arrival times for **all pins and all three delay
models at once** are then computed by per-level vectorized relaxations
(``np.maximum.at`` over each level's edge bucket on a ``(V, 3)`` matrix)
instead of the legacy engine's per-vertex dict updates over a networkx graph.
Required times and per-pin slacks come from the mirrored backward sweep.

Net-arc delays are extracted from the database's single batched
:class:`~repro.flat.FlatForest` solve: the Elmore column reads ``T_De``
directly, the two bound columns come from one batched evaluation of
eqs. (14)-(17) over every sink of every net.  Cell arcs carry the cell's
intrinsic delay in every column, and clock-net arcs are zero (ideal clock
network), exactly as :class:`~repro.sta.analysis.TimingAnalyzer` -- which is
kept, unchanged, as the parity oracle; the property tests pin the two engines
together at 1e-12 relative tolerance.

Incremental ECO re-timing
-------------------------
:meth:`update_net` re-solves exactly one stage tree in the forest, patches
that net's arc delays, and re-propagates arrivals only through the *downstream
cone*: affected vertices are re-evaluated exactly (max over their in-edges,
the same reduction the full sweep performs, so the result is identical to a
from-scratch run) and propagation stops at any vertex whose arrival did not
change.  :meth:`resize_instance` does the same for a cell swap (drive
resistance, input loads and intrinsic delay all change).  This is what gives
:mod:`repro.opt.sizing` a design-scope ECO loop: worst slack after an edit
costs O(cone) instead of O(design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.certify import Verdict
from repro.core.exceptions import AnalysisError
from repro.flat import delay_lower_bound_batch, delay_upper_bound_batch
from repro.graph.designdb import DesignDB, NetModel, ScenarioSinkTable
from repro.sta.analysis import PathSegment, TimingReport
from repro.sta.cells import Cell
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import Design, PinRef
from repro.sta.parasitics import NetParasitics
from repro.utils.checks import require_in_unit_interval

__all__ = ["TimingGraph", "DesignTimingSummary", "ScenarioTimingReport"]

#: Column order of the per-edge / per-vertex model axes.
_MODELS = (DelayModel.ELMORE, DelayModel.UPPER_BOUND, DelayModel.LOWER_BOUND)
_MODEL_COLUMN = {model: column for column, model in enumerate(_MODELS)}


@dataclass(frozen=True)
class DesignTimingSummary:
    """JSON-friendly design-level timing summary (the CLI's payload).

    ``worst_slack`` / ``worst_endpoint`` carry one entry per delay model; the
    verdict is the paper's ternary ``OK`` applied to the whole design
    (PASS / FAIL / INDETERMINATE), and the critical path is reported under the
    sign-off (upper-bound) model.
    """

    design: str
    clock_period: float
    threshold: float
    worst_slack: Dict[str, float]
    worst_endpoint: Dict[str, Optional[str]]
    verdict: str
    critical_path: List[PathSegment] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Plain-dict form, ready for ``json.dumps``."""
        return {
            "design": self.design,
            "clock_period": self.clock_period,
            "threshold": self.threshold,
            "worst_slack": dict(self.worst_slack),
            "worst_endpoint": dict(self.worst_endpoint),
            "verdict": self.verdict,
            "critical_path": [
                {
                    "location": segment.location,
                    "arc": segment.arc,
                    "incremental_delay": segment.incremental_delay,
                    "arrival": segment.arrival,
                }
                for segment in self.critical_path
            ],
        }


@dataclass(frozen=True)
class ScenarioTimingReport:
    """Design-level timing under every scenario of a batch.

    ``worst_slack`` has shape ``(S, 3)`` with columns in ``_MODELS`` order
    (Elmore, upper bound, lower bound); ``verdicts`` carries the paper's
    ternary ``OK`` per scenario; ``critical_paths`` holds one traced path per
    scenario under ``path_model`` (empty lists when tracing was skipped).
    """

    design: str
    scenario_names: List[str]
    clock_periods: np.ndarray
    thresholds: np.ndarray
    worst_slack: np.ndarray
    worst_endpoint: List[Dict[str, Optional[str]]]
    verdicts: List[str]
    critical_paths: List[List[PathSegment]]
    path_model: str

    @property
    def scenario_count(self) -> int:
        """Number of scenarios ``S``."""
        return len(self.scenario_names)

    @property
    def overall_verdict(self) -> str:
        """FAIL if any scenario fails, else INDETERMINATE if any is, else PASS."""
        if Verdict.FAIL.name in self.verdicts:
            return Verdict.FAIL.name
        if Verdict.INDETERMINATE.name in self.verdicts:
            return Verdict.INDETERMINATE.name
        return Verdict.PASS.name

    def worst_slack_of(
        self, scenario: Union[int, str], model: DelayModel = DelayModel.UPPER_BOUND
    ) -> float:
        """Worst slack of one scenario (by index or name) under one model."""
        index = (
            scenario
            if isinstance(scenario, int)
            else self.scenario_names.index(scenario)
        )
        return float(self.worst_slack[index, _MODEL_COLUMN[model]])

    def worst_scenario(self, model: DelayModel = DelayModel.UPPER_BOUND) -> int:
        """Index of the scenario with the most negative worst slack."""
        return int(np.argmin(self.worst_slack[:, _MODEL_COLUMN[model]]))

    def to_dict(self) -> dict:
        """JSON-friendly form (the CLI's ``--corners`` payload)."""
        scenarios = []
        for index, name in enumerate(self.scenario_names):
            scenarios.append(
                {
                    "name": name,
                    "clock_period": float(self.clock_periods[index]),
                    "threshold": float(self.thresholds[index]),
                    "worst_slack": {
                        model.value: float(self.worst_slack[index, column])
                        for column, model in enumerate(_MODELS)
                    },
                    "worst_endpoint": dict(self.worst_endpoint[index]),
                    "verdict": self.verdicts[index],
                    "critical_path": [
                        {
                            "location": segment.location,
                            "arc": segment.arc,
                            "incremental_delay": segment.incremental_delay,
                            "arrival": segment.arrival,
                        }
                        for segment in self.critical_paths[index]
                    ],
                }
            )
        return {
            "design": self.design,
            "path_model": self.path_model,
            "verdict": self.overall_verdict,
            "scenarios": scenarios,
        }


class TimingGraph:
    """Array-compiled timing graph of a whole design, all delay models at once."""

    def __init__(
        self,
        db: Union[DesignDB, Design],
        parasitics: Optional[Mapping[str, NetParasitics]] = None,
        *,
        clock_period: float = 1e-9,
        threshold: float = 0.5,
        input_drive_resistance: float = 0.0,
        default_wire_capacitance: float = 0.0,
    ):
        if clock_period <= 0:
            raise AnalysisError("clock_period must be positive")
        require_in_unit_interval("threshold", threshold)
        if isinstance(db, Design):
            db = DesignDB(
                db,
                parasitics,
                input_drive_resistance=input_drive_resistance,
                default_wire_capacitance=default_wire_capacitance,
            )
        elif parasitics is not None:
            raise AnalysisError(
                "pass parasitics either to the DesignDB or to TimingGraph, not both"
            )
        self._db = db
        self._clock_period = clock_period
        self._threshold = threshold
        self._build_edges()
        self._levelize()
        self._arrivals: Optional[np.ndarray] = None
        self._required: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _net_arc_delays(self, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """(rows, 3) wire delays for sink rows of the database's table.

        ``rows`` restricts the (batched) bound evaluation to a subset -- the
        incremental path computes delays only for an edited net's sinks.
        """
        sinks = self._db.sinks
        tp, tde, tre = sinks.tp, sinks.tde, sinks.tre
        live = sinks.live
        if rows is not None:
            tp, tde, tre, live = tp[rows], tde[rows], tre[rows], live[rows]
        delays = np.zeros((len(tde), 3))
        delays[:, _MODEL_COLUMN[DelayModel.ELMORE]] = tde
        if np.any(live):
            upper = delay_upper_bound_batch(
                tp[live], tde[live], tre[live], [self._threshold]
            )[:, 0]
            lower = delay_lower_bound_batch(
                tp[live], tde[live], tre[live], [self._threshold]
            )[:, 0]
            delays[live, _MODEL_COLUMN[DelayModel.UPPER_BOUND]] = upper
            delays[live, _MODEL_COLUMN[DelayModel.LOWER_BOUND]] = lower
        return delays

    def _build_edges(self) -> None:
        db = self._db
        vertex_index: Dict[str, int] = {}
        vertex_names: List[str] = []
        edge_src: List[int] = []
        edge_dst: List[int] = []
        edge_arcs: List[str] = []
        arc_edges: List[int] = []  # net-arc edge index, aligned with arc_rows
        arc_rows: List[int] = []  # sink-table row feeding that edge
        #: Edge indices per net (net arcs) / per instance (cell arcs).
        self._net_edges: Dict[str, List[int]] = {}
        self._cell_edges: Dict[str, List[int]] = {}

        names_append = vertex_names.append
        src_append = edge_src.append
        dst_append = edge_dst.append
        arc_append = edge_arcs.append

        def vertex(name: str) -> int:
            index = vertex_index.get(name)
            if index is None:
                vertex_index[name] = index = len(vertex_names)
                names_append(name)
            return index

        sink_pins = db.sinks.pins
        clock_nets = db.clock_nets
        for net in db.nets.values():
            if net.driver is None or not net.loads:
                continue
            driver = vertex(str(net.driver))
            indices = self._net_edges.setdefault(net.name, [])
            if net.name in clock_nets:
                arc = f"clock net {net.name}"
                for load in net.loads:
                    indices.append(len(edge_src))
                    src_append(driver)
                    dst_append(vertex(str(load)))
                    arc_append(arc)
                continue
            rows = db.sink_rows(net.name)
            arc = f"net {net.name}"
            for row in range(rows.start, rows.stop):
                edge = len(edge_src)
                indices.append(edge)
                arc_edges.append(edge)
                arc_rows.append(row)
                src_append(driver)
                dst_append(vertex(sink_pins[row]))
                arc_append(arc)

        intrinsic_edges: List[int] = []
        intrinsic_values: List[float] = []
        for instance in db.instances.values():
            cell = instance.cell
            name = instance.name
            output = vertex(f"{name}/{cell.output}")
            indices = self._cell_edges.setdefault(name, [])
            intrinsic = cell.intrinsic_delay
            if cell.is_sequential:
                pins = (cell.clock_pin,)
                arcs = (f"{cell.name} CK->Q",)
            else:
                pins = cell.inputs
                arcs = [f"{cell.name} {pin}->Y" for pin in pins]
            for pin, arc in zip(pins, arcs):
                edge = len(edge_src)
                indices.append(edge)
                intrinsic_edges.append(edge)
                intrinsic_values.append(intrinsic)
                src_append(vertex(f"{name}/{pin}"))
                dst_append(output)
                arc_append(arc)

        self._edge_src = np.asarray(edge_src, dtype=np.int64)
        self._edge_dst = np.asarray(edge_dst, dtype=np.int64)
        self._edge_arcs = edge_arcs
        self._edge_count = len(edge_src)
        self._vertex_index = vertex_index
        self._vertex_names = vertex_names
        self._vertex_count = len(vertex_names)

        delays = np.zeros((self._edge_count, 3))
        edges = np.asarray(arc_edges, dtype=np.int64)
        rows = np.asarray(arc_rows, dtype=np.int64)
        if len(edges):
            delays[edges] = self._net_arc_delays(rows)
        self._net_edge_rows = (edges, rows)
        if intrinsic_edges:
            delays[np.asarray(intrinsic_edges, dtype=np.int64)] = np.asarray(
                intrinsic_values
            )[:, np.newaxis]
        self._edge_delay = delays

    def _levelize(self) -> None:
        """Longest-path levels + per-level edge buckets + in/out CSR.

        Kahn's algorithm, but one numpy *wave* at a time: the whole ready
        frontier relaxes its out-edges with one gather/scatter, so the Python
        cost is O(logic depth), not O(V + E).
        """
        n = self._vertex_count
        src = self._edge_src
        dst = self._edge_dst
        # CSR adjacency (also reused by the incremental cone walks).
        self._out_idx = np.argsort(src, kind="stable")
        out_counts = np.bincount(src, minlength=n)
        self._out_ptr = np.concatenate(([0], np.cumsum(out_counts)))
        self._in_idx = np.argsort(dst, kind="stable")
        in_counts = np.bincount(dst, minlength=n)
        self._in_ptr = np.concatenate(([0], np.cumsum(in_counts)))

        level = np.zeros(n, dtype=np.int64)
        remaining = in_counts.copy()
        frontier = np.flatnonzero(remaining == 0)
        seen = 0
        while frontier.size:
            seen += int(frontier.size)
            lengths = out_counts[frontier]
            total = int(lengths.sum())
            if total == 0:
                break
            starts = self._out_ptr[frontier]
            # Flatten the frontier's CSR ranges into one edge-index vector.
            ends = np.cumsum(lengths)
            flat = (
                np.repeat(starts, lengths)
                + np.arange(total)
                - np.repeat(ends - lengths, lengths)
            )
            edges = self._out_idx[flat]
            successors = dst[edges]
            np.maximum.at(level, successors, np.repeat(level[frontier] + 1, lengths))
            decrements = np.bincount(successors, minlength=n)
            remaining -= decrements
            frontier = np.flatnonzero((remaining == 0) & (decrements > 0))
        if seen != n:
            raise AnalysisError(
                "the timing graph has a combinational loop; break it before analysis"
            )
        self._level = level
        self._max_level = int(level.max()) if n else 0

        # Forward buckets: edges grouped by destination level (ascending).
        if self._edge_count:
            dst_level = level[self._edge_dst]
            order = np.argsort(dst_level, kind="stable")
            counts = np.bincount(dst_level, minlength=self._max_level + 1)
            self._forward_buckets = [
                bucket
                for bucket in np.split(order, np.cumsum(counts)[:-1])
                if len(bucket)
            ]
            src_level = level[self._edge_src]
            order = np.argsort(src_level, kind="stable")
            counts = np.bincount(src_level, minlength=self._max_level + 1)
            self._backward_buckets = [
                bucket
                for bucket in np.split(order, np.cumsum(counts)[:-1])
                if len(bucket)
            ]
        else:
            self._forward_buckets = []
            self._backward_buckets = []

        # Endpoints: primary-output ports and flip-flop D pins, legacy order.
        endpoints: List[str] = list(self._db.design.primary_outputs)
        for instance in self._db.instances.values():
            if instance.cell.is_sequential:
                endpoints.append(str(PinRef(instance.name, instance.cell.inputs[0])))
        self._endpoints = endpoints
        self._endpoint_vertices = np.asarray(
            [
                self._vertex_index[name]
                for name in endpoints
                if name in self._vertex_index
            ],
            dtype=np.int64,
        )

    def _in_edge_list(self, vertex: int) -> np.ndarray:
        """Indices of the edges into ``vertex`` (CSR slice)."""
        return self._in_idx[self._in_ptr[vertex] : self._in_ptr[vertex + 1]]

    def _out_edge_list(self, vertex: int) -> np.ndarray:
        """Indices of the edges out of ``vertex`` (CSR slice)."""
        return self._out_idx[self._out_ptr[vertex] : self._out_ptr[vertex + 1]]

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate_tensor(self, delay: np.ndarray) -> np.ndarray:
        """Forward arrival sweep for any ``(edges, ...)`` delay tensor.

        The trailing axes ride along for free: the single-scenario run uses
        ``(E, 3)``, a scenario batch ``(E, S, 3)`` and the what-if evaluator
        ``(E, S)`` -- one set of per-level gather/scatters serves them all.
        """
        arrivals = np.zeros((self._vertex_count,) + delay.shape[1:])
        src = self._edge_src
        dst = self._edge_dst
        for bucket in self._forward_buckets:
            candidates = arrivals[src[bucket]] + delay[bucket]
            np.maximum.at(arrivals, dst[bucket], candidates)
        return arrivals

    def _propagate(self) -> np.ndarray:
        return self._propagate_tensor(self._edge_delay)

    @property
    def arrivals_matrix(self) -> np.ndarray:
        """Arrival times, shape ``(pins, 3)`` -- columns Elmore, upper, lower."""
        if self._arrivals is None:
            self._arrivals = self._propagate()
        return self._arrivals

    @property
    def required_matrix(self) -> np.ndarray:
        """Required times, shape ``(pins, 3)``; ``+inf`` off any endpoint cone."""
        if self._required is None:
            required = np.full((self._vertex_count, 3), np.inf)
            if len(self._endpoint_vertices):
                required[self._endpoint_vertices] = self._clock_period
            src = self._edge_src
            dst = self._edge_dst
            delay = self._edge_delay
            for bucket in reversed(self._backward_buckets):
                candidates = required[dst[bucket]] - delay[bucket]
                np.minimum.at(required, src[bucket], candidates)
            self._required = required
        return self._required

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    @property
    def clock_period(self) -> float:
        """Clock period the slacks are measured against (seconds)."""
        return self._clock_period

    @property
    def threshold(self) -> float:
        """Voltage threshold used by the two bound models."""
        return self._threshold

    @property
    def db(self) -> DesignDB:
        """The underlying design database."""
        return self._db

    @property
    def vertex_names(self) -> List[str]:
        """Pin name per vertex index."""
        return list(self._vertex_names)

    def endpoint_slacks(self, model: DelayModel = DelayModel.ELMORE) -> Dict[str, float]:
        """Slack at every endpoint (``clock_period - arrival``)."""
        column = _MODEL_COLUMN[model]
        arrivals = self.arrivals_matrix
        slacks: Dict[str, float] = {}
        for name in self._endpoints:
            vertex = self._vertex_index.get(name)
            arrival = float(arrivals[vertex, column]) if vertex is not None else 0.0
            slacks[name] = self._clock_period - arrival
        return slacks

    def worst_slack(self, model: DelayModel = DelayModel.ELMORE) -> float:
        """Most negative endpoint slack (or ``+clock_period`` with no endpoints)."""
        column = _MODEL_COLUMN[model]
        if not self._endpoints:
            return self._clock_period
        worst = 0.0
        if len(self._endpoint_vertices):
            worst = float(self.arrivals_matrix[self._endpoint_vertices, column].max())
        return self._clock_period - worst

    def pin_slacks(self, model: DelayModel = DelayModel.ELMORE) -> Dict[str, float]:
        """``required - arrival`` for every pin (``+inf`` off endpoint cones)."""
        column = _MODEL_COLUMN[model]
        slack = self.required_matrix[:, column] - self.arrivals_matrix[:, column]
        return {name: float(slack[i]) for i, name in enumerate(self._vertex_names)}

    def arrivals(self, model: DelayModel = DelayModel.ELMORE) -> Dict[str, float]:
        """Arrival time per pin name, one delay model."""
        column = _MODEL_COLUMN[model]
        arrivals = self.arrivals_matrix
        return {
            name: float(arrivals[i, column])
            for i, name in enumerate(self._vertex_names)
        }

    def _trace_path(
        self, endpoint: int, arrival: np.ndarray, delay: np.ndarray
    ) -> List[PathSegment]:
        """Walk one critical path backwards over 1-D arrival/delay columns."""
        path: List[PathSegment] = []
        vertex = endpoint
        while True:
            value = float(arrival[vertex])
            best_edge = None
            for edge in self._in_edge_list(vertex):
                candidate = arrival[self._edge_src[edge]] + delay[edge]
                if candidate == value:
                    best_edge = edge
                    break
            if best_edge is None:
                path.append(
                    PathSegment(
                        location=self._vertex_names[vertex],
                        arc="startpoint",
                        incremental_delay=0.0,
                        arrival=value,
                    )
                )
                break
            path.append(
                PathSegment(
                    location=self._vertex_names[vertex],
                    arc=self._edge_arcs[best_edge],
                    incremental_delay=float(delay[best_edge]),
                    arrival=value,
                )
            )
            vertex = int(self._edge_src[best_edge])
        path.reverse()
        return path

    def critical_path(self, model: DelayModel = DelayModel.ELMORE) -> List[PathSegment]:
        """Trace the worst endpoint's critical path (may be empty)."""
        if not len(self._endpoint_vertices):
            return []
        column = _MODEL_COLUMN[model]
        arrivals = self.arrivals_matrix
        endpoint = int(
            self._endpoint_vertices[
                np.argmax(arrivals[self._endpoint_vertices, column])
            ]
        )
        return self._trace_path(
            endpoint, arrivals[:, column], self._edge_delay[:, column]
        )

    def run(self, model: DelayModel = DelayModel.ELMORE) -> TimingReport:
        """A legacy-shaped :class:`~repro.sta.analysis.TimingReport` for one model."""
        report = TimingReport(
            delay_model=model,
            clock_period=self._clock_period,
            arrivals=self.arrivals(model),
            endpoint_slacks=self.endpoint_slacks(model),
        )
        report.critical_path = self.critical_path(model)
        return report

    def certify(self) -> Verdict:
        """The paper's ternary verdict applied to the whole design.

        PASS when the guaranteed-latest arrivals (upper-bound delays) meet the
        clock period; FAIL when even the guaranteed-earliest arrivals
        (lower-bound delays) miss it; INDETERMINATE in between.  Unlike the
        legacy analyzer, all three models were already propagated together, so
        this reads two numbers instead of running two analyses.
        """
        if self.worst_slack(DelayModel.UPPER_BOUND) >= 0.0:
            return Verdict.PASS
        if self.worst_slack(DelayModel.LOWER_BOUND) < 0.0:
            return Verdict.FAIL
        return Verdict.INDETERMINATE

    def summary(
        self, path_model: DelayModel = DelayModel.UPPER_BOUND
    ) -> DesignTimingSummary:
        """The JSON-friendly design-level summary (see the CLI's ``timing``).

        ``path_model`` selects the delay model the critical path is traced
        under (the sign-off upper bound by default).
        """
        worst_slack = {model.value: self.worst_slack(model) for model in _MODELS}
        worst_endpoint: Dict[str, Optional[str]] = {}
        for model in _MODELS:
            slacks = self.endpoint_slacks(model)
            worst_endpoint[model.value] = (
                min(slacks, key=slacks.get) if slacks else None
            )
        return DesignTimingSummary(
            design=self._db.design.name,
            clock_period=self._clock_period,
            threshold=self._threshold,
            worst_slack=worst_slack,
            worst_endpoint=worst_endpoint,
            verdict=self.certify().name,
            critical_path=self.critical_path(path_model),
        )

    # ------------------------------------------------------------------
    # Scenario-batched analysis
    # ------------------------------------------------------------------
    def _scenario_bound_matrix(
        self,
        table: ScenarioSinkTable,
        thresholds: np.ndarray,
        model: DelayModel,
    ) -> np.ndarray:
        """``(S, rows)`` wire delays for one bound model, per-scenario thresholds.

        Scenarios sharing a threshold are evaluated in one batched bound
        call; rows whose stage carries no capacitance in a scenario stay at
        zero delay, mirroring the single-scenario ``live`` handling.
        """
        bound = (
            delay_upper_bound_batch
            if model is DelayModel.UPPER_BOUND
            else delay_lower_bound_batch
        )
        out = np.zeros(table.tde.shape)
        live = table.live
        for threshold in np.unique(thresholds):
            group = thresholds == threshold
            group_live = live[group]
            if not np.any(group_live):
                continue
            values = bound(
                table.tp[group][group_live],
                table.tde[group][group_live],
                table.tre[group][group_live],
                [threshold],
            )[:, 0]
            block = out[group]
            block[group_live] = values
            out[group] = block
        return out

    def _scenario_edge_delays(
        self, table: ScenarioSinkTable, thresholds: np.ndarray
    ) -> np.ndarray:
        """``(edges, S, 3)`` delay tensor: scenario wire delays, shared cell arcs."""
        s = table.scenario_count
        delays = np.broadcast_to(
            self._edge_delay[:, np.newaxis, :], (self._edge_count, s, 3)
        ).copy()
        edges, rows = self._net_edge_rows
        if len(edges):
            delays[edges, :, _MODEL_COLUMN[DelayModel.ELMORE]] = table.tde[:, rows].T
            delays[edges, :, _MODEL_COLUMN[DelayModel.UPPER_BOUND]] = (
                self._scenario_bound_matrix(table, thresholds, DelayModel.UPPER_BOUND)[
                    :, rows
                ].T
            )
            delays[edges, :, _MODEL_COLUMN[DelayModel.LOWER_BOUND]] = (
                self._scenario_bound_matrix(table, thresholds, DelayModel.LOWER_BOUND)[
                    :, rows
                ].T
            )
        return delays

    def analyze_scenarios(
        self,
        scenarios,
        *,
        path_model: DelayModel = DelayModel.UPPER_BOUND,
        with_critical_paths: bool = True,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> ScenarioTimingReport:
        """Propagate every scenario and every delay model in one levelized pass.

        The database solves all stage trees under the scenario derates in one
        batched forest sweep; the resulting ``(edges, S, 3)`` delay tensor is
        pushed through the same per-level relaxations as the single-scenario
        run, with the scenario axis riding along.  Per-scenario worst slack,
        the ternary verdict (against each scenario's own clock period) and
        the critical path under ``path_model`` come out together.  The
        graph's cached single-scenario arrivals are untouched.

        ``engine`` / ``jobs`` pick the :mod:`repro.parallel` backend for the
        forest solve (``None`` auto-selects by sweep size; the levelized
        propagation itself stays in-process) -- see the CLI's
        ``timing --jobs``.  Results are backend-independent.
        """
        table = self._db.solve_scenarios(scenarios, engine=engine, jobs=jobs)
        s = table.scenario_count
        thresholds = scenarios.thresholds(self._threshold)
        periods = scenarios.clock_periods(self._clock_period)
        delays = self._scenario_edge_delays(table, thresholds)
        arrivals = self._propagate_tensor(delays)

        endpoint_names = [
            name for name in self._endpoints if name in self._vertex_index
        ]
        if len(self._endpoint_vertices):
            endpoint_arrivals = arrivals[self._endpoint_vertices]  # (K, S, 3)
            worst_slack = periods[:, np.newaxis] - endpoint_arrivals.max(axis=0)
            worst_index = endpoint_arrivals.argmax(axis=0)  # (S, 3)
            worst_endpoint = [
                {
                    model.value: endpoint_names[int(worst_index[index, column])]
                    for column, model in enumerate(_MODELS)
                }
                for index in range(s)
            ]
        else:
            worst_slack = np.repeat(periods[:, np.newaxis], 3, axis=1)
            worst_endpoint = [
                {model.value: None for model in _MODELS} for _ in range(s)
            ]

        upper = worst_slack[:, _MODEL_COLUMN[DelayModel.UPPER_BOUND]]
        lower = worst_slack[:, _MODEL_COLUMN[DelayModel.LOWER_BOUND]]
        verdicts = [
            Verdict.PASS.name
            if upper[index] >= 0.0
            else (
                Verdict.FAIL.name
                if lower[index] < 0.0
                else Verdict.INDETERMINATE.name
            )
            for index in range(s)
        ]

        critical_paths: List[List[PathSegment]] = [[] for _ in range(s)]
        if with_critical_paths and len(self._endpoint_vertices):
            column = _MODEL_COLUMN[path_model]
            for index in range(s):
                endpoint = int(
                    self._endpoint_vertices[
                        np.argmax(arrivals[self._endpoint_vertices, index, column])
                    ]
                )
                critical_paths[index] = self._trace_path(
                    endpoint, arrivals[:, index, column], delays[:, index, column]
                )

        return ScenarioTimingReport(
            design=self._db.design.name,
            scenario_names=list(table.scenario_names),
            clock_periods=periods,
            thresholds=thresholds,
            worst_slack=worst_slack,
            worst_endpoint=worst_endpoint,
            verdicts=verdicts,
            critical_paths=critical_paths,
            path_model=path_model.value,
        )

    def scenario_pin_slacks(
        self,
        scenarios,
        model: DelayModel = DelayModel.UPPER_BOUND,
        *,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> Dict[str, np.ndarray]:
        """Per-pin slack vectors over the scenario axis, one delay model.

        Runs the forward *and* backward levelized sweeps over the scenario
        tensor and returns ``required - arrival`` per pin as an ``(S,)``
        array (``+inf`` off every endpoint cone), keyed by pin name.
        ``engine`` / ``jobs`` select the forest-solve backend.
        """
        table = self._db.solve_scenarios(scenarios, engine=engine, jobs=jobs)
        thresholds = scenarios.thresholds(self._threshold)
        periods = scenarios.clock_periods(self._clock_period)
        column = _MODEL_COLUMN[model]
        delays = self._scenario_edge_delays(table, thresholds)[:, :, column]
        arrivals = self._propagate_tensor(delays)
        required = np.full(arrivals.shape, np.inf)
        if len(self._endpoint_vertices):
            required[self._endpoint_vertices] = periods
        src = self._edge_src
        dst = self._edge_dst
        for bucket in reversed(self._backward_buckets):
            np.minimum.at(required, src[bucket], required[dst[bucket]] - delays[bucket])
        slack = required - arrivals
        return {name: slack[i] for i, name in enumerate(self._vertex_names)}

    def whatif_resize_worst_slack(
        self,
        swaps: Sequence[Tuple[str, Cell]],
        model: DelayModel = DelayModel.UPPER_BOUND,
        *,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> np.ndarray:
        """Worst slack if cell swap ``s`` were applied -- all swaps batched.

        Candidates are evaluated *as scenarios*: the database builds one
        forest element plane per candidate (drive resistance on its output
        net, input load on the nets it drives), a single batched solve yields
        every candidate's stage times, and one ``(edges, S)`` propagation
        produces every candidate's worst slack under ``model``.  Nothing is
        mutated -- this is the decision kernel of
        :func:`repro.opt.sizing.upsize_critical_path`, replacing its
        per-candidate trial loop.  ``engine`` and ``jobs`` pin the batched
        solve's kernel backend exactly as in :meth:`analyze_scenarios`.
        """
        if not swaps:
            return np.zeros(0)
        column = _MODEL_COLUMN[model]
        edge_r, node_c = self._db.whatif_cell_elements(swaps)
        forest = self._db.forest
        times = forest.solve_batch(
            edge_r=edge_r, node_c=node_c, count=len(swaps), engine=engine, jobs=jobs
        )
        layout = self._db._scenario_layout()
        tp = times.tp[:, layout.sink_tree]
        tde = times.tde[:, layout.sink_nodes]
        total = times.total_capacitance[:, layout.sink_tree]
        if model is DelayModel.ELMORE:
            wire = tde
        else:
            table = ScenarioSinkTable(
                scenario_names=[name for name, _ in swaps],
                nets=list(self._db.sinks.nets),
                pins=list(self._db.sinks.pins),
                tp=tp,
                tde=tde,
                tre=times.tre[:, layout.sink_nodes],
                total_capacitance=total,
            )
            wire = self._scenario_bound_matrix(
                table, np.full(len(swaps), self._threshold), model
            )
        delays = np.broadcast_to(
            self._edge_delay[:, column][:, np.newaxis],
            (self._edge_count, len(swaps)),
        ).copy()
        edges, rows = self._net_edge_rows
        if len(edges):
            delays[edges] = wire[:, rows].T
        for index, (instance, cell) in enumerate(swaps):
            for edge in self._cell_edges.get(instance, []):
                delays[edge, index] = cell.intrinsic_delay
        arrivals = self._propagate_tensor(delays)
        if len(self._endpoint_vertices):
            worst = arrivals[self._endpoint_vertices].max(axis=0)
        else:
            worst = np.zeros(len(swaps))
        return self._clock_period - worst

    # ------------------------------------------------------------------
    # Incremental ECO re-timing
    # ------------------------------------------------------------------
    def _patch_net_delays(self, rows: Union[slice, Sequence[int]]) -> List[int]:
        """Refresh the arc delays fed by the given sink-table rows."""
        edges, table_rows = self._net_edge_rows
        if isinstance(rows, slice):
            selector = (table_rows >= rows.start) & (table_rows < rows.stop)
        else:
            selector = np.isin(table_rows, np.asarray(list(rows), dtype=np.int64))
        touched = edges[selector]
        self._edge_delay[touched] = self._net_arc_delays(table_rows[selector])
        return touched.tolist()

    def _repropagate(self, seeds: Sequence[int]) -> int:
        """Exact arrival recomputation over the downstream cone of ``seeds``.

        Each affected vertex is re-evaluated as the max over *all* its
        in-edges -- the same reduction the full forward sweep performs, so the
        updated arrivals are identical to a from-scratch propagation --
        and the walk stops at vertices whose arrivals did not change.
        Returns the number of vertices re-evaluated (the cone size).
        """
        if self._arrivals is None:
            # Nothing solved yet: the next access recomputes everything anyway.
            return 0
        arrivals = self._arrivals
        self._required = None
        pending: Dict[int, set] = {}
        for vertex in seeds:
            pending.setdefault(int(self._level[vertex]), set()).add(int(vertex))
        visited = 0
        level = self._level
        src = self._edge_src
        delay = self._edge_delay
        dst_list = self._edge_dst
        while pending:
            current = min(pending)
            for vertex in sorted(pending.pop(current)):
                visited += 1
                in_edges = self._in_edge_list(vertex)
                if len(in_edges):
                    value = np.max(
                        arrivals[src[in_edges]] + delay[in_edges], axis=0
                    )
                    np.maximum(value, 0.0, out=value)
                else:
                    value = np.zeros(3)
                if np.array_equal(value, arrivals[vertex]):
                    continue
                arrivals[vertex] = value
                for successor in dst_list[self._out_edge_list(vertex)]:
                    pending.setdefault(int(level[successor]), set()).add(
                        int(successor)
                    )
        return visited

    def update_net(
        self, net: str, parasitics: Union[NetParasitics, NetModel]
    ) -> int:
        """ECO hook: replace one net's parasitics and re-time its cone.

        Re-solves the net's stage tree in the database, patches the net's arc
        delays, and re-propagates arrivals through the downstream cone only.
        Returns the number of re-evaluated vertices.
        """
        rows = self._db.update_net(net, parasitics)
        touched = self._patch_net_delays(rows)
        seeds = {int(self._edge_dst[edge]) for edge in touched}
        return self._repropagate(sorted(seeds))

    def resize_instance(self, instance: str, cell: Cell) -> int:
        """ECO hook: swap one instance's cell and re-time its cone.

        The database re-solves the stage trees of the instance's output net
        (drive resistance changed) and of every net it loads (sink capacitance
        changed); the instance's cell arcs pick up the new intrinsic delay.
        Returns the number of re-evaluated vertices.
        """
        affected = self._db.update_instance_cell(instance, cell)
        seeds = set()
        for net in affected:
            for edge in self._patch_net_delays(self._db.sink_rows(net)):
                seeds.add(int(self._edge_dst[edge]))
        swapped = self._db.instances[instance].cell
        if swapped.is_sequential:
            labels = [f"{swapped.name} CK->Q"]
        else:
            labels = [f"{swapped.name} {pin}->Y" for pin in swapped.inputs]
        for edge, label in zip(self._cell_edges.get(instance, []), labels):
            self._edge_delay[edge, :] = swapped.intrinsic_delay
            self._edge_arcs[edge] = label
            seeds.add(int(self._edge_dst[edge]))
        return self._repropagate(sorted(seeds))
