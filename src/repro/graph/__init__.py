"""Design-scale, array-native static timing (the paper's ``OK`` at chip scope).

Two layers:

* :class:`DesignDB` -- ingest: a gate-level design plus per-net parasitics
  (dict records or SPEF streamed straight into arrays) compiled into one
  :class:`~repro.flat.FlatForest` of per-net *stage trees* and solved in a
  single batch;
* :class:`TimingGraph` -- analysis: CSR-style edge arrays, one levelization,
  per-level vectorized arrival/required relaxations for all pins and all
  three delay models at once, plus exact incremental ECO re-timing
  (:meth:`~TimingGraph.update_net`, :meth:`~TimingGraph.resize_instance`)
  that re-solves one stage tree and re-propagates only the downstream cone.

The legacy :class:`~repro.sta.analysis.TimingAnalyzer` (networkx, one vertex
at a time) is kept as the parity oracle; property tests pin the engines
together at 1e-12 relative tolerance, and
``benchmarks/bench_timing_graph.py`` asserts the speedups.
"""

from repro.graph.designdb import DesignDB, NetModel, ScenarioSinkTable, SinkTable
from repro.graph.timinggraph import (
    DesignTimingSummary,
    ScenarioTimingReport,
    TimingGraph,
)

__all__ = [
    "DesignDB",
    "NetModel",
    "SinkTable",
    "ScenarioSinkTable",
    "DesignTimingSummary",
    "ScenarioTimingReport",
    "TimingGraph",
]
