"""A miniature static timing analysis (STA) engine built on the paper's theory.

The Penfield-Rubinstein bounds (and the Elmore delay they bracket) are the
historical foundation of interconnect delay calculation in static timing
analysis.  This subpackage demonstrates that downstream use end to end:

* :mod:`repro.sta.cells` -- a tiny liberty-style cell library (linear-delay
  gates described by input capacitance, drive resistance and intrinsic
  delay);
* :mod:`repro.sta.netlist` -- gate-level designs: instances, nets, primary
  I/O;
* :mod:`repro.sta.parasitics` -- per-net interconnect: lumped capacitance or
  a full :class:`~repro.core.tree.RCTree` with pin-to-node bindings;
* :mod:`repro.sta.delaycalc` -- stage delay calculation: gate delay from the
  cell model plus interconnect delay from Elmore / the PR bounds;
* :mod:`repro.sta.analysis` -- the timing graph, arrival/required times,
  slacks and critical-path extraction, in three delay modes (``elmore``,
  ``upper_bound``, ``lower_bound``) so a design can be *certified* fast
  enough exactly in the sense of the paper's ``OK`` function.

``TimingAnalyzer`` walks a networkx pin graph one vertex at a time and is
kept as the readable reference (and parity oracle); design-scale runs and
incremental ECO loops live in the array-native :mod:`repro.graph` engine,
which shares this subpackage's :func:`~repro.sta.delaycalc.compile_stage`
per-net assembler so the two engines agree to rounding.
"""

from repro.sta.cells import Cell, standard_cell_library
from repro.sta.netlist import (
    Design,
    Instance,
    Net,
    PinRef,
    design_from_dict,
    design_to_dict,
    load_design,
    write_design,
)
from repro.sta.parasitics import NetParasitics, lumped, rc_tree_parasitics
from repro.sta.delaycalc import (
    DelayModel,
    StageDelay,
    StageTimes,
    compile_stage,
    stage_characteristic_times,
    stage_delays,
)
from repro.sta.analysis import TimingAnalyzer, TimingReport, PathSegment

__all__ = [
    "Cell",
    "standard_cell_library",
    "Design",
    "Instance",
    "Net",
    "PinRef",
    "design_from_dict",
    "design_to_dict",
    "load_design",
    "write_design",
    "NetParasitics",
    "lumped",
    "rc_tree_parasitics",
    "DelayModel",
    "StageDelay",
    "StageTimes",
    "compile_stage",
    "stage_characteristic_times",
    "stage_delays",
    "TimingAnalyzer",
    "TimingReport",
    "PathSegment",
]
