"""Timing-graph construction, arrival/required times, slack, critical paths.

The :class:`TimingAnalyzer` turns a :class:`~repro.sta.netlist.Design`, its
per-net parasitics and a clock period into a timing report:

* the timing graph has one vertex per pin (plus one per primary port), a
  *cell arc* from each input pin of a combinational cell to its output pin,
  and a *net arc* from each net's driver pin to each of its load pins;
* cell arcs carry the cell's intrinsic delay; net arcs carry the
  interconnect delay computed by :mod:`repro.sta.delaycalc` (which already
  includes the ``R_drive * C_load`` loading term);
* flip-flop D pins and primary outputs are endpoints; flip-flop Q pins and
  primary inputs are startpoints (an ideal clock network is assumed);
* slack is ``clock_period - arrival`` at every endpoint.

Running the analysis in the three delay models and combining
``UPPER_BOUND`` / ``LOWER_BOUND`` worst slacks yields exactly the paper's
ternary ``OK`` verdict for a whole digital block: PASS when even the
guaranteed-latest arrivals meet the period, FAIL when even the
guaranteed-earliest arrivals miss it, INDETERMINATE otherwise.

This engine walks a networkx graph one vertex at a time and is kept as the
readable reference and the **parity oracle** for the design-scale
:class:`~repro.graph.TimingGraph` (levelized arrays, all three models at
once, incremental ECO re-timing) -- the property tests pin the two engines
together at 1e-12 relative tolerance, and
``benchmarks/bench_timing_graph.py`` records the speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import networkx as nx

from repro.core.certify import Verdict
from repro.core.exceptions import AnalysisError
from repro.sta.delaycalc import DelayModel, StageTimes, stage_characteristic_times
from repro.sta.netlist import Design, Net, PinRef
from repro.sta.parasitics import NetParasitics, lumped
from repro.utils.checks import require_in_unit_interval


@dataclass(frozen=True)
class PathSegment:
    """One hop of a reported timing path."""

    location: str
    arc: str
    incremental_delay: float
    arrival: float


@dataclass
class TimingReport:
    """Result of one timing run."""

    delay_model: DelayModel
    clock_period: float
    #: Arrival time at every graph vertex (seconds).
    arrivals: Dict[str, float]
    #: Slack at every endpoint (seconds).
    endpoint_slacks: Dict[str, float]
    #: The worst (most negative) slack endpoint and its critical path.
    critical_path: List[PathSegment] = field(default_factory=list)

    @property
    def worst_slack(self) -> float:
        """Most negative endpoint slack (or +clock_period when there are no endpoints)."""
        if not self.endpoint_slacks:
            return self.clock_period
        return min(self.endpoint_slacks.values())

    @property
    def worst_endpoint(self) -> Optional[str]:
        """Endpoint with the worst slack."""
        if not self.endpoint_slacks:
            return None
        return min(self.endpoint_slacks, key=self.endpoint_slacks.get)

    @property
    def meets_timing(self) -> bool:
        """True when every endpoint has non-negative slack."""
        return self.worst_slack >= 0.0

    def describe(self) -> str:
        """Multi-line text report in the style of classic STA tools."""
        lines = [
            f"timing report ({self.delay_model.value} delays, period {self.clock_period * 1e9:.3f} ns)",
            f"  worst slack: {self.worst_slack * 1e9:+.4f} ns at {self.worst_endpoint}",
            "  critical path:",
        ]
        for segment in self.critical_path:
            lines.append(
                f"    {segment.arrival * 1e9:9.4f} ns  (+{segment.incremental_delay * 1e9:.4f} ns)"
                f"  {segment.location}  [{segment.arc}]"
            )
        return "\n".join(lines)


class TimingAnalyzer:
    """Static timing analysis of a gate-level design over RC-tree interconnect."""

    def __init__(
        self,
        design: Design,
        parasitics: Optional[Mapping[str, NetParasitics]] = None,
        *,
        clock_period: float = 1e-9,
        threshold: float = 0.5,
        input_drive_resistance: float = 0.0,
        default_wire_capacitance: float = 0.0,
    ):
        if clock_period <= 0:
            raise AnalysisError("clock_period must be positive")
        require_in_unit_interval("threshold", threshold)
        self._design = design
        self._parasitics = dict(parasitics or {})
        self._clock_period = clock_period
        self._threshold = threshold
        self._input_drive_resistance = input_drive_resistance
        self._default_wire_capacitance = default_wire_capacitance
        self._nets: Dict[str, Net] = design.connectivity()
        # Model-independent per-net interconnect analysis, computed once and
        # shared by every delay model (Elmore + both bounds): the flat-engine
        # solve of a net's RC tree does not depend on which number is read out.
        self._stage_cache: Dict[str, StageTimes] = {}

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _vertex(self, ref: PinRef) -> str:
        return str(ref)

    def _net_parasitics(self, net: str) -> NetParasitics:
        if net in self._parasitics:
            return self._parasitics[net]
        return lumped(net, self._default_wire_capacitance)

    def _stage_times(self, net: Net) -> StageTimes:
        """Cached model-independent stage analysis of one net."""
        cached = self._stage_cache.get(net.name)
        if cached is None:
            driver_cell = None
            override = None
            if net.driver.is_port:
                override = self._input_drive_resistance
            else:
                driver_cell = self._design.instances[net.driver.instance].cell
            cached = stage_characteristic_times(
                driver_cell,
                self._net_parasitics(net.name),
                self._sink_capacitances(net),
                drive_resistance_override=override,
            )
            self._stage_cache[net.name] = cached
        return cached

    def _sink_capacitances(self, net: Net) -> Dict[str, float]:
        instances = self._design.instances
        sinks: Dict[str, float] = {}
        for load in net.loads:
            if load.is_port:
                sinks[str(load)] = 0.0
            else:
                sinks[str(load)] = instances[load.instance].cell.input_capacitance
        return sinks

    def build_graph(self, model: DelayModel) -> nx.DiGraph:
        """Build the timing graph with arc delays for the chosen delay model."""
        graph = nx.DiGraph()
        instances = self._design.instances
        clock_nets = set(self._design.clocks)

        # Net arcs.
        for net in self._nets.values():
            if net.driver is None or not net.loads:
                continue
            if net.name in clock_nets:
                # Ideal clock network: zero-delay arcs from the clock source.
                for load in net.loads:
                    graph.add_edge(
                        self._vertex(net.driver),
                        self._vertex(load),
                        delay=0.0,
                        arc=f"clock net {net.name}",
                    )
                continue
            stage = self._stage_times(net)
            wire_delays = stage.delays(model, self._threshold)
            for load in net.loads:
                graph.add_edge(
                    self._vertex(net.driver),
                    self._vertex(load),
                    delay=wire_delays.get(str(load), 0.0),
                    arc=f"net {net.name}",
                )

        # Cell arcs.
        for instance in instances.values():
            cell = instance.cell
            output_ref = self._vertex(PinRef(instance.name, cell.output))
            if cell.is_sequential:
                clock_ref = self._vertex(PinRef(instance.name, cell.clock_pin))
                graph.add_edge(
                    clock_ref, output_ref, delay=cell.intrinsic_delay, arc=f"{cell.name} CK->Q"
                )
                continue
            for pin in cell.inputs:
                input_ref = self._vertex(PinRef(instance.name, pin))
                graph.add_edge(
                    input_ref, output_ref, delay=cell.intrinsic_delay, arc=f"{cell.name} {pin}->Y"
                )
        return graph

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def _endpoints(self) -> List[str]:
        endpoints = [name for name in self._design.primary_outputs]
        for instance in self._design.instances.values():
            if instance.cell.is_sequential:
                endpoints.append(str(PinRef(instance.name, instance.cell.inputs[0])))
        return endpoints

    def run(self, model: DelayModel = DelayModel.ELMORE) -> TimingReport:
        """Propagate arrival times and produce a :class:`TimingReport`."""
        graph = self.build_graph(model)
        if not nx.is_directed_acyclic_graph(graph):
            raise AnalysisError(
                "the timing graph has a combinational loop; break it before analysis"
            )

        arrivals: Dict[str, float] = {}
        predecessor: Dict[str, Tuple[Optional[str], float, str]] = {}

        # Startpoints: primary inputs arrive at 0; everything else starts at 0 too
        # (vertices with no predecessors), which covers flip-flop clock pins.
        for vertex in graph.nodes:
            arrivals[vertex] = 0.0
            predecessor[vertex] = (None, 0.0, "startpoint")

        for vertex in nx.topological_sort(graph):
            for _, successor, data in graph.out_edges(vertex, data=True):
                candidate = arrivals[vertex] + data["delay"]
                if candidate > arrivals[successor]:
                    arrivals[successor] = candidate
                    predecessor[successor] = (vertex, data["delay"], data["arc"])

        endpoint_slacks: Dict[str, float] = {}
        for endpoint in self._endpoints():
            arrival = arrivals.get(endpoint, 0.0)
            endpoint_slacks[endpoint] = self._clock_period - arrival

        report = TimingReport(
            delay_model=model,
            clock_period=self._clock_period,
            arrivals=arrivals,
            endpoint_slacks=endpoint_slacks,
        )
        worst = report.worst_endpoint
        if worst is not None and worst in arrivals:
            report.critical_path = self._trace_path(worst, arrivals, predecessor)
        return report

    def _trace_path(
        self,
        endpoint: str,
        arrivals: Dict[str, float],
        predecessor: Dict[str, Tuple[Optional[str], float, str]],
    ) -> List[PathSegment]:
        path: List[PathSegment] = []
        current: Optional[str] = endpoint
        while current is not None:
            previous, delay, arc = predecessor.get(current, (None, 0.0, "startpoint"))
            path.append(
                PathSegment(
                    location=current,
                    arc=arc,
                    incremental_delay=delay,
                    arrival=arrivals.get(current, 0.0),
                )
            )
            current = previous
        path.reverse()
        return path

    def certify(self) -> Verdict:
        """The paper's ternary verdict applied to the whole design.

        PASS when the guaranteed-latest arrivals (upper-bound delays) meet the
        clock period; FAIL when even the guaranteed-earliest arrivals
        (lower-bound delays) miss it; INDETERMINATE in between.
        """
        pessimistic = self.run(DelayModel.UPPER_BOUND)
        if pessimistic.meets_timing:
            return Verdict.PASS
        optimistic = self.run(DelayModel.LOWER_BOUND)
        if not optimistic.meets_timing:
            return Verdict.FAIL
        return Verdict.INDETERMINATE
