"""Stage delay calculation: gate + interconnect.

A *stage* is one driving cell plus the net it drives.  Its delay to each sink
pin is computed as

* the cell's intrinsic delay, plus
* the interconnect delay from an RC tree consisting of the cell's drive
  resistance in series with the net parasitics, with every sink pin's input
  capacitance attached at its node.

Because the drive resistance is part of the tree, the classic
``R_drive * C_load`` term of the linear gate model and the wire delay are
computed together and never double-counted.  Lumped nets are handled by the
same code path (a one-resistor, one-capacitor tree).

Three delay models are offered, mirroring the three uses the paper lists in
its abstract:

* ``DelayModel.ELMORE`` -- the Elmore delay ``T_De`` (an estimate);
* ``DelayModel.UPPER_BOUND`` -- the guaranteed-latest threshold crossing
  (eq. 16/17), what a sign-off check must use;
* ``DelayModel.LOWER_BOUND`` -- the guaranteed-earliest crossing (eq. 14/15),
  what hold-style "certainly too slow" conclusions use.

The interconnect analysis itself is model-independent, so it is performed
once per stage -- through the vectorized :mod:`repro.flat` engine -- and the
three models merely extract different numbers from the same
:class:`StageTimes` (see :func:`stage_characteristic_times`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.timeconstants import CharacteristicTimes
from repro.flat import FlatTree, delay_lower_bound_batch, delay_upper_bound_batch
from repro.sta.cells import Cell
from repro.sta.parasitics import NetParasitics
from repro.utils.checks import require_in_unit_interval, require_non_negative


class DelayModel(enum.Enum):
    """Which number to extract from the interconnect analysis."""

    ELMORE = "elmore"
    UPPER_BOUND = "upper_bound"
    LOWER_BOUND = "lower_bound"


@dataclass(frozen=True)
class StageDelay:
    """Delays of one stage (one driver, one net)."""

    net: str
    gate_delay: float
    #: Interconnect delay (driver output to sink pin), per sink pin name.
    wire_delays: Dict[str, float]

    def total(self, pin: str) -> float:
        """Total stage delay (gate + wire) to ``pin``."""
        return self.gate_delay + self.wire_delays[pin]

    @property
    def worst_sink(self) -> str:
        """Sink pin with the largest total delay."""
        return max(self.wire_delays, key=self.wire_delays.get)


def compile_stage(
    drive_resistance: Optional[float],
    sink_capacitance: Mapping[str, float],
    *,
    lumped_capacitance: float = 0.0,
    base: Optional[FlatTree] = None,
    pin_nodes: Optional[Mapping[str, str]] = None,
    _trusted: bool = False,
) -> Tuple[FlatTree, Dict[str, int], np.ndarray]:
    """Compile one stage (drive resistance + net + sink loads) straight to arrays.

    The stage tree is assembled without any intermediate dict
    :class:`~repro.core.tree.RCTree`: the driver's resistance becomes the edge
    into the net, a lumped net is a single extra node, and a distributed net
    grafts the (pre-compiled) ``base`` flat tree behind the drive resistance by
    prepending one node and shifting the parent indices.  Returns the compiled
    :class:`~repro.flat.FlatTree`, a map sink pin -> node index, and the
    *wire-only* node-capacitance array (the stage's node capacitances before
    any pin load was added).  The wire/pin split is what lets the
    scenario-batched solver of :class:`~repro.graph.DesignDB` derate wire
    parasitics and pin loads independently without a cancellation-prone
    subtraction.

    ``pin_nodes`` maps sink pins to ``base`` node names; unbound pins attach at
    the last preorder leaf (the far end of the tree, the most pessimistic
    choice for a chain), and pins bound to the base root land on the graft
    node directly behind the drive resistance.
    """
    resistance = drive_resistance if drive_resistance and drive_resistance > 0 else 1e-6
    if base is None:
        # Lumped net: one node carrying wire capacitance plus every pin cap.
        node_capacitance = lumped_capacitance
        for capacitance in sink_capacitance.values():
            node_capacitance += capacitance
        flat = FlatTree(
            ["src", "net"],
            np.asarray([-1, 0], dtype=np.int64),
            np.asarray([0.0, resistance]),
            np.zeros(2),
            np.asarray([0.0, node_capacitance]),
            np.asarray([False, True]),
            _depth=[0, 1],
            _trusted=_trusted,
        )
        wire_c = np.asarray([0.0, lumped_capacitance])
        return flat, {pin: 1 for pin in sink_capacitance}, wire_c

    # Distributed net: graft the compiled tree behind the drive resistance.
    n = len(base)
    parent = np.empty(n + 1, dtype=np.int64)
    parent[0] = -1
    parent[1] = 0
    np.add(base._parent[1:], 1, out=parent[2:])
    edge_r = np.empty(n + 1)
    edge_r[0] = 0.0
    edge_r[1] = resistance
    edge_r[2:] = base._edge_r[1:]
    edge_c = np.empty(n + 1)
    edge_c[:2] = 0.0
    edge_c[2:] = base._edge_c[1:]
    node_c = np.empty(n + 1)
    node_c[0] = 0.0
    node_c[1:] = base._node_c
    names = ["src", "drv"] + base._names[1:]
    depth = np.empty(n + 1, dtype=np.int64)
    depth[0] = 0
    np.add(base._depth, 1, out=depth[1:])
    is_output = np.zeros(n + 1, dtype=bool)

    # Last preorder leaf of the base tree, the unbound-pin fallback.
    has_child = np.zeros(n, dtype=bool)
    has_child[base._parent[1:]] = True
    fallback = int(np.flatnonzero(~has_child)[-1]) + 1

    pin_nodes = pin_nodes or {}
    pin_index: Dict[str, int] = {}
    wire_c = node_c.copy()
    for pin, capacitance in sink_capacitance.items():
        node = pin_nodes.get(pin)
        if node is None:
            index = fallback
        else:
            index = base.index(node) + 1
        node_c[index] += capacitance
        is_output[index] = True
        pin_index[pin] = index
    flat = FlatTree(
        names, parent, edge_r, edge_c, node_c, is_output, _depth=depth, _trusted=_trusted
    )
    return flat, pin_index, wire_c


@dataclass(frozen=True)
class StageTimes:
    """Model-independent analysis of one stage (one driver, one net).

    The characteristic times of a stage do not depend on the delay model --
    only the number finally *extracted* from them does -- so one compiled
    :class:`~repro.flat.FlatTree` solve serves the Elmore run and both bound
    runs.  :class:`~repro.sta.analysis.TimingAnalyzer` caches one of these per
    net, which is what makes ``certify()`` (three delay models) cost one
    interconnect analysis instead of three.
    """

    net: str
    gate_delay: float
    #: Characteristic times per sink pin; empty when the net has no capacitance.
    pin_times: Dict[str, CharacteristicTimes] = field(default_factory=dict)

    def delays(self, model: DelayModel, threshold: float) -> Dict[str, float]:
        """Extract the wire delay per sink pin for one delay model."""
        if not self.pin_times:
            return {}
        if model is DelayModel.ELMORE:
            return {pin: times.tde for pin, times in self.pin_times.items()}
        pins = list(self.pin_times)
        records = [self.pin_times[pin] for pin in pins]
        bound = (
            delay_upper_bound_batch
            if model is DelayModel.UPPER_BOUND
            else delay_lower_bound_batch
        )
        values = bound(
            np.asarray([t.tp for t in records]),
            np.asarray([t.tde for t in records]),
            np.asarray([t.tre for t in records]),
            [threshold],
        )[:, 0]
        return dict(zip(pins, values.tolist()))


def stage_characteristic_times(
    driver_cell: Optional[Cell],
    parasitics: NetParasitics,
    sink_capacitance: Mapping[str, float],
    *,
    drive_resistance_override: Optional[float] = None,
    _base: Optional[FlatTree] = None,
) -> StageTimes:
    """Analyse one stage once, for every delay model.

    Compiles the stage straight to a :class:`~repro.flat.FlatTree` through
    :func:`compile_stage` -- the same array path the design-scale
    :class:`~repro.graph.DesignDB` batches over a whole netlist -- and returns
    the characteristic times of every sink pin.  A stage with no capacitance
    anywhere settles instantaneously in the linear model and yields an empty
    ``pin_times``.  ``_base`` lets callers that already compiled the net's
    parasitic tree skip the per-call compile.
    """
    if drive_resistance_override is not None:
        require_non_negative("drive_resistance_override", drive_resistance_override)
        resistance = drive_resistance_override
    elif driver_cell is not None:
        resistance = driver_cell.drive_resistance
    else:
        resistance = 0.0
    intrinsic = driver_cell.intrinsic_delay if driver_cell is not None else 0.0

    base = _base
    if base is None and parasitics.tree is not None:
        base = FlatTree.from_tree(parasitics.tree)
    flat, pin_index, _ = compile_stage(
        resistance,
        sink_capacitance,
        lumped_capacitance=parasitics.lumped_capacitance,
        base=base,
        pin_nodes=parasitics.pin_nodes,
    )
    if flat.total_capacitance <= 0.0:
        # Nothing to charge: the net settles instantaneously in the linear
        # model, whichever bound is requested.
        return StageTimes(net=parasitics.net, gate_delay=intrinsic)

    times = flat.solve()
    pin_times = {
        pin: CharacteristicTimes(
            output=flat.name_of(index),
            tp=times.tp,
            tde=float(times.tde[index]),
            tre=float(times.tre[index]),
            ree=float(times.ree[index]),
            total_capacitance=times.total_capacitance,
        )
        for pin, index in pin_index.items()
    }
    return StageTimes(net=parasitics.net, gate_delay=intrinsic, pin_times=pin_times)


def stage_delays(
    driver_cell: Optional[Cell],
    parasitics: NetParasitics,
    sink_capacitance: Mapping[str, float],
    *,
    model: DelayModel = DelayModel.ELMORE,
    threshold: float = 0.5,
    drive_resistance_override: Optional[float] = None,
) -> StageDelay:
    """Compute the delays of one stage.

    Parameters
    ----------
    driver_cell:
        The driving cell (supplies intrinsic delay and drive resistance).
        ``None`` models an ideal primary-input driver.
    parasitics:
        The net's interconnect description.
    sink_capacitance:
        Mapping sink pin name -> input capacitance (farads).
    model:
        Which delay number to extract (Elmore or one of the PR bounds).
    threshold:
        Voltage threshold used by the bound models (ignored for Elmore).
    drive_resistance_override:
        Use this resistance instead of the cell's (for input-port drivers).

    Callers that need several delay models of the same stage should use
    :func:`stage_characteristic_times` once and extract per model.
    """
    threshold = require_in_unit_interval("threshold", threshold)
    stage = stage_characteristic_times(
        driver_cell,
        parasitics,
        sink_capacitance,
        drive_resistance_override=drive_resistance_override,
    )
    if not stage.pin_times:
        return StageDelay(
            net=parasitics.net,
            gate_delay=stage.gate_delay,
            wire_delays={pin: 0.0 for pin in sink_capacitance},
        )
    return StageDelay(
        net=parasitics.net,
        gate_delay=stage.gate_delay,
        wire_delays=stage.delays(model, threshold),
    )
