"""Stage delay calculation: gate + interconnect.

A *stage* is one driving cell plus the net it drives.  Its delay to each sink
pin is computed as

* the cell's intrinsic delay, plus
* the interconnect delay from an RC tree consisting of the cell's drive
  resistance in series with the net parasitics, with every sink pin's input
  capacitance attached at its node.

Because the drive resistance is part of the tree, the classic
``R_drive * C_load`` term of the linear gate model and the wire delay are
computed together and never double-counted.  Lumped nets are handled by the
same code path (a one-resistor, one-capacitor tree).

Three delay models are offered, mirroring the three uses the paper lists in
its abstract:

* ``DelayModel.ELMORE`` -- the Elmore delay ``T_De`` (an estimate);
* ``DelayModel.UPPER_BOUND`` -- the guaranteed-latest threshold crossing
  (eq. 16/17), what a sign-off check must use;
* ``DelayModel.LOWER_BOUND`` -- the guaranteed-earliest crossing (eq. 14/15),
  what hold-style "certainly too slow" conclusions use.

The interconnect analysis itself is model-independent, so it is performed
once per stage -- through the vectorized :mod:`repro.flat` engine -- and the
three models merely extract different numbers from the same
:class:`StageTimes` (see :func:`stage_characteristic_times`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.timeconstants import CharacteristicTimes
from repro.core.tree import RCTree
from repro.flat import FlatTree, delay_lower_bound_batch, delay_upper_bound_batch
from repro.sta.cells import Cell
from repro.sta.parasitics import NetParasitics
from repro.utils.checks import require_in_unit_interval, require_non_negative


class DelayModel(enum.Enum):
    """Which number to extract from the interconnect analysis."""

    ELMORE = "elmore"
    UPPER_BOUND = "upper_bound"
    LOWER_BOUND = "lower_bound"


@dataclass(frozen=True)
class StageDelay:
    """Delays of one stage (one driver, one net)."""

    net: str
    gate_delay: float
    #: Interconnect delay (driver output to sink pin), per sink pin name.
    wire_delays: Dict[str, float]

    def total(self, pin: str) -> float:
        """Total stage delay (gate + wire) to ``pin``."""
        return self.gate_delay + self.wire_delays[pin]

    @property
    def worst_sink(self) -> str:
        """Sink pin with the largest total delay."""
        return max(self.wire_delays, key=self.wire_delays.get)


def _stage_tree(
    drive_resistance: Optional[float],
    parasitics: NetParasitics,
    sink_capacitance: Mapping[str, float],
) -> RCTree:
    """Assemble the stage's RC tree: drive resistance + net + sink pin caps."""
    tree = RCTree("src")
    if parasitics.tree is None:
        # Lumped net: one node carrying wire capacitance plus every pin cap.
        node = "net"
        resistance = drive_resistance if drive_resistance and drive_resistance > 0 else 1e-6
        tree.add_resistor("src", node, resistance)
        tree.add_capacitor(node, parasitics.lumped_capacitance)
        for pin, capacitance in sink_capacitance.items():
            tree.add_capacitor(node, capacitance)
            tree.mark_output(node)
        if not sink_capacitance:
            tree.mark_output(node)
        return tree

    # Distributed net: graft the extracted tree behind the drive resistance.
    source = parasitics.tree
    prefix_root = "drv"
    if drive_resistance and drive_resistance > 0:
        tree.add_resistor("src", prefix_root, drive_resistance)
    else:
        tree.add_resistor("src", prefix_root, 1e-6)

    mapping = {source.root: prefix_root}

    def mapped(name: str) -> str:
        return mapping.setdefault(name, name)

    for name in source.preorder():
        if name != source.root:
            edge = source.parent_edge(name)
            tree.add_element(mapped(edge.parent), mapped(name), edge.element)
        capacitance = source.node_capacitance(name)
        if capacitance:
            tree.add_capacitor(mapped(name), capacitance)

    for pin, capacitance in sink_capacitance.items():
        node = parasitics.node_for_pin(pin)
        if node is None:
            # Unbound pin: attach its load at the far end of the tree by
            # convention (the most pessimistic choice for a chain).
            node = source.leaves()[-1]
        tree.add_capacitor(mapped(node), capacitance)
        tree.mark_output(mapped(node))
    return tree


@dataclass(frozen=True)
class StageTimes:
    """Model-independent analysis of one stage (one driver, one net).

    The characteristic times of a stage do not depend on the delay model --
    only the number finally *extracted* from them does -- so one compiled
    :class:`~repro.flat.FlatTree` solve serves the Elmore run and both bound
    runs.  :class:`~repro.sta.analysis.TimingAnalyzer` caches one of these per
    net, which is what makes ``certify()`` (three delay models) cost one
    interconnect analysis instead of three.
    """

    net: str
    gate_delay: float
    #: Characteristic times per sink pin; empty when the net has no capacitance.
    pin_times: Dict[str, CharacteristicTimes] = field(default_factory=dict)

    def delays(self, model: DelayModel, threshold: float) -> Dict[str, float]:
        """Extract the wire delay per sink pin for one delay model."""
        if not self.pin_times:
            return {}
        if model is DelayModel.ELMORE:
            return {pin: times.tde for pin, times in self.pin_times.items()}
        pins = list(self.pin_times)
        records = [self.pin_times[pin] for pin in pins]
        bound = (
            delay_upper_bound_batch
            if model is DelayModel.UPPER_BOUND
            else delay_lower_bound_batch
        )
        values = bound(
            np.asarray([t.tp for t in records]),
            np.asarray([t.tde for t in records]),
            np.asarray([t.tre for t in records]),
            [threshold],
        )[:, 0]
        return dict(zip(pins, values.tolist()))


def stage_characteristic_times(
    driver_cell: Optional[Cell],
    parasitics: NetParasitics,
    sink_capacitance: Mapping[str, float],
    *,
    drive_resistance_override: Optional[float] = None,
) -> StageTimes:
    """Analyse one stage once, for every delay model.

    Builds the stage's RC tree, compiles it to a
    :class:`~repro.flat.FlatTree`, and returns the characteristic times of
    every sink pin.  A stage with no capacitance anywhere settles
    instantaneously in the linear model and yields an empty ``pin_times``.
    """
    if drive_resistance_override is not None:
        require_non_negative("drive_resistance_override", drive_resistance_override)
        resistance = drive_resistance_override
    elif driver_cell is not None:
        resistance = driver_cell.drive_resistance
    else:
        resistance = 0.0
    intrinsic = driver_cell.intrinsic_delay if driver_cell is not None else 0.0

    tree = _stage_tree(resistance, parasitics, sink_capacitance)
    if tree.total_capacitance <= 0.0:
        # Nothing to charge: the net settles instantaneously in the linear
        # model, whichever bound is requested.
        return StageTimes(net=parasitics.net, gate_delay=intrinsic)

    # Map sink pins back to tree nodes for the delay query.
    pin_to_node: Dict[str, str] = {}
    for pin in sink_capacitance:
        node = parasitics.node_for_pin(pin)
        if parasitics.tree is None:
            pin_to_node[pin] = "net"
        elif node is None:
            pin_to_node[pin] = parasitics.tree.leaves()[-1]
        else:
            pin_to_node[pin] = node if node != parasitics.tree.root else "drv"

    flat = FlatTree.from_tree(tree)
    query_nodes = sorted(set(pin_to_node.values())) or flat.outputs
    times = flat.characteristic_times_all(query_nodes)
    pin_times = {pin: times[pin_to_node[pin]] for pin in sink_capacitance}
    return StageTimes(net=parasitics.net, gate_delay=intrinsic, pin_times=pin_times)


def stage_delays(
    driver_cell: Optional[Cell],
    parasitics: NetParasitics,
    sink_capacitance: Mapping[str, float],
    *,
    model: DelayModel = DelayModel.ELMORE,
    threshold: float = 0.5,
    drive_resistance_override: Optional[float] = None,
) -> StageDelay:
    """Compute the delays of one stage.

    Parameters
    ----------
    driver_cell:
        The driving cell (supplies intrinsic delay and drive resistance).
        ``None`` models an ideal primary-input driver.
    parasitics:
        The net's interconnect description.
    sink_capacitance:
        Mapping sink pin name -> input capacitance (farads).
    model:
        Which delay number to extract (Elmore or one of the PR bounds).
    threshold:
        Voltage threshold used by the bound models (ignored for Elmore).
    drive_resistance_override:
        Use this resistance instead of the cell's (for input-port drivers).

    Callers that need several delay models of the same stage should use
    :func:`stage_characteristic_times` once and extract per model.
    """
    threshold = require_in_unit_interval("threshold", threshold)
    stage = stage_characteristic_times(
        driver_cell,
        parasitics,
        sink_capacitance,
        drive_resistance_override=drive_resistance_override,
    )
    if not stage.pin_times:
        return StageDelay(
            net=parasitics.net,
            gate_delay=stage.gate_delay,
            wire_delays={pin: 0.0 for pin in sink_capacitance},
        )
    return StageDelay(
        net=parasitics.net,
        gate_delay=stage.gate_delay,
        wire_delays=stage.delays(model, threshold),
    )
