"""A miniature standard-cell library for the STA demonstrator.

Each :class:`Cell` is described by the three numbers a linear (RC) delay
model needs per cell: input pin capacitance, output drive resistance and an
intrinsic (unloaded) delay.  The gate delay of a stage is then

.. math::

    d_{gate} = d_{intrinsic} + R_{drive} \\cdot C_{load}

and ``R_drive`` also serves as the source resistance in front of the net's RC
tree, exactly the way the paper models its driving inverter as a linear
resistor.  Values are representative of a generic 1-micron CMOS library; the
point of this subpackage is the algorithmic flow, not a particular PDK.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.checks import require_non_negative, require_positive


@dataclass(frozen=True)
class Cell:
    """One library cell described by a linear delay model.

    Attributes
    ----------
    name:
        Cell name, e.g. ``"NAND2_X1"``.
    inputs:
        Input pin names.
    output:
        Output pin name (single-output cells only).
    input_capacitance:
        Capacitance of each input pin, farads.
    drive_resistance:
        Effective output resistance, ohms.
    intrinsic_delay:
        Unloaded propagation delay, seconds.
    is_sequential:
        True for flip-flops; their data pin is a timing endpoint and their
        output launches a new path.
    clock_pin:
        Name of the clock pin for sequential cells.
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    input_capacitance: float
    drive_resistance: float
    intrinsic_delay: float
    is_sequential: bool = False
    clock_pin: str = ""

    def __post_init__(self):
        require_non_negative("input_capacitance", self.input_capacitance)
        require_positive("drive_resistance", self.drive_resistance)
        require_non_negative("intrinsic_delay", self.intrinsic_delay)
        if not self.inputs:
            raise ValueError(f"cell {self.name!r} has no input pins")

    @property
    def pins(self) -> Tuple[str, ...]:
        """All pin names (inputs, clock if any, then the output)."""
        extra = (self.clock_pin,) if self.clock_pin else ()
        return self.inputs + extra + (self.output,)

    def scaled(self, factor: float) -> "Cell":
        """A drive-strength-scaled variant (``factor`` 2 halves R, doubles C)."""
        require_positive("factor", factor)
        return Cell(
            name=f"{self.name}_scaled{factor:g}",
            inputs=self.inputs,
            output=self.output,
            input_capacitance=self.input_capacitance * factor,
            drive_resistance=self.drive_resistance / factor,
            intrinsic_delay=self.intrinsic_delay,
            is_sequential=self.is_sequential,
            clock_pin=self.clock_pin,
        )


def standard_cell_library() -> Dict[str, Cell]:
    """The built-in cell library used by the examples and tests.

    Drive strengths follow the usual ``_X1`` / ``_X2`` / ``_X4`` convention:
    each step up halves the drive resistance and doubles the input load.
    """
    base_resistance = 6.0e3  # ohms, X1 inverter
    base_capacitance = 6.0e-15  # farads, X1 inverter input
    base_delay = 40e-12  # seconds

    def variants(name: str, inputs: Tuple[str, ...], *, r_scale: float, c_scale: float, d_scale: float):
        cells = {}
        for strength in (1, 2, 4):
            cells[f"{name}_X{strength}"] = Cell(
                name=f"{name}_X{strength}",
                inputs=inputs,
                output="Y",
                input_capacitance=base_capacitance * c_scale * strength,
                drive_resistance=base_resistance * r_scale / strength,
                intrinsic_delay=base_delay * d_scale,
            )
        return cells

    library: Dict[str, Cell] = {}
    library.update(variants("INV", ("A",), r_scale=1.0, c_scale=1.0, d_scale=1.0))
    library.update(variants("BUF", ("A",), r_scale=1.0, c_scale=1.0, d_scale=2.0))
    library.update(variants("NAND2", ("A", "B"), r_scale=1.3, c_scale=1.1, d_scale=1.4))
    library.update(variants("NOR2", ("A", "B"), r_scale=1.8, c_scale=1.1, d_scale=1.6))
    library.update(variants("AND2", ("A", "B"), r_scale=1.3, c_scale=1.1, d_scale=2.2))
    library.update(variants("XOR2", ("A", "B"), r_scale=1.6, c_scale=1.8, d_scale=2.6))

    for strength in (1, 2):
        library[f"DFF_X{strength}"] = Cell(
            name=f"DFF_X{strength}",
            inputs=("D",),
            output="Q",
            input_capacitance=base_capacitance * 1.2 * strength,
            drive_resistance=base_resistance / strength,
            intrinsic_delay=base_delay * 3.0,
            is_sequential=True,
            clock_pin="CK",
        )
    return library
