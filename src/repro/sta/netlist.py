"""Gate-level designs: instances, nets and primary I/O.

A :class:`Design` is a flat gate-level netlist.  Every net has exactly one
driver (a primary input or an instance output pin) and any number of loads
(instance input pins and/or primary outputs) -- the same single-driver
discipline the RC-tree theory assumes for interconnect.

Designs round-trip through a small JSON form (:func:`design_to_dict` /
:func:`design_from_dict`, :func:`load_design` for files) so the CLI's
``timing`` subcommand can consume netlists from disk; cells are resolved by
name against a library (default
:func:`~repro.sta.cells.standard_cell_library`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.exceptions import ParseError, TopologyError
from repro.sta.cells import Cell, standard_cell_library


@dataclass(frozen=True)
class PinRef:
    """A reference to one pin of one instance (or a primary I/O port).

    ``instance`` is ``None`` for ports; ``pin`` then holds the port name.
    """

    instance: Optional[str]
    pin: str

    @property
    def is_port(self) -> bool:
        """True when this reference names a primary input/output port."""
        return self.instance is None

    def __str__(self) -> str:
        return self.pin if self.is_port else f"{self.instance}/{self.pin}"


@dataclass
class Instance:
    """One placed cell: a name, its library cell, and pin-to-net connections."""

    name: str
    cell: Cell
    connections: Dict[str, str]

    def net_of(self, pin: str) -> str:
        """Net connected to ``pin`` (raises ``KeyError`` if unconnected)."""
        return self.connections[pin]


@dataclass
class Net:
    """A net with one driver and a list of loads (filled in by ``Design.connectivity``)."""

    name: str
    driver: Optional[PinRef] = None
    loads: List[PinRef] = field(default_factory=list)


class Design:
    """A flat gate-level netlist."""

    def __init__(self, name: str):
        self.name = name
        self._instances: Dict[str, Instance] = {}
        self._primary_inputs: List[str] = []
        self._primary_outputs: List[str] = []
        self._clocks: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_instance(self, name: str, cell: Cell, **connections: str) -> Instance:
        """Place ``cell`` as instance ``name``; keyword arguments map pins to nets."""
        if name in self._instances:
            raise TopologyError(f"instance {name!r} already exists")
        missing = [pin for pin in cell.pins if pin not in connections]
        if missing:
            raise TopologyError(f"instance {name!r} leaves pins {missing!r} unconnected")
        unknown = [pin for pin in connections if pin not in cell.pins]
        if unknown:
            raise TopologyError(f"instance {name!r} connects unknown pins {unknown!r}")
        instance = Instance(name=name, cell=cell, connections=dict(connections))
        self._instances[name] = instance
        return instance

    def add_primary_input(self, net: str) -> None:
        """Declare ``net`` to be driven from outside the design."""
        if net not in self._primary_inputs:
            self._primary_inputs.append(net)

    def add_primary_output(self, net: str) -> None:
        """Declare ``net`` to be observed outside the design (a timing endpoint)."""
        if net not in self._primary_outputs:
            self._primary_outputs.append(net)

    def add_clock(self, net: str) -> None:
        """Declare ``net`` to be a clock (drives flip-flop clock pins, ideal network)."""
        if net not in self._clocks:
            self._clocks.append(net)
        self.add_primary_input(net)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def instances(self) -> Dict[str, Instance]:
        """All instances by name."""
        return dict(self._instances)

    @property
    def primary_inputs(self) -> List[str]:
        """Primary input net names."""
        return list(self._primary_inputs)

    @property
    def primary_outputs(self) -> List[str]:
        """Primary output net names."""
        return list(self._primary_outputs)

    @property
    def clocks(self) -> List[str]:
        """Clock net names."""
        return list(self._clocks)

    def connectivity(self) -> Dict[str, Net]:
        """Build the net table: driver and loads of every net.

        Raises :class:`TopologyError` for multiply-driven or undriven nets
        (floating inputs), which would make timing analysis meaningless.
        """
        nets: Dict[str, Net] = {}

        def net(name: str) -> Net:
            if name not in nets:
                nets[name] = Net(name=name)
            return nets[name]

        for name in self._primary_inputs:
            record = net(name)
            record.driver = PinRef(None, name)
        for name in self._primary_outputs:
            net(name).loads.append(PinRef(None, name))

        for instance in self._instances.values():
            cell = instance.cell
            for pin, net_name in instance.connections.items():
                reference = PinRef(instance.name, pin)
                record = net(net_name)
                if pin == cell.output:
                    if record.driver is not None:
                        raise TopologyError(
                            f"net {net_name!r} is driven both by {record.driver} and {reference}"
                        )
                    record.driver = reference
                else:
                    record.loads.append(reference)

        undriven = [n.name for n in nets.values() if n.driver is None and n.loads]
        if undriven:
            raise TopologyError(f"nets {undriven!r} have loads but no driver")
        return nets

    def validate(self) -> None:
        """Run the connectivity checks without returning the net table."""
        self.connectivity()


# ----------------------------------------------------------------------
# JSON interchange
# ----------------------------------------------------------------------
def design_to_dict(design: Design) -> dict:
    """Serialise a design to the JSON-friendly netlist form.

    Cells are referenced by name; the consumer resolves them against a
    library (see :func:`design_from_dict`).
    """
    return {
        "name": design.name,
        "primary_inputs": design.primary_inputs,
        "primary_outputs": design.primary_outputs,
        "clocks": design.clocks,
        "instances": {
            instance.name: {
                "cell": instance.cell.name,
                "connections": dict(instance.connections),
            }
            for instance in design.instances.values()
        },
    }


def design_from_dict(
    data: Mapping, library: Optional[Dict[str, Cell]] = None
) -> Design:
    """Build a :class:`Design` from the JSON netlist form.

    Raises :class:`~repro.core.exceptions.ParseError` for unknown cells or a
    malformed document, and the usual
    :class:`~repro.core.exceptions.TopologyError` for bad connectivity.
    """
    library = library or standard_cell_library()
    try:
        design = Design(str(data.get("name", "design")))
        for net in data.get("clocks", []):
            design.add_clock(net)
        for net in data.get("primary_inputs", []):
            design.add_primary_input(net)
        for net in data.get("primary_outputs", []):
            design.add_primary_output(net)
        instances = data.get("instances", {})
        items = instances.items() if isinstance(instances, Mapping) else None
    except AttributeError as error:
        raise ParseError(f"malformed netlist document: {error}") from None
    if items is None:
        raise ParseError("netlist 'instances' must be a mapping of name -> record")
    for name, record in items:
        if not isinstance(record, Mapping):
            raise ParseError(
                f"instance {name!r} must be a mapping with 'cell' and 'connections'"
            )
        cell_name = record.get("cell")
        cell = library.get(cell_name)
        if cell is None:
            raise ParseError(
                f"instance {name!r} uses cell {cell_name!r}, not in the library"
            )
        connections = record.get("connections", {})
        if not isinstance(connections, Mapping):
            raise ParseError(f"instance {name!r} 'connections' must be a mapping")
        design.add_instance(name, cell, **connections)
    return design


def load_design(path, library: Optional[Dict[str, Cell]] = None) -> Design:
    """Read a JSON netlist file into a :class:`Design`."""
    with open(path, "r", encoding="utf-8") as handle:
        return design_from_dict(json.load(handle), library)


def write_design(design: Design, path) -> None:
    """Write a design to ``path`` in the JSON netlist form."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(design_to_dict(design), handle, indent=2, sort_keys=True)
        handle.write("\n")
