"""Per-net interconnect descriptions for the STA engine.

A net's parasitics are either

* a single lumped capacitance (the pre-layout estimate), or
* a full :class:`~repro.core.tree.RCTree` (post-layout extraction) together
  with a mapping from sink pins to tree nodes, so the delay calculator knows
  which output of the tree each receiving pin corresponds to.

:func:`rc_tree_parasitics` builds the latter; :func:`lumped` the former.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.exceptions import UnknownNodeError
from repro.core.tree import RCTree
from repro.utils.checks import require_non_negative


@dataclass(frozen=True)
class NetParasitics:
    """Interconnect parasitics of one net.

    Exactly one of ``lumped_capacitance`` / ``tree`` is meaningful: when
    ``tree`` is ``None`` the net is modelled as a lumped capacitor, otherwise
    as an RC tree whose input is the driver pin and whose ``pin_nodes`` map
    sink pin names (``"instance/pin"``) to tree nodes.
    """

    net: str
    lumped_capacitance: float = 0.0
    tree: Optional[RCTree] = None
    pin_nodes: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        require_non_negative("lumped_capacitance", self.lumped_capacitance)
        if self.tree is not None:
            for pin, node in self.pin_nodes.items():
                if node not in self.tree:
                    raise UnknownNodeError(node)

    @property
    def is_distributed(self) -> bool:
        """True when the net carries a full RC tree."""
        return self.tree is not None

    def wire_capacitance(self) -> float:
        """Total wire capacitance of the net (excludes receiver pin caps)."""
        if self.tree is not None:
            return self.tree.total_capacitance
        return self.lumped_capacitance

    def node_for_pin(self, pin: str) -> Optional[str]:
        """Tree node bound to ``pin``, or ``None`` for lumped nets/unbound pins."""
        if self.tree is None:
            return None
        return self.pin_nodes.get(pin)


def lumped(net: str, capacitance: float) -> NetParasitics:
    """Lumped-capacitance parasitics for ``net``."""
    return NetParasitics(net=net, lumped_capacitance=capacitance)


def rc_tree_parasitics(net: str, tree: RCTree, pin_nodes: Dict[str, str]) -> NetParasitics:
    """RC-tree parasitics for ``net``.

    ``pin_nodes`` maps each sink pin (``"instance/pin"`` or a port name) to
    the tree node where that pin connects.
    """
    return NetParasitics(net=net, tree=tree, pin_nodes=dict(pin_nodes))
