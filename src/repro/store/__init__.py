"""Out-of-core storage tier: memory-mapped shard store for FlatForest.

The package promotes :func:`repro.parallel.plan_shards` ranges to the
persistence unit.  A store directory holds node-major ``np.memmap`` shard
files plus a small JSON manifest (:mod:`repro.store.format`); ingest
streams trees into shards with O(shard) peak RSS
(:class:`~repro.store.ShardStoreWriter`, :mod:`repro.store.ingest`); and
:class:`~repro.store.StoredForest` solves shard-by-shard through the
ordinary :mod:`repro.parallel` backend registry while keeping the
resident set bounded by the hot-shard LRU, the scenario chunk and one
shard's result window.

Typical flow::

    from repro.store import ingest_spef, StoredForest

    with open("design.spef") as handle:
        ingest_spef(handle, "design.store")
    forest = StoredForest("design.store")
    times = forest.solve()               # memmap-backed, incremental
    sweep = forest.solve_batch(edge_r=derates, count=len(derates))

`DesignDB(..., store_dir=...)` and ``timing --store DIR`` wire the same
machinery through the graph and CLI layers.
"""

from repro.store.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    RESULTS_NAME,
    Manifest,
    ResultsRecord,
    ShardRecord,
    depths_from_parent,
    release_memmap,
)
from repro.store.forest import DEFAULT_HOT_SHARDS, HOT_SHARDS_ENV, StoredForest
from repro.store.ingest import ingest_blocks, ingest_spef
from repro.store.writer import DEFAULT_SHARD_NODES, ShardStoreWriter

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "RESULTS_NAME",
    "Manifest",
    "ShardRecord",
    "ResultsRecord",
    "depths_from_parent",
    "release_memmap",
    "DEFAULT_HOT_SHARDS",
    "HOT_SHARDS_ENV",
    "StoredForest",
    "ingest_blocks",
    "ingest_spef",
    "DEFAULT_SHARD_NODES",
    "ShardStoreWriter",
]
