"""Streaming writer that builds a shard store without a resident forest.

:class:`ShardStoreWriter` accepts trees one at a time (or in pre-batched
blocks) and flushes a shard file whenever the buffered node count reaches
the shard target, so ingesting a million-instance design keeps peak RSS at
O(shard) instead of O(design).  Trees are never split across shards --
the shard is a contiguous run of whole trees, exactly the unit
:func:`repro.parallel.plan_shards` hands to worker processes -- so every
downstream kernel consumes shard files unchanged.

The writer is a context manager with transactional semantics: leaving the
``with`` block on an exception calls :meth:`abort`, which deletes every
file written so far.  Ingest paths (e.g. strict SPEF streaming) rely on
this to guarantee that a malformed input leaves no partial shard files
behind.
"""

from __future__ import annotations

import os
from types import TracebackType
from typing import List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.exceptions import AnalysisError
from repro.flat.flattree import FlatTree
from repro.store.format import (
    INDEX_DTYPE,
    MANIFEST_NAME,
    RESULTS_NAME,
    VALUE_DTYPE,
    Manifest,
    ShardRecord,
    depths_from_parent,
    write_shard_file,
)

#: Default shard size in nodes: 128k nodes keep one shard's planes (six
#: 8-byte fields) around 6 MiB, small enough that the ingest buffer, one
#: materialized hot shard and one solve's temporaries all fit a laptop-RAM
#: working set, yet large enough that level sweeps stay vector-wide.
DEFAULT_SHARD_NODES = 1 << 17

#: One buffered block: (starts, parent, depth, edge_r, edge_c, node_c),
#: parent block-local with roots -1.
_Block = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _as_index(values: Sequence[int], name: str) -> np.ndarray:
    array = np.ascontiguousarray(values, dtype=INDEX_DTYPE)
    if array.ndim != 1:
        raise AnalysisError(f"{name} must be one-dimensional")
    return array


def _as_value(values: Sequence[float], name: str, nodes: int) -> np.ndarray:
    array = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
    if array.shape != (nodes,):
        raise AnalysisError(f"{name} has shape {array.shape}, expected ({nodes},)")
    return array


def _validate_block(
    starts: np.ndarray, parent: np.ndarray, depth: Optional[np.ndarray]
) -> np.ndarray:
    """Check a block's topology and return its (computed) depth array.

    ``parent`` must be block-local and topological (every non-root parent
    precedes its child and stays inside its own tree), roots exactly at
    the ``starts`` positions.  All checks are vectorized -- validation
    cost is one pass over the block.
    """
    nodes = int(parent.shape[0])
    trees = int(starts.shape[0]) - 1
    if trees < 1:
        raise AnalysisError("a tree block needs at least one tree")
    if int(starts[0]) != 0 or int(starts[-1]) != nodes:
        raise AnalysisError("starts must begin at 0 and end at the node count")
    counts = np.diff(starts)
    if (counts <= 0).any():
        raise AnalysisError("every tree in a block needs at least one node")
    tree_of = np.repeat(np.arange(trees, dtype=INDEX_DTYPE), counts)
    lower = starts[tree_of]
    index = np.arange(nodes, dtype=INDEX_DTYPE)
    is_root = index == lower
    roots_ok = bool((parent[is_root] == -1).all())
    rest = ~is_root
    rest_ok = bool(
        ((parent[rest] >= lower[rest]) & (parent[rest] < index[rest])).all()
    )
    if not (roots_ok and rest_ok):
        raise AnalysisError(
            "block parent indices must be topological and tree-local"
            " (roots -1 at each tree start)"
        )
    if depth is None:
        return depths_from_parent(parent)
    if depth.shape != parent.shape:
        raise AnalysisError("depth must match parent in shape")
    gathered = depth[np.maximum(parent, 0)] + 1
    if not bool((depth[is_root] == 0).all()) or not bool(
        (depth[rest] == gathered[rest]).all()
    ):
        raise AnalysisError("depth array disagrees with parent topology")
    return depth


class ShardStoreWriter:
    """Incrementally write a shard store directory.

    Parameters
    ----------
    directory:
        Target directory; created if missing.  Refuses to overwrite an
        existing store unless ``overwrite=True``.
    shard_nodes:
        Flush threshold in buffered nodes.  A single oversized tree gets
        a shard of its own rather than being split.
    """

    def __init__(
        self,
        directory: str,
        *,
        shard_nodes: int = DEFAULT_SHARD_NODES,
        overwrite: bool = False,
    ) -> None:
        if shard_nodes < 1:
            raise AnalysisError(f"shard_nodes must be >= 1, got {shard_nodes}")
        self._directory = os.fspath(directory)
        self._shard_nodes = int(shard_nodes)
        os.makedirs(self._directory, exist_ok=True)
        manifest_path = os.path.join(self._directory, MANIFEST_NAME)
        if os.path.exists(manifest_path) and not overwrite:
            raise AnalysisError(
                f"{self._directory!r} already holds a store"
                " (pass overwrite=True to replace it)"
            )
        if overwrite:
            self._clear_directory()
        self._manifest = Manifest()
        self._written_files: List[str] = []
        self._blocks: List[_Block] = []
        self._pending_nodes = 0
        self._pending_trees = 0
        self._closed = False
        self._aborted = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        return self._directory

    @property
    def node_count(self) -> int:
        """Nodes accepted so far (flushed + buffered)."""
        return self._manifest.node_count + self._pending_nodes

    @property
    def tree_count(self) -> int:
        """Trees accepted so far (flushed + buffered)."""
        return self._manifest.tree_count + self._pending_trees

    @property
    def shard_count(self) -> int:
        """Shards flushed so far."""
        return len(self._manifest.shards)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add_tree(
        self,
        parent: Sequence[int],
        edge_r: Sequence[float],
        edge_c: Sequence[float],
        node_c: Sequence[float],
        *,
        depth: Optional[Sequence[int]] = None,
    ) -> int:
        """Append one tree; returns its global tree index.

        ``parent`` is tree-local and topological with ``parent[0] == -1``.
        ``depth`` is optional -- producers that already know node depths
        (the streaming generators, :class:`~repro.flat.FlatTree`) pass it
        to skip the pointer-chase.
        """
        parent_arr = _as_index(parent, "parent")
        nodes = int(parent_arr.shape[0])
        if nodes < 1:
            raise AnalysisError("a tree needs at least one node")
        starts = np.asarray([0, nodes], dtype=INDEX_DTYPE)
        index = self.tree_count
        self._accept(
            starts,
            parent_arr,
            edge_r,
            edge_c,
            node_c,
            depth,
        )
        return index

    def add_block(
        self,
        starts: Sequence[int],
        parent: Sequence[int],
        edge_r: Sequence[float],
        edge_c: Sequence[float],
        node_c: Sequence[float],
        *,
        depth: Optional[Sequence[int]] = None,
    ) -> range:
        """Append a pre-concatenated block of trees; returns their indices.

        ``starts`` holds each tree's first node plus the node-count
        sentinel; ``parent`` is block-local with roots ``-1``.  This is
        the bulk path the streaming generators use -- one numpy batch per
        call, no per-tree python overhead.
        """
        starts_arr = _as_index(starts, "starts")
        parent_arr = _as_index(parent, "parent")
        first = self.tree_count
        self._accept(starts_arr, parent_arr, edge_r, edge_c, node_c, depth)
        return range(first, first + int(starts_arr.shape[0]) - 1)

    def add_flat_tree(self, tree: FlatTree) -> int:
        """Append a compiled :class:`~repro.flat.FlatTree`."""
        return self.add_tree(
            tree._parent,
            tree._edge_r,
            tree._edge_c,
            tree._node_c,
            depth=tree._depth,
        )

    def _accept(
        self,
        starts: np.ndarray,
        parent: np.ndarray,
        edge_r: Sequence[float],
        edge_c: Sequence[float],
        node_c: Sequence[float],
        depth: Optional[Sequence[int]],
    ) -> None:
        self._check_open()
        nodes = int(parent.shape[0])
        depth_arr = _validate_block(
            starts, parent, None if depth is None else _as_index(depth, "depth")
        )
        self._blocks.append(
            (
                starts,
                parent,
                depth_arr,
                _as_value(edge_r, "edge_r", nodes),
                _as_value(edge_c, "edge_c", nodes),
                _as_value(node_c, "node_c", nodes),
            )
        )
        self._pending_nodes += nodes
        self._pending_trees += int(starts.shape[0]) - 1
        if self._pending_nodes >= self._shard_nodes:
            self._drain(final=False)

    # ------------------------------------------------------------------
    # Shard flush / lifecycle
    # ------------------------------------------------------------------
    def _concatenate_pending(self) -> _Block:
        """Merge every buffered block into one, re-localizing parents."""
        if len(self._blocks) == 1:
            return self._blocks[0]
        starts_parts: List[np.ndarray] = []
        parent_parts: List[np.ndarray] = []
        offset = 0
        for starts, parent, _, _, _, _ in self._blocks:
            starts_parts.append(starts[:-1] + offset)
            parent_parts.append(np.where(parent < 0, parent, parent + offset))
            offset += int(parent.shape[0])
        starts_parts.append(np.asarray([offset], dtype=INDEX_DTYPE))
        return (
            np.concatenate(starts_parts),
            np.concatenate(parent_parts),
            np.concatenate([b[2] for b in self._blocks]),
            np.concatenate([b[3] for b in self._blocks]),
            np.concatenate([b[4] for b in self._blocks]),
            np.concatenate([b[5] for b in self._blocks]),
        )

    def _drain(self, final: bool) -> None:
        """Flush full shards off the buffer; keep the remainder buffered.

        Cuts are made at tree boundaries via one ``searchsorted`` per
        shard, so draining is O(buffer) regardless of tree count -- the
        property that keeps million-net ingest cheap.
        """
        if not self._blocks:
            return
        starts, parent, depth, edge_r, edge_c, node_c = self._concatenate_pending()
        trees_total = int(starts.shape[0]) - 1
        total = int(starts[-1])
        cursor = 0  # tree cursor
        node_pos = 0
        while True:
            remaining = total - node_pos
            if remaining == 0:
                break
            if remaining < self._shard_nodes and not final:
                break
            if final and remaining <= self._shard_nodes:
                cut = trees_total
            else:
                cut = int(
                    np.searchsorted(starts, node_pos + self._shard_nodes, side="left")
                )
                cut = max(cut, cursor + 1)
                cut = min(cut, trees_total)
            node_cut = int(starts[cut])
            local_starts = (starts[cursor : cut + 1] - node_pos).astype(INDEX_DTYPE)
            window = slice(node_pos, node_cut)
            local_parent = parent[window].copy()
            np.subtract(
                local_parent, node_pos, out=local_parent, where=local_parent >= 0
            )
            self._write_shard(
                local_parent,
                depth[window],
                local_starts,
                edge_r[window],
                edge_c[window],
                node_c[window],
            )
            cursor = cut
            node_pos = node_cut
        if node_pos == 0:
            # Nothing flushed; keep the merged block to amortize later work.
            self._blocks = [(starts, parent, depth, edge_r, edge_c, node_c)]
            return
        self._blocks = []
        self._pending_nodes = total - node_pos
        self._pending_trees = trees_total - cursor
        if node_pos < total:
            rest = slice(node_pos, total)
            rest_starts = (starts[cursor:] - node_pos).astype(INDEX_DTYPE)
            rest_parent = parent[rest].copy()
            np.subtract(
                rest_parent, node_pos, out=rest_parent, where=rest_parent >= 0
            )
            self._blocks = [
                (
                    rest_starts,
                    rest_parent,
                    depth[rest].copy(),
                    edge_r[rest].copy(),
                    edge_c[rest].copy(),
                    node_c[rest].copy(),
                )
            ]

    def _write_shard(
        self,
        parent: np.ndarray,
        depth: np.ndarray,
        starts: np.ndarray,
        edge_r: np.ndarray,
        edge_c: np.ndarray,
        node_c: np.ndarray,
    ) -> None:
        index = len(self._manifest.shards)
        file_name = f"shard-{index:05d}.bin"
        path = os.path.join(self._directory, file_name)
        write_shard_file(path, parent, depth, starts, edge_r, edge_c, node_c)
        self._written_files.append(path)
        nodes = int(parent.shape[0])
        level_counts = np.bincount(depth, minlength=1)
        self._manifest.shards.append(
            ShardRecord(
                file_name=file_name,
                nodes=nodes,
                trees=int(starts.shape[0]) - 1,
                depth=int(depth.max()) if nodes else 0,
                level_counts=[int(c) for c in level_counts],
            )
        )

    def close(self) -> Manifest:
        """Flush the remaining buffer and write the manifest."""
        self._check_open()
        self._drain(final=True)
        if not self._manifest.shards:
            raise AnalysisError("a shard store needs at least one tree")
        self._manifest.save(self._directory)
        self._closed = True
        return self._manifest

    def abort(self) -> None:
        """Delete everything written so far (transactional rollback)."""
        if self._closed or self._aborted:
            return
        for path in self._written_files:
            try:
                os.remove(path)
            except OSError:
                pass
        scratch = os.path.join(self._directory, MANIFEST_NAME + ".tmp")
        if os.path.exists(scratch):
            os.remove(scratch)
        self._written_files.clear()
        self._blocks.clear()
        self._aborted = True

    def _clear_directory(self) -> None:
        """Remove a previous store's files (overwrite mode)."""
        for name in sorted(os.listdir(self._directory)):
            is_store_file = (
                name == MANIFEST_NAME
                or name == RESULTS_NAME
                or (name.startswith("shard-") and name.endswith(".bin"))
                or name.endswith(".tmp")
            )
            if is_store_file:
                os.remove(os.path.join(self._directory, name))

    def _check_open(self) -> None:
        if self._closed:
            raise AnalysisError("writer is closed")
        if self._aborted:
            raise AnalysisError("writer was aborted")

    def __enter__(self) -> "ShardStoreWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is None:
            if not self._closed:
                self.close()
        else:
            self.abort()
