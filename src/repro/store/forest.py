"""Out-of-core forest: solve a shard store without a resident design.

:class:`StoredForest` is the drop-in counterpart of
:class:`repro.flat.FlatForest` for designs that do not fit in RAM.  Each
shard file holds the node-major planes of a contiguous run of whole
trees; a solve walks the shards, materializes one at a time (through a
bounded hot-shard LRU), hands its arrays to the ordinary
:func:`repro.parallel.solve_forest_batch` engine registry -- numpy,
contract or native per shard, worker processes mapping the same files
for ``jobs=N`` -- and streams the results into a memory-mapped result
file.  The resident set is O(shard + scenario_chunk) no matter how large
the design is, because every mapping is released as soon as its window
has been consumed (see :func:`repro.store.format.release_memmap`).

Incremental ECO: :meth:`replace_tree` rewrites only the owning shard and
bumps its generation; :meth:`solve` then re-runs exactly the shards whose
generation moved past the persisted result generation -- a single-net
edit on a million-instance design re-solves one shard.
"""

from __future__ import annotations

import os
import tempfile
import weakref
from collections import OrderedDict
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import AnalysisError
from repro.flat.flattree import FlatTree, _scenario_count
from repro.flat.forest import ForestTimes
from repro.flat.scenarios import PlaneInput, ScenarioForestTimes, level_buckets
from repro.parallel.engine import (
    ForestStructure,
    _solve_range,
    normalize_plane,
    solve_forest_batch,
)
from repro.store.format import (
    INDEX_DTYPE,
    depths_from_parent,
    RESULT_NODE_FIELDS,
    RESULTS_NAME,
    UNSOLVED,
    Manifest,
    ResultsRecord,
    ShardRecord,
    map_field,
    read_shard_arrays,
    release_memmap,
    result_layout,
    result_nbytes,
    shard_layout,
    write_shard_file,
)
from repro.store.writer import _validate_block

#: Environment override for the hot-shard LRU capacity.
HOT_SHARDS_ENV = "REPRO_STORE_HOT_SHARDS"

#: Default number of materialized shards kept hot.  Four shards at the
#: default shard size is ~25 MiB of planes -- enough that an ECO loop
#: hammering a locality cluster never re-reads, small enough to leave the
#: laptop-RAM budget to the solve temporaries.
DEFAULT_HOT_SHARDS = 4

#: A per-shard plane factory: ``(shard_index, node_lo, node_hi)`` ->
#: ``(edge_r, edge_c, node_c)`` in :func:`normalize_plane`-accepted shapes
#: over the shard's node range.  This is how scenario sweeps stay
#: out-of-core: the caller fabricates each shard's effective planes on
#: demand instead of one (S, N) matrix for the whole design.
PlaneFactory = Callable[[int, int, int], Tuple[PlaneInput, PlaneInput, PlaneInput]]

#: Replacement tree forms accepted by :meth:`StoredForest.replace_tree`.
TreeLike = Union[
    FlatTree,
    Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
]


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _allocate_file(path: str, nbytes: int) -> None:
    """Create (or retruncate) a sparse zero-filled file of ``nbytes``."""
    with open(path, "wb") as handle:
        handle.truncate(nbytes)


class _ScratchFile:
    """Owns a scratch result file; unlinked when the owner is collected."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._finalizer = weakref.finalize(self, _unlink_quietly, path)


class _HotShard:
    """One materialized shard: in-RAM planes plus lazy derived topology."""

    __slots__ = (
        "parent",
        "depth",
        "starts",
        "edge_r",
        "edge_c",
        "node_c",
        "_levels",
        "_structure",
    )

    def __init__(
        self,
        parent: np.ndarray,
        depth: np.ndarray,
        starts: np.ndarray,
        edge_r: np.ndarray,
        edge_c: np.ndarray,
        node_c: np.ndarray,
    ) -> None:
        self.parent = parent
        self.depth = depth
        self.starts = starts
        self.edge_r = edge_r
        self.edge_c = edge_c
        self.node_c = node_c
        self._levels: Optional[List[np.ndarray]] = None
        self._structure: Optional[ForestStructure] = None

    @property
    def levels(self) -> List[np.ndarray]:
        if self._levels is None:
            self._levels = level_buckets(self.depth)
        return self._levels

    @property
    def structure(self) -> ForestStructure:
        if self._structure is None:
            self._structure = ForestStructure(
                parent=self.parent,
                depth=self.depth,
                offsets=self.starts,
                levels=self.levels,
            )
        return self._structure


def _load_hot_shard(path: str, record: ShardRecord) -> _HotShard:
    arrays = read_shard_arrays(path, record.nodes, record.trees)
    return _HotShard(
        arrays["parent"],
        arrays["depth"],
        arrays["starts"],
        arrays["edge_r"],
        arrays["edge_c"],
        arrays["node_c"],
    )


def _write_batch_windows(
    result_path: str,
    total_nodes: int,
    count: int,
    node_lo: int,
    times: ScenarioForestTimes,
) -> None:
    """Write one shard's node-indexed results into the scratch file.

    Only the shard's row window of each field is mapped, written and
    released, so a full sweep's peak resident set never exceeds one
    shard's result rows.
    """
    layout = result_layout(total_nodes, 0, count)
    window = slice(node_lo, node_lo + int(times.tde.shape[1]))
    maps = [
        map_field(result_path, layout[name], window, "r+")
        for name in RESULT_NODE_FIELDS
    ]
    try:
        for mapping, name in zip(maps, RESULT_NODE_FIELDS):
            mapping[...] = getattr(times, name).T
    finally:
        release_memmap(*maps)


#: One store-pool work item (everything a worker needs to map the files).
_ShardTask = Tuple[
    str, str, int, int, int, str, int, int, Tuple, Optional[str], Optional[int]
]


def _solve_stored_shard(task: _ShardTask) -> Tuple[np.ndarray, np.ndarray]:
    """Worker-side shard solve: map the shard file, write the result file.

    Runs in a :mod:`repro.parallel` pool process.  Nothing heavy crosses
    the pickle boundary -- the worker maps the shard's planes straight
    from disk and writes its result windows straight back, returning only
    the small per-tree reductions.
    """
    (
        directory,
        file_name,
        nodes,
        trees,
        node_lo,
        result_path,
        total_nodes,
        count,
        planes,
        engine,
        scenario_chunk,
    ) = task
    hot = _load_hot_shard(os.path.join(directory, file_name), ShardRecord(
        file_name=file_name, nodes=nodes, trees=trees, depth=0, level_counts=[]
    ))
    times = solve_forest_batch(
        hot.structure,
        (hot.edge_r, hot.edge_c, hot.node_c),
        planes,
        count,
        engine=engine,
        jobs=1,
        scenario_chunk=scenario_chunk,
    )
    _write_batch_windows(result_path, total_nodes, count, node_lo, times)
    tp = np.ascontiguousarray(times.tp.T)
    total = np.ascontiguousarray(times.total_capacitance.T)
    return tp, total


class StoredForest:
    """A forest whose planes live in memory-mapped shard files.

    Satisfies the solve surface of :class:`~repro.flat.FlatForest`
    (``solve``, ``solve_batch``, ``replace_tree``, ``node_count``,
    ``tree_count``, ``_offsets``) so :class:`~repro.graph.DesignDB` can
    swap it in behind ``store_dir=`` without changing any caller.
    """

    def __init__(
        self, directory: str, *, hot_shards: Optional[int] = None
    ) -> None:
        self._directory = os.fspath(directory)
        self._manifest = Manifest.load(self._directory)
        # The shard list is the authoritative layout; every mutation goes
        # through replace_tree -> _invalidate_shard (RL004 contract).
        self._shards: List[ShardRecord] = self._manifest.shards
        if hot_shards is None:
            hot_shards = int(os.environ.get(HOT_SHARDS_ENV, DEFAULT_HOT_SHARDS))
        if hot_shards < 1:
            raise AnalysisError(f"hot_shards must be >= 1, got {hot_shards}")
        self._hot_limit = hot_shards
        self._hot: "OrderedDict[int, _HotShard]" = OrderedDict()
        self._layout_cache: Optional[dict] = None

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        return self._directory

    @property
    def node_count(self) -> int:
        return self._manifest.node_count

    @property
    def tree_count(self) -> int:
        return self._manifest.tree_count

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def depth(self) -> int:
        """Maximum node depth across every shard (from the manifest)."""
        return self._manifest.depth

    def __len__(self) -> int:
        return self.tree_count

    def _layout(self) -> dict:
        if self._layout_cache is None:
            self._layout_cache = {
                "node_offsets": self._manifest.node_offsets(),
                "tree_offsets": self._manifest.tree_offsets(),
            }
        return self._layout_cache

    @property
    def shard_node_offsets(self) -> np.ndarray:
        """Global first-node index per shard (+ total sentinel)."""
        return self._layout()["node_offsets"]

    @property
    def shard_tree_offsets(self) -> np.ndarray:
        """Global first-tree index per shard (+ total sentinel)."""
        return self._layout()["tree_offsets"]

    @property
    def offsets(self) -> np.ndarray:
        """Global per-tree node offsets (``(trees + 1,)``), read lazily.

        Assembled from each shard's ``starts`` field through transient
        released mappings -- the only O(trees) array the store ever
        materializes (8 bytes/tree; 8 MB for a million instances).
        """
        layout = self._layout()
        cached = layout.get("offsets")
        if cached is None:
            node_offsets = layout["node_offsets"]
            parts: List[np.ndarray] = [np.zeros(1, dtype=INDEX_DTYPE)]
            for i, record in enumerate(self._shards):
                spec = shard_layout(record.nodes, record.trees)["starts"]
                mapping = map_field(
                    self._shard_path(i), spec, slice(0, record.trees + 1), "r"
                )
                try:
                    parts.append(
                        np.asarray(mapping[1:], dtype=INDEX_DTYPE)
                        + int(node_offsets[i])
                    )
                finally:
                    release_memmap(mapping)
                    mapping = None
            cached = np.concatenate(parts)
            layout["offsets"] = cached
        return cached

    # FlatForest spells its offsets array ``_offsets``; DesignDB reaches
    # for that name, so expose the same spelling.
    @property
    def _offsets(self) -> np.ndarray:
        return self.offsets

    def shard_of_tree(self, tree_index: int) -> int:
        """The shard holding ``tree_index``."""
        tree_offsets = self.shard_tree_offsets
        if not 0 <= tree_index < self.tree_count:
            raise AnalysisError(
                f"tree index {tree_index} out of range 0..{self.tree_count - 1}"
            )
        return int(np.searchsorted(tree_offsets, tree_index, side="right")) - 1

    def shard_bounds(self, shard: int) -> Tuple[int, int, int, int]:
        """``(node_lo, node_hi, tree_lo, tree_hi)`` of one shard."""
        node_offsets = self.shard_node_offsets
        tree_offsets = self.shard_tree_offsets
        return (
            int(node_offsets[shard]),
            int(node_offsets[shard + 1]),
            int(tree_offsets[shard]),
            int(tree_offsets[shard + 1]),
        )

    def _shard_path(self, shard: int) -> str:
        return os.path.join(self._directory, self._shards[shard].file_name)

    # ------------------------------------------------------------------
    # Hot-shard LRU
    # ------------------------------------------------------------------
    def materialize(self, shard: int) -> _HotShard:
        """The shard's in-RAM planes, served from the bounded LRU."""
        hot = self._hot.get(shard)
        if hot is not None:
            self._hot.move_to_end(shard)
            return hot
        record = self._shards[shard]
        hot = _load_hot_shard(self._shard_path(shard), record)
        self._hot[shard] = hot
        while len(self._hot) > self._hot_limit:
            self._hot.popitem(last=False)
        return hot

    @property
    def hot_shard_count(self) -> int:
        """Currently materialized shards (<= the LRU capacity)."""
        return len(self._hot)

    def structure_of(self, shard: int) -> ForestStructure:
        """The shard-local :class:`ForestStructure` (materializes it)."""
        return self.materialize(shard).structure

    # ------------------------------------------------------------------
    # Solves
    # ------------------------------------------------------------------
    def solve(self) -> ForestTimes:
        """Single-scenario times, persisted and incrementally maintained.

        Results live in ``results.bin``; only shards whose generation
        moved past their solved generation are re-run, so the cost of a
        solve after :meth:`replace_tree` is one shard, not the design.
        The returned node-indexed arrays are read-mode memmap views --
        reductions over them stream from disk.
        """
        total_nodes = self.node_count
        total_trees = self.tree_count
        path = os.path.join(self._directory, RESULTS_NAME)
        nbytes = result_nbytes(total_nodes, total_trees, 1)
        results = self._manifest.results
        stale = (
            results is None
            or len(results.solved) != len(self._shards)
            or not os.path.exists(path)
            or os.path.getsize(path) != nbytes
        )
        if stale:
            _allocate_file(path, nbytes)
            results = ResultsRecord(solved=[UNSOLVED] * len(self._shards))
            self._manifest.results = results
        assert results is not None
        layout = result_layout(total_nodes, total_trees, 1)
        dirty = [
            i
            for i, record in enumerate(self._shards)
            if results.solved[i] != record.generation
        ]
        for shard in dirty:
            hot = self.materialize(shard)
            ree, tde, tre, tp, total = _solve_range(
                hot.parent,
                hot.levels,
                hot.starts[:-1],
                hot.edge_r[:, None],
                hot.edge_c[:, None],
                hot.node_c[:, None],
            )
            node_lo, node_hi, tree_lo, tree_hi = self.shard_bounds(shard)
            node_window = slice(node_lo, node_hi)
            tree_window = slice(tree_lo, tree_hi)
            maps = [
                map_field(path, layout["tde"], node_window, "r+"),
                map_field(path, layout["tre"], node_window, "r+"),
                map_field(path, layout["ree"], node_window, "r+"),
                map_field(path, layout["tp"], tree_window, "r+"),
                map_field(path, layout["total"], tree_window, "r+"),
            ]
            try:
                for mapping, values in zip(maps, (tde, tre, ree, tp, total)):
                    mapping[...] = values
            finally:
                release_memmap(*maps)
            results.solved[shard] = self._shards[shard].generation
        if dirty:
            self._manifest.save(self._directory)
        node_maps = [
            map_field(path, layout[name], slice(0, total_nodes), "r")
            for name in RESULT_NODE_FIELDS
        ]
        tree_maps = [
            map_field(path, layout[name], slice(0, total_trees), "r")
            for name in ("tp", "total")
        ]
        try:
            tp_ram = np.asarray(tree_maps[0][:, 0])
            total_ram = np.asarray(tree_maps[1][:, 0])
        finally:
            release_memmap(*tree_maps)
        times = ForestTimes(
            tp=tp_ram,
            tde=node_maps[0][:, 0],
            tre=node_maps[1][:, 0],
            ree=node_maps[2][:, 0],
            total_capacitance=total_ram,
        )
        # The views alias the mappings; the finalizer both satisfies the
        # RL008 pairing and documents who unmaps them (the times object).
        weakref.finalize(times, release_memmap, *node_maps)
        return times

    def solve_batch(
        self,
        edge_r: PlaneInput = None,
        edge_c: PlaneInput = None,
        node_c: PlaneInput = None,
        *,
        count: Optional[int] = None,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
        scenario_chunk: Optional[int] = None,
        planes_for: Optional[PlaneFactory] = None,
    ) -> ScenarioForestTimes:
        """Scenario-batched solve, shard by shard, out of core.

        Planes follow :meth:`repro.flat.FlatForest.solve_batch` (``None``
        / ``(S,)`` / ``(S, N)``); ``planes_for`` instead fabricates each
        shard's planes on demand (see :data:`PlaneFactory`) so the sweep
        never holds an ``(S, N)`` matrix.  With ``jobs >= 2`` and
        broadcast-style planes the shards go to worker processes that map
        the same files -- no shared-memory copies.  Node-indexed results
        come back as memmap views over a scratch file that is deleted
        when the result object is garbage collected.
        """
        total_nodes = self.node_count
        total_trees = self.tree_count
        if planes_for is not None:
            if count is None:
                raise AnalysisError("count is required when planes_for is used")
            if edge_r is not None or edge_c is not None or node_c is not None:
                raise AnalysisError("pass either global planes or planes_for, not both")
            planes: Tuple[Optional[np.ndarray], ...] = (None, None, None)
            s = int(count)
        else:
            s = _scenario_count(count, edge_r, edge_c, node_c)
            planes = tuple(
                normalize_plane(plane, total_nodes, s)
                for plane in (edge_r, edge_c, node_c)
            )
        if s < 1:
            raise AnalysisError(f"scenario count must be >= 1, got {s}")
        handle, scratch_path = tempfile.mkstemp(
            prefix=".batch-", suffix=".bin", dir=self._directory
        )
        os.close(handle)
        scratch = _ScratchFile(scratch_path)
        _allocate_file(scratch_path, result_nbytes(total_nodes, 0, s))
        tp = np.empty((total_trees, s), dtype=np.float64)
        total = np.empty((total_trees, s), dtype=np.float64)
        node_offsets = self.shard_node_offsets
        broadcast_only = planes_for is None and all(
            plane is None or plane.ndim == 1 for plane in planes
        )
        if jobs is not None and jobs >= 2 and broadcast_only:
            self._solve_batch_pool(
                scratch_path, s, planes, engine, jobs, scenario_chunk, tp, total
            )
        else:
            for shard in range(self.shard_count):
                node_lo, node_hi, tree_lo, tree_hi = self.shard_bounds(shard)
                if planes_for is not None:
                    shard_planes = planes_for(shard, node_lo, node_hi)
                else:
                    shard_planes = tuple(
                        plane if plane is None or plane.ndim == 1
                        else plane[:, node_lo:node_hi]
                        for plane in planes
                    )
                hot = self.materialize(shard)
                times = solve_forest_batch(
                    hot.structure,
                    (hot.edge_r, hot.edge_c, hot.node_c),
                    shard_planes,
                    s,
                    engine=engine,
                    jobs=jobs,
                    scenario_chunk=scenario_chunk,
                )
                _write_batch_windows(scratch_path, total_nodes, s, node_lo, times)
                tp[tree_lo:tree_hi] = times.tp.T
                total[tree_lo:tree_hi] = times.total_capacitance.T
        layout = result_layout(total_nodes, 0, s)
        node_maps = [
            map_field(scratch_path, layout[name], slice(0, total_nodes), "r")
            for name in RESULT_NODE_FIELDS
        ]
        times_out = ScenarioForestTimes(
            tp=tp.T,
            tde=node_maps[0].T,
            tre=node_maps[1].T,
            ree=node_maps[2].T,
            total_capacitance=total.T,
        )
        # Keep the scratch file alive exactly as long as the result: the
        # finalizer releases the mappings, then the _ScratchFile unlinks.
        object.__setattr__(times_out, "_store_scratch", scratch)
        weakref.finalize(times_out, release_memmap, *node_maps)
        return times_out

    def _solve_batch_pool(
        self,
        scratch_path: str,
        count: int,
        planes: Tuple[Optional[np.ndarray], ...],
        engine: Optional[str],
        jobs: int,
        scenario_chunk: Optional[int],
        tp: np.ndarray,
        total: np.ndarray,
    ) -> None:
        """Fan shards out to worker processes that map the same files."""
        from repro.parallel.engine import _pool

        worker_engine = None if engine == "process" else engine
        tasks: List[_ShardTask] = []
        for shard, record in enumerate(self._shards):
            node_lo, _, _, _ = self.shard_bounds(shard)
            tasks.append(
                (
                    self._directory,
                    record.file_name,
                    record.nodes,
                    record.trees,
                    node_lo,
                    scratch_path,
                    self.node_count,
                    count,
                    planes,
                    worker_engine,
                    scenario_chunk,
                )
            )
        pool = _pool(jobs)
        for shard, (tp_shard, total_shard) in enumerate(
            pool.map(_solve_stored_shard, tasks)
        ):
            _, _, tree_lo, tree_hi = self.shard_bounds(shard)
            tp[tree_lo:tree_hi] = tp_shard
            total[tree_lo:tree_hi] = total_shard

    # ------------------------------------------------------------------
    # Incremental ECO
    # ------------------------------------------------------------------
    def replace_tree(self, tree_index: int, tree: TreeLike) -> None:
        """Splice a recompiled tree in place; only its shard is rewritten.

        Mirrors :meth:`repro.flat.FlatForest.replace_tree` -- sizes may
        differ.  A same-size replacement leaves every other shard's
        persisted results valid (one-shard re-solve); a size change
        shifts the global node numbering, so the whole result file is
        invalidated (the shard files themselves stay put).
        """
        if isinstance(tree, FlatTree):
            parent = np.asarray(tree._parent, dtype=INDEX_DTYPE)
            edge_r = np.asarray(tree._edge_r, dtype=np.float64)
            edge_c = np.asarray(tree._edge_c, dtype=np.float64)
            node_c = np.asarray(tree._node_c, dtype=np.float64)
            depth = np.asarray(tree._depth, dtype=INDEX_DTYPE)
        else:
            parent, edge_r, edge_c, node_c = (np.asarray(a) for a in tree)
            parent = parent.astype(INDEX_DTYPE)
            size_arr = np.asarray([0, parent.shape[0]], dtype=INDEX_DTYPE)
            _validate_block(size_arr, parent, None)
            depth = depths_from_parent(parent)
        shard = self.shard_of_tree(tree_index)
        record = self._shards[shard]
        _, _, tree_lo, _ = self.shard_bounds(shard)
        local_tree = tree_index - tree_lo
        hot = self.materialize(shard)
        lo = int(hot.starts[local_tree])
        hi = int(hot.starts[local_tree + 1])
        size = int(parent.shape[0])
        delta = size - (hi - lo)
        new_parent = np.concatenate([hot.parent[:lo], parent, hot.parent[hi:]])
        if delta and hi < hot.parent.shape[0]:
            tail = slice(lo + size, None)
            np.add(
                new_parent[tail],
                delta,
                out=new_parent[tail],
                where=new_parent[tail] >= 0,
            )
        if size > 1:
            grafted = slice(lo + 1, lo + size)
            new_parent[grafted] += lo
        new_depth = np.concatenate([hot.depth[:lo], depth, hot.depth[hi:]])
        new_starts = hot.starts.copy()
        new_starts[local_tree + 1 :] += delta
        new_edge_r = np.concatenate([hot.edge_r[:lo], edge_r, hot.edge_r[hi:]])
        new_edge_c = np.concatenate([hot.edge_c[:lo], edge_c, hot.edge_c[hi:]])
        new_node_c = np.concatenate([hot.node_c[:lo], node_c, hot.node_c[hi:]])
        write_shard_file(
            self._shard_path(shard),
            new_parent,
            new_depth,
            new_starts,
            new_edge_r,
            new_edge_c,
            new_node_c,
        )
        level_counts = np.bincount(new_depth, minlength=1)
        self._shards[shard] = ShardRecord(
            file_name=record.file_name,
            nodes=int(new_parent.shape[0]),
            trees=record.trees,
            depth=int(new_depth.max()) if new_parent.shape[0] else 0,
            level_counts=[int(c) for c in level_counts],
            generation=record.generation + 1,
        )
        self._invalidate_shard(shard, size_changed=bool(delta))
        self._manifest.save(self._directory)

    def _invalidate_shard(self, shard: int, *, size_changed: bool) -> None:
        """Drop every cache that could reflect the shard's old contents."""
        self._hot.pop(shard, None)
        self._layout_cache = None
        results = self._manifest.results
        if results is not None and len(results.solved) == len(self._shards):
            if size_changed:
                # The global node numbering shifted: every persisted
                # result row beyond this shard sits at a stale offset.
                results.solved = [UNSOLVED] * len(self._shards)
            else:
                results.solved[shard] = UNSOLVED

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop materialized shards (mappings are released eagerly anyway)."""
        self._hot.clear()

    def __enter__(self) -> "StoredForest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StoredForest({self._directory!r}, trees={self.tree_count},"
            f" nodes={self.node_count}, shards={self.shard_count})"
        )
