"""On-disk format of the memory-mapped shard store.

A store directory holds one small JSON manifest plus one binary file per
shard.  The shard is the :func:`repro.parallel.plan_shards` range promoted
to the persistence unit: a contiguous run of whole trees whose node-major
planes live back to back in a single file, byte-compatible with the
in-memory arrays the kernels consume (``np.int64`` topology, ``np.float64``
elements).  Because every field is eight bytes wide and laid out
sequentially, a shard file is a dumb relocatable buffer -- ``np.memmap``
windows over it *are* the kernel inputs, no deserialization step exists.

Layout of one shard file (``nodes`` = N, ``trees`` = T)::

    parent   int64[N]      shard-local parent index, roots -1
    depth    int64[N]      node depth within its tree (root 0)
    starts   int64[T + 1]  shard-local first-node index per tree (+ sentinel N)
    edge_r   float64[N]    resistance of the edge into each node
    edge_c   float64[N]    capacitance of the edge into each node
    node_c   float64[N]    grounded capacitance at each node

The manifest (``manifest.json``) records per shard the node/tree counts,
the maximum depth and the level-bucket index (``level_counts[d]`` = nodes
at depth ``d``), so a :class:`~repro.store.StoredForest` can size every
window, plan chunked solves and budget level sweeps without touching a
single shard file.  Result planes live in a separate ``results.bin``
(same dumb-buffer discipline) whose per-shard validity is tracked by a
generation counter -- the hook that makes ECO re-solves incremental.

Every ``np.memmap`` opened by this package must be paired with an
explicit :func:`release_memmap` (or ``weakref.finalize`` wiring for
mappings that outlive their creator) -- reprolint rule RL008 enforces the
discipline, mirroring RL003's shared-memory rules.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import AnalysisError

#: Format identifier written to (and demanded from) every manifest.
FORMAT_NAME = "repro-store"

#: Current format version; bumped on any incompatible layout change.
FORMAT_VERSION = 1

#: File name of the JSON manifest inside a store directory.
MANIFEST_NAME = "manifest.json"

#: File name of the persistent single-scenario result planes.
RESULTS_NAME = "results.bin"

#: Index dtype of every topology plane (parent, depth, starts).
INDEX_DTYPE = np.dtype(np.int64)

#: Value dtype of every element and result plane.
VALUE_DTYPE = np.dtype(np.float64)

#: Field order inside a shard file; the layout is derived, never stored.
SHARD_FIELDS: Tuple[str, ...] = (
    "parent",
    "depth",
    "starts",
    "edge_r",
    "edge_c",
    "node_c",
)

#: Node-indexed result fields persisted in ``results.bin``.
RESULT_NODE_FIELDS: Tuple[str, ...] = ("tde", "tre", "ree")

#: Per-tree result fields persisted in ``results.bin``.
RESULT_TREE_FIELDS: Tuple[str, ...] = ("tp", "total")

#: Generation sentinel meaning "never solved" in the results record.
UNSOLVED = -1

#: One field of a binary layout: byte offset, array shape, dtype.
FieldSpec = Tuple[int, Tuple[int, ...], np.dtype]


def shard_layout(nodes: int, trees: int) -> Dict[str, FieldSpec]:
    """Byte layout of one shard file, in :data:`SHARD_FIELDS` order."""
    layout: Dict[str, FieldSpec] = {}
    offset = 0
    for name in SHARD_FIELDS:
        if name in ("parent", "depth"):
            shape: Tuple[int, ...] = (nodes,)
            dtype = INDEX_DTYPE
        elif name == "starts":
            shape = (trees + 1,)
            dtype = INDEX_DTYPE
        else:
            shape = (nodes,)
            dtype = VALUE_DTYPE
        layout[name] = (offset, shape, dtype)
        offset += int(np.prod(shape)) * dtype.itemsize
    return layout


def shard_nbytes(nodes: int, trees: int) -> int:
    """Total size in bytes of a shard file."""
    layout = shard_layout(nodes, trees)
    offset, shape, dtype = layout[SHARD_FIELDS[-1]]
    return offset + int(np.prod(shape)) * dtype.itemsize


def result_layout(
    node_count: int, tree_count: int, count: int
) -> Dict[str, FieldSpec]:
    """Byte layout of a result file holding ``count`` scenario columns.

    Node fields are node-major ``(N, S)`` so one shard's result rows are a
    contiguous window -- the property that lets a shard solve map only its
    own slice of the file.  Tree fields are ``(T, S)``.
    """
    layout: Dict[str, FieldSpec] = {}
    offset = 0
    for name in RESULT_NODE_FIELDS:
        shape = (node_count, count)
        layout[name] = (offset, shape, VALUE_DTYPE)
        offset += int(np.prod(shape)) * VALUE_DTYPE.itemsize
    for name in RESULT_TREE_FIELDS:
        shape = (tree_count, count)
        layout[name] = (offset, shape, VALUE_DTYPE)
        offset += int(np.prod(shape)) * VALUE_DTYPE.itemsize
    return layout


def result_nbytes(node_count: int, tree_count: int, count: int) -> int:
    """Total size in bytes of a result file."""
    layout = result_layout(node_count, tree_count, count)
    offset, shape, dtype = layout[RESULT_TREE_FIELDS[-1]]
    return offset + int(np.prod(shape)) * dtype.itemsize


def release_memmap(*maps: Optional[np.ndarray]) -> None:
    """Flush writable mappings and drop this frame's reference to each.

    The explicit pairing (create -> use -> release) keeps the resident
    set bounded: an unmapped file page no longer counts against RSS, so
    a shard-by-shard sweep that releases each window touches the whole
    store while only ever holding one shard's pages.  RL008 requires
    every ``np.memmap`` creation in this package to reach this function
    (or a ``weakref.finalize`` that calls it).
    """
    for mapping in maps:
        if isinstance(mapping, np.memmap) and mapping.mode != "r":
            mapping.flush()
    # The caller drops its own name binding; CPython refcounting then
    # unmaps immediately (no GC cycle involvement for plain memmaps).


def depths_from_parent(parent: np.ndarray) -> np.ndarray:
    """Per-node depths for a block-local ``parent`` array (roots ``-1``).

    Vectorized pointer-chase: one O(N) round per tree level, so the cost
    is ``O(N * depth)`` with numpy-wide rounds -- effectively free for the
    shallow stage trees ingest streams in, and still acceptable for
    pathological chains (the writer only runs it when the producer did
    not already know the depths).
    """
    parent = np.asarray(parent, dtype=INDEX_DTYPE)
    depth = np.zeros(parent.shape[0], dtype=INDEX_DTYPE)
    pointer = parent.copy()
    while True:
        live = pointer >= 0
        if not live.any():
            break
        depth[live] += 1
        pointer[live] = parent[pointer[live]]
    return depth


def write_shard_file(
    path: str,
    parent: np.ndarray,
    depth: np.ndarray,
    starts: np.ndarray,
    edge_r: np.ndarray,
    edge_c: np.ndarray,
    node_c: np.ndarray,
) -> None:
    """Write one complete shard file at ``path`` (created or truncated).

    The file is materialized through a single write-mode ``np.memmap``
    that is flushed and released before returning, so the writer's peak
    resident set stays O(shard) regardless of how many shards stream
    through it.
    """
    nodes = int(parent.shape[0])
    trees = int(starts.shape[0]) - 1
    layout = shard_layout(nodes, trees)
    values = {
        "parent": parent,
        "depth": depth,
        "starts": starts,
        "edge_r": edge_r,
        "edge_c": edge_c,
        "node_c": node_c,
    }
    block = np.memmap(path, dtype=np.uint8, mode="w+", shape=(shard_nbytes(nodes, trees),))
    try:
        for name in SHARD_FIELDS:
            offset, shape, dtype = layout[name]
            nbytes = int(np.prod(shape)) * dtype.itemsize
            window = block[offset : offset + nbytes].view(dtype).reshape(shape)
            window[...] = np.asarray(values[name], dtype=dtype)
    finally:
        release_memmap(block)
        block = None


def read_shard_arrays(
    path: str, nodes: int, trees: int
) -> Dict[str, np.ndarray]:
    """Materialize every field of a shard file as in-RAM copies.

    Copies (rather than long-lived mappings) are deliberate: the hot-shard
    LRU holds plain arrays whose footprint is exactly the LRU budget, and
    the transient read mapping is released before returning so the file's
    pages stop counting against the process.
    """
    layout = shard_layout(nodes, trees)
    block = np.memmap(path, dtype=np.uint8, mode="r", shape=(shard_nbytes(nodes, trees),))
    try:
        arrays: Dict[str, np.ndarray] = {}
        for name in SHARD_FIELDS:
            offset, shape, dtype = layout[name]
            nbytes = int(np.prod(shape)) * dtype.itemsize
            arrays[name] = np.array(
                block[offset : offset + nbytes].view(dtype).reshape(shape)
            )
        return arrays
    finally:
        release_memmap(block)
        block = None


def map_field(
    path: str, spec: FieldSpec, rows: slice, mode: str
) -> np.memmap:
    """Map one row-window ``rows`` of a laid-out field as ``np.memmap``.

    ``spec`` is the field's :func:`result_layout`/:func:`shard_layout`
    entry; the window covers ``rows`` of its leading axis.  The caller
    owns the mapping and must pair it with :func:`release_memmap` (or a
    finalizer) per RL008.
    """
    offset, shape, dtype = spec
    lo, hi = rows.indices(shape[0])[:2]
    row_items = int(np.prod(shape[1:])) if len(shape) > 1 else 1
    window_shape = (hi - lo,) + tuple(shape[1:])
    return np.memmap(
        path,
        dtype=dtype,
        mode=mode,  # type: ignore[arg-type]
        offset=offset + lo * row_items * dtype.itemsize,
        shape=window_shape,
    )


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
@dataclass
class ShardRecord:
    """Manifest entry for one shard file."""

    file_name: str
    nodes: int
    trees: int
    depth: int
    level_counts: List[int]
    generation: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.file_name,
            "nodes": self.nodes,
            "trees": self.trees,
            "depth": self.depth,
            "level_counts": list(self.level_counts),
            "generation": self.generation,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardRecord":
        return cls(
            file_name=str(data["file"]),
            nodes=int(data["nodes"]),  # type: ignore[arg-type]
            trees=int(data["trees"]),  # type: ignore[arg-type]
            depth=int(data["depth"]),  # type: ignore[arg-type]
            level_counts=[int(c) for c in data["level_counts"]],  # type: ignore[union-attr]
            generation=int(data.get("generation", 0)),  # type: ignore[arg-type]
        )


@dataclass
class ResultsRecord:
    """Manifest entry for the persistent single-scenario result planes.

    ``solved`` mirrors the shard list: ``solved[i]`` is the shard
    generation whose arrays are reflected in ``results.bin`` (or
    :data:`UNSOLVED`).  ``solve()`` re-runs exactly the shards whose
    manifest generation moved past their solved generation -- validity
    survives process restarts because both counters live here.
    """

    file_name: str = RESULTS_NAME
    solved: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {"file": self.file_name, "solved": list(self.solved)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ResultsRecord":
        return cls(
            file_name=str(data["file"]),
            solved=[int(g) for g in data["solved"]],  # type: ignore[union-attr]
        )


@dataclass
class Manifest:
    """The store directory's index: shard geometry without shard I/O."""

    shards: List[ShardRecord] = field(default_factory=list)
    results: Optional[ResultsRecord] = None

    @property
    def node_count(self) -> int:
        return sum(record.nodes for record in self.shards)

    @property
    def tree_count(self) -> int:
        return sum(record.trees for record in self.shards)

    @property
    def depth(self) -> int:
        return max((record.depth for record in self.shards), default=0)

    def node_offsets(self) -> np.ndarray:
        """Global first-node index per shard, plus the total sentinel."""
        sizes = np.asarray([r.nodes for r in self.shards], dtype=INDEX_DTYPE)
        return np.concatenate([[0], np.cumsum(sizes)]).astype(INDEX_DTYPE)

    def tree_offsets(self) -> np.ndarray:
        """Global first-tree index per shard, plus the total sentinel."""
        sizes = np.asarray([r.trees for r in self.shards], dtype=INDEX_DTYPE)
        return np.concatenate([[0], np.cumsum(sizes)]).astype(INDEX_DTYPE)

    def iter_shards(self) -> Iterator[Tuple[int, ShardRecord]]:
        return enumerate(self.shards)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "index_dtype": INDEX_DTYPE.name,
            "value_dtype": VALUE_DTYPE.name,
            "node_count": self.node_count,
            "tree_count": self.tree_count,
            "shards": [record.to_dict() for record in self.shards],
        }
        if self.results is not None:
            data["results"] = self.results.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Manifest":
        if data.get("format") != FORMAT_NAME:
            raise AnalysisError(
                f"not a {FORMAT_NAME} manifest (format={data.get('format')!r})"
            )
        if int(data.get("version", 0)) != FORMAT_VERSION:  # type: ignore[arg-type]
            raise AnalysisError(
                f"unsupported store format version {data.get('version')!r}"
                f" (this build reads version {FORMAT_VERSION})"
            )
        shards = [ShardRecord.from_dict(d) for d in data.get("shards", [])]  # type: ignore[union-attr]
        results = None
        if "results" in data:
            results = ResultsRecord.from_dict(data["results"])  # type: ignore[arg-type]
        return cls(shards=shards, results=results)

    def save(self, directory: str) -> None:
        """Atomically (write + rename) persist the manifest."""
        path = os.path.join(directory, MANIFEST_NAME)
        scratch = path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")
        os.replace(scratch, path)

    @classmethod
    def load(cls, directory: str) -> "Manifest":
        path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(path):
            raise AnalysisError(f"no shard store at {directory!r} (missing {MANIFEST_NAME})")
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
