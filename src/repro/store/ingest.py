"""Streaming ingest: SPEF and generated netlists straight into shard files.

Nothing here ever materializes a concatenated forest.  SPEF sections flow
``file handle -> iter_spef_nets -> ShardStoreWriter`` one net at a time;
generator blocks flow ``stream_random_nets -> add_block`` one numpy batch
at a time.  Peak RSS is O(shard) either way, which is the property the
``tests-out-of-core`` CI job pins.

Ingest is transactional: every entry point runs the writer as a context
manager, so a malformed stream (strict SPEF errors included) aborts the
writer and deletes every shard file written so far -- no partial store is
ever left behind.  JSON netlists take the same path through
:class:`repro.graph.DesignDB` with ``store_dir=``, which streams its
compiled stage trees through this writer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Tuple

import numpy as np

from repro.spef.reader import SpefSource, iter_spef_nets
from repro.store.format import INDEX_DTYPE, Manifest
from repro.store.writer import DEFAULT_SHARD_NODES, ShardStoreWriter

if TYPE_CHECKING:  # pragma: no cover - typing-only import (no runtime cycle)
    from repro.generators.random_designs import NetBlock


def ingest_spef(
    source: SpefSource,
    directory: str,
    *,
    shard_nodes: int = DEFAULT_SHARD_NODES,
    overwrite: bool = False,
) -> Tuple[Manifest, List[str]]:
    """Stream SPEF nets into a shard store at ``directory``.

    ``source`` is a whole SPEF string or any iterable of lines (pass an
    open file handle to ingest without holding the text).  Parsing runs
    strict -- truncated nets, duplicate drivers and unterminated sections
    raise :class:`~repro.core.exceptions.ParseError` and roll the store
    back.  Returns the written manifest and the net names in tree order
    (tree ``i`` of the store is net ``names[i]``).
    """
    names: List[str] = []
    with ShardStoreWriter(
        directory, shard_nodes=shard_nodes, overwrite=overwrite
    ) as writer:
        for net in iter_spef_nets(source, strict=True):
            parent = np.asarray(net.parent, dtype=INDEX_DTYPE).copy()
            if parent.shape[0]:
                parent[0] = -1  # SpefNet keeps the root's self-entry at 0
            writer.add_tree(
                parent,
                net.resistance,
                np.zeros(parent.shape[0]),
                net.capacitance,
            )
            names.append(net.name)
        manifest = writer.close()
    return manifest, names


def ingest_blocks(
    blocks: "Iterable[NetBlock]",
    directory: str,
    *,
    shard_nodes: int = DEFAULT_SHARD_NODES,
    overwrite: bool = False,
) -> Manifest:
    """Stream pre-batched tree blocks (e.g. from
    :func:`repro.generators.stream_random_nets`) into a shard store.

    Each block supplies ``starts``/``parent``/``edge_r``/``edge_c``/
    ``node_c`` (and optionally ``depth``) as block-local arrays -- the
    zero-copy bulk path that fabricates a million-instance store in
    seconds.
    """
    with ShardStoreWriter(
        directory, shard_nodes=shard_nodes, overwrite=overwrite
    ) as writer:
        for block in blocks:
            writer.add_block(
                block.starts,
                block.parent,
                block.edge_r,
                block.edge_c,
                block.node_c,
                depth=getattr(block, "depth", None),
            )
        return writer.close()
