"""Common signal-net topologies: daisy chains, stars, and multi-drop buses.

These constructors build the fanout structures the paper's introduction
motivates ("a given inverter or logic node may drive several gates, some of
them through long wires") from process parameters, so examples and
benchmarks can sweep realistic design questions: How should loads be ordered
along a chain?  When does a star beat a daisy chain?  How far down a bus can
the last receiver sit?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.tree import RCTree
from repro.extraction.technology import GENERIC_1UM_CMOS, Layer, Technology
from repro.flat import FlatForest
from repro.mos.drivers import DriverModel
from repro.utils.checks import require_in_unit_interval, require_positive


def _start_tree(driver: Optional[DriverModel]) -> tuple:
    tree = RCTree("in")
    if driver is None:
        return tree, "in"
    tree.add_resistor("in", "drv", driver.effective_resistance)
    if driver.output_capacitance:
        tree.add_capacitor("drv", driver.output_capacitance)
    return tree, "drv"


def daisy_chain_net(
    load_capacitances: Sequence[float],
    segment_length: float,
    *,
    technology: Technology = GENERIC_1UM_CMOS,
    driver: Optional[DriverModel] = None,
    layer: Layer = Layer.METAL,
    wire_width: Optional[float] = None,
) -> RCTree:
    """A driver feeding loads strung along one wire (``load0`` nearest the driver).

    Each consecutive pair of loads is separated by ``segment_length`` of
    routing on ``layer``.  Every load node ``load<i>`` is marked as an output.
    """
    if not load_capacitances:
        raise ValueError("at least one load is required")
    require_positive("segment_length", segment_length)
    wire_width = wire_width or technology.feature_size
    tree, previous = _start_tree(driver)
    resistance = technology.wire_resistance(layer, segment_length, wire_width)
    capacitance = technology.wire_capacitance(layer, segment_length, wire_width)
    for index, load in enumerate(load_capacitances):
        node = f"load{index}"
        tree.add_line(previous, node, resistance, capacitance)
        tree.add_capacitor(node, load)
        tree.mark_output(node)
        previous = node
    return tree


def star_net(
    load_capacitances: Sequence[float],
    branch_length: float,
    *,
    technology: Technology = GENERIC_1UM_CMOS,
    driver: Optional[DriverModel] = None,
    layer: Layer = Layer.METAL,
    wire_width: Optional[float] = None,
) -> RCTree:
    """A driver feeding each load through its own dedicated branch wire."""
    if not load_capacitances:
        raise ValueError("at least one load is required")
    require_positive("branch_length", branch_length)
    wire_width = wire_width or technology.feature_size
    tree, hub = _start_tree(driver)
    resistance = technology.wire_resistance(layer, branch_length, wire_width)
    capacitance = technology.wire_capacitance(layer, branch_length, wire_width)
    for index, load in enumerate(load_capacitances):
        node = f"load{index}"
        tree.add_line(hub, node, resistance, capacitance)
        tree.add_capacitor(node, load)
        tree.mark_output(node)
    return tree


def comb_bus_net(
    drops: int,
    drop_capacitance: float,
    spine_segment_length: float,
    stub_length: float,
    *,
    technology: Technology = GENERIC_1UM_CMOS,
    driver: Optional[DriverModel] = None,
    spine_layer: Layer = Layer.METAL,
    stub_layer: Layer = Layer.POLY,
    wire_width: Optional[float] = None,
) -> RCTree:
    """A multi-drop bus: a spine with short stubs dropping to each receiver.

    This is the topology of the paper's Figure 1 generalised to ``drops``
    receivers: a (metal) spine carries the signal past each tap point, and a
    short (poly) stub connects each receiver gate -- a true RC *tree* rather
    than a chain.  Receivers are ``drop0 .. drop(n-1)``, all marked outputs.
    """
    if drops < 1:
        raise ValueError("drops must be >= 1")
    require_positive("drop_capacitance", drop_capacitance)
    require_positive("spine_segment_length", spine_segment_length)
    require_positive("stub_length", stub_length)
    wire_width = wire_width or technology.feature_size
    tree, previous = _start_tree(driver)
    spine_r = technology.wire_resistance(spine_layer, spine_segment_length, wire_width)
    spine_c = technology.wire_capacitance(spine_layer, spine_segment_length, wire_width)
    stub_r = technology.wire_resistance(stub_layer, stub_length, wire_width)
    stub_c = technology.wire_capacitance(stub_layer, stub_length, wire_width)
    for index in range(drops):
        tap = f"tap{index}"
        drop = f"drop{index}"
        tree.add_line(previous, tap, spine_r, spine_c)
        tree.add_line(tap, drop, stub_r, stub_c)
        tree.add_capacitor(drop, drop_capacitance)
        tree.mark_output(drop)
        previous = tap
    return tree


@dataclass(frozen=True)
class NetSummary:
    """Worst-output delay summary of one candidate net topology."""

    name: str
    #: Largest Elmore delay over the net's outputs (seconds).
    worst_elmore: float
    #: Largest guaranteed (upper-bound) delay over the net's outputs (seconds).
    worst_latest: float
    #: Smallest guaranteed-earliest delay over the net's outputs (seconds).
    best_earliest: float
    #: Output with the largest guaranteed delay.
    critical_output: str


def compare_nets(
    nets: Mapping[str, RCTree], threshold: float = 0.5
) -> Dict[str, NetSummary]:
    """Score candidate net topologies side by side in one batched analysis.

    All candidate trees are compiled into a single
    :class:`~repro.flat.FlatForest`, every output of every candidate is solved
    together, and both delay bounds come from one batched evaluation of
    eqs. (13)-(17).  This is the "should this fanout be a chain, a star or a
    bus?" question the module docstring motivates, asked at sweep scale.
    """
    if not nets:
        raise ValueError("at least one candidate net is required")
    require_in_unit_interval("threshold", threshold, open_ends=True)
    labels = list(nets)
    forest = FlatForest.from_rctrees(nets.values())
    times = forest.solve()
    pairs, lower, upper = forest.delay_bounds_batch([threshold])
    rows_by_net: Dict[int, list] = {}
    for k, (tree_index, _) in enumerate(pairs):
        rows_by_net.setdefault(tree_index, []).append(k)
    summaries: Dict[str, NetSummary] = {}
    for index, label in enumerate(labels):
        rows = rows_by_net.get(index)
        if not rows:
            raise ValueError(f"net {label!r} has no marked outputs")
        tde = {pairs[k][1]: float(times.tde[forest.global_index(index, pairs[k][1])]) for k in rows}
        uppers = {pairs[k][1]: float(upper[k, 0]) for k in rows}
        lowers = {pairs[k][1]: float(lower[k, 0]) for k in rows}
        critical = max(uppers, key=uppers.get)
        summaries[label] = NetSummary(
            name=label,
            worst_elmore=max(tde.values()),
            worst_latest=uppers[critical],
            best_earliest=min(lowers.values()),
            critical_output=critical,
        )
    return summaries


def design_net_summaries(db, threshold: float = 0.5) -> Dict[str, NetSummary]:
    """A :class:`NetSummary` for every timed net of a whole design, batched.

    The design-scale analogue of :func:`compare_nets`: the per-sink
    characteristic times come from the :class:`~repro.graph.DesignDB`'s single
    stage-tree forest solve, and both delay bounds for **all sinks of all
    nets** are evaluated in one batched call -- the per-net worst/best
    reductions are the only Python-level work.  Stage delays here include the
    driver's resistance, so a summary answers "how slow is this net *in situ*",
    not just "how slow is this wire".
    """
    require_in_unit_interval("threshold", threshold, open_ends=True)
    from repro.flat.batchbounds import delay_bounds_batch as _bounds

    sinks = db.sinks
    live = sinks.live
    lower = np.zeros(len(sinks))
    upper = np.zeros(len(sinks))
    if np.any(live):
        low, up = _bounds(
            sinks.tp[live], sinks.tde[live], sinks.tre[live], [threshold]
        )
        lower[live] = low[:, 0]
        upper[live] = up[:, 0]
    summaries: Dict[str, NetSummary] = {}
    for net in db.timed_nets():
        window = db.sink_rows(net)
        rows = range(window.start, window.stop)
        uppers = {sinks.pins[k]: float(upper[k]) for k in rows}
        critical = max(uppers, key=uppers.get)
        summaries[net] = NetSummary(
            name=net,
            worst_elmore=float(sinks.tde[window].max()),
            worst_latest=uppers[critical],
            best_earliest=float(lower[window].min()),
            critical_output=critical,
        )
    return summaries
