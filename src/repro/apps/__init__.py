"""Application-level workload builders.

These modules assemble realistic RC trees for the scenarios the paper
motivates -- PLA poly lines (Section V), clock distribution trees, and
multi-drop bus / fanout nets -- on top of the extraction and driver
substrates, and expose design-level corner-sweep / sensitivity reports over
the scenario-batched timing engine (:mod:`repro.apps.corners`).  They are
used by the examples, the benchmarks and the experiment harness.
"""

from repro.apps.corners import (
    CornerRow,
    corner_sweep,
    corner_sweep_table,
    derate_sensitivity,
)
from repro.apps.pla import (
    PLA_SECTION,
    pla_line_twoport,
    pla_line_tree,
    pla_delay_sweep,
    pla_line_from_technology,
)
from repro.apps.clocktree import h_tree, clock_skew_report
from repro.apps.nets import (
    NetSummary,
    comb_bus_net,
    compare_nets,
    daisy_chain_net,
    star_net,
)

__all__ = [
    "PLA_SECTION",
    "pla_line_twoport",
    "pla_line_tree",
    "pla_delay_sweep",
    "pla_line_from_technology",
    "h_tree",
    "clock_skew_report",
    "daisy_chain_net",
    "star_net",
    "comb_bus_net",
    "compare_nets",
    "NetSummary",
    "CornerRow",
    "corner_sweep",
    "corner_sweep_table",
    "derate_sensitivity",
]
