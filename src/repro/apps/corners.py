"""Corner sweeps and derate sensitivity over a whole design.

The paper argues its bounds are cheap enough to re-ask under every process
assumption; this module is that workflow at design scope, built on the
scenario-batched engine:

* :func:`corner_sweep` -- one
  :meth:`~repro.graph.TimingGraph.analyze_scenarios` pass summarized per
  corner: worst slack under all three delay models, the ternary verdict, the
  critical endpoint, and the *bound spread* (guaranteed-earliest minus
  guaranteed-latest worst slack -- the design-level width of the paper's
  Fig. 11 envelope, which corner derates widen or shrink);
* :func:`corner_sweep_table` -- the same sweep formatted for a report;
* :func:`derate_sensitivity` -- central-difference sensitivities of the
  worst slack to the global R / C / drive derates, evaluated as one
  six-scenario batch (the "which assumption is my margin hostage to?"
  question).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.scenarios import Scenario, ScenarioSet
from repro.sta.delaycalc import DelayModel
from repro.utils.tables import format_table

__all__ = ["CornerRow", "corner_sweep", "corner_sweep_table", "derate_sensitivity"]

_MODELS = (DelayModel.ELMORE, DelayModel.UPPER_BOUND, DelayModel.LOWER_BOUND)


@dataclass(frozen=True)
class CornerRow:
    """Design-level timing summary of one corner of a sweep."""

    name: str
    clock_period: float
    threshold: float
    worst_slack: Dict[str, float]
    verdict: str
    critical_endpoint: Optional[str]

    @property
    def bound_spread(self) -> float:
        """Worst-slack gap between the two guaranteed bounds (>= 0).

        The design-level width of the paper's Fig. 11 envelope at this
        corner: zero would mean the bounds pin the critical delay exactly.
        """
        return (
            self.worst_slack[DelayModel.LOWER_BOUND.value]
            - self.worst_slack[DelayModel.UPPER_BOUND.value]
        )


def corner_sweep(
    graph,
    scenarios: ScenarioSet,
    *,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[CornerRow]:
    """Summarize every corner of ``scenarios`` from one batched analysis.

    ``engine`` / ``jobs`` select the :mod:`repro.parallel` backend the
    underlying forest solve runs on (``None`` auto-selects by sweep size);
    the rows are identical for every backend.
    """
    report = graph.analyze_scenarios(
        scenarios, with_critical_paths=False, engine=engine, jobs=jobs
    )
    rows: List[CornerRow] = []
    for index, name in enumerate(report.scenario_names):
        worst = {
            model.value: report.worst_slack_of(index, model) for model in _MODELS
        }
        rows.append(
            CornerRow(
                name=name,
                clock_period=float(report.clock_periods[index]),
                threshold=float(report.thresholds[index]),
                worst_slack=worst,
                verdict=report.verdicts[index],
                critical_endpoint=report.worst_endpoint[index][
                    DelayModel.UPPER_BOUND.value
                ],
            )
        )
    return rows


def corner_sweep_table(
    graph,
    scenarios: ScenarioSet,
    *,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
) -> str:
    """The corner sweep as a formatted report table (worst slack in ns)."""
    rows = corner_sweep(graph, scenarios, engine=engine, jobs=jobs)
    return format_table(
        ["corner", "slack upper (ns)", "slack elmore (ns)", "slack lower (ns)",
         "spread (ns)", "verdict"],
        [
            (
                row.name,
                row.worst_slack[DelayModel.UPPER_BOUND.value] * 1e9,
                row.worst_slack[DelayModel.ELMORE.value] * 1e9,
                row.worst_slack[DelayModel.LOWER_BOUND.value] * 1e9,
                row.bound_spread * 1e9,
                row.verdict,
            )
            for row in rows
        ],
        precision=4,
        title=f"corner sweep, {len(rows)} scenarios",
    )


def derate_sensitivity(
    graph,
    *,
    delta: float = 0.05,
    model: DelayModel = DelayModel.UPPER_BOUND,
) -> Dict[str, float]:
    """d(worst slack)/d(derate) for the three global knobs, one batched solve.

    Central differences at ``1 +- delta`` around nominal for the wire-R,
    capacitance and drive-R derates -- six what-if corners evaluated in a
    single :meth:`~repro.graph.TimingGraph.analyze_scenarios` pass.  All
    three sensitivities are non-positive for any physical design (derating
    anything up can only slow it down).
    """
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must lie in (0, 1)")
    knobs = ("r_derate", "c_derate", "drive_derate")
    scenarios = []
    for knob in knobs:
        for sign, factor in (("-", 1.0 - delta), ("+", 1.0 + delta)):
            scenarios.append(Scenario(f"{knob}{sign}", **{knob: factor}))
    report = graph.analyze_scenarios(
        ScenarioSet(scenarios), with_critical_paths=False
    )
    sensitivities: Dict[str, float] = {}
    for index, knob in enumerate(knobs):
        low = report.worst_slack_of(2 * index, model)
        high = report.worst_slack_of(2 * index + 1, model)
        sensitivities[knob] = (high - low) / (2.0 * delta)
    return sensitivities
