"""Clock-distribution trees and skew analysis.

Clock trees are the canonical "RC tree with many outputs" workload: a driver
feeds a balanced tree of wires whose leaves are the clocked elements, and the
quantity of interest is the *skew* -- the spread of arrival times across
leaves.  The Elmore delay and the Penfield-Rubinstein bounds give,
respectively, an estimate and guaranteed brackets for each leaf, so the skew
itself can be bounded: the guaranteed worst-case skew is
``max(t_max) - min(t_min)`` over the leaves.

:func:`h_tree` builds an H-tree of configurable depth with per-level wire
geometry derived from a :class:`~repro.extraction.technology.Technology`;
optional per-leaf load mismatch makes the skew non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.tree import RCTree
from repro.flat import FlatTree, delay_bounds_batch
from repro.extraction.technology import GENERIC_1UM_CMOS, Layer, Technology
from repro.mos.drivers import DriverModel
from repro.utils.checks import require_positive


def h_tree(
    levels: int,
    *,
    technology: Technology = GENERIC_1UM_CMOS,
    driver: Optional[DriverModel] = None,
    trunk_length: float = 1e-3,
    wire_width: Optional[float] = None,
    leaf_capacitance: float = 20e-15,
    leaf_capacitance_mismatch: Sequence[float] = (),
    layer: Layer = Layer.METAL,
    metal_resistance: bool = True,
) -> RCTree:
    """Build a binary H-tree clock network of ``levels`` branching levels.

    Parameters
    ----------
    levels:
        Number of branching levels; the tree has ``2**levels`` leaves.
    trunk_length:
        Length of the first (root) wire, metres; each subsequent level is
        half as long, the standard H-tree geometry.
    wire_width:
        Routing width; defaults to 4x the minimum feature (clock routing is
        normally widened to cut resistance).
    leaf_capacitance:
        Nominal clocked-load capacitance at each leaf, farads.
    leaf_capacitance_mismatch:
        Optional per-leaf multiplicative factors (cycled over the leaves) to
        create deliberate imbalance, e.g. ``(1.0, 1.3)``.
    metal_resistance:
        Keep the metal resistance (unlike the paper's signal nets, clock
        skew analysis cannot neglect it).

    Returns
    -------
    RCTree
        Tree whose leaves ``leaf0 .. leaf(2**levels - 1)`` are marked outputs.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    require_positive("trunk_length", trunk_length)
    require_positive("leaf_capacitance", leaf_capacitance)
    wire_width = wire_width or 4.0 * technology.feature_size

    tree = RCTree("clk_src")
    if driver is not None:
        tree.add_resistor("clk_src", "drv", driver.effective_resistance)
        if driver.output_capacitance:
            tree.add_capacitor("drv", driver.output_capacitance)
        frontier = ["drv"]
    else:
        frontier = ["clk_src"]

    def wire_values(length: float):
        capacitance = technology.wire_capacitance(layer, length, wire_width)
        if metal_resistance or layer is not Layer.METAL:
            resistance = technology.wire_resistance(layer, length, wire_width)
        else:
            resistance = 0.0
        return resistance, capacitance

    length = trunk_length
    for level in range(levels):
        next_frontier = []
        resistance, capacitance = wire_values(length)
        for parent_index, parent in enumerate(frontier):
            for side in (0, 1):
                child = f"L{level}_{2 * parent_index + side}"
                if resistance > 0.0:
                    tree.add_line(parent, child, resistance, capacitance)
                else:
                    tree.add_resistor(parent, child, 1e-3)  # negligible, keeps nodes distinct
                    tree.add_capacitor(child, capacitance)
                next_frontier.append(child)
        frontier = next_frontier
        length /= 2.0

    mismatch = list(leaf_capacitance_mismatch) or [1.0]
    for index, node in enumerate(frontier):
        leaf = f"leaf{index}"
        tree.add_resistor(node, leaf, technology.sheet_resistance[Layer.POLY])
        tree.add_capacitor(leaf, leaf_capacitance * mismatch[index % len(mismatch)])
        tree.mark_output(leaf)
    return tree


@dataclass(frozen=True)
class SkewReport:
    """Clock-skew summary across the leaves of a clock tree."""

    threshold: float
    #: Elmore delay per leaf (seconds).
    elmore: Dict[str, float]
    #: Guaranteed latest arrival per leaf (upper delay bound, seconds).
    latest: Dict[str, float]
    #: Guaranteed earliest arrival per leaf (lower delay bound, seconds).
    earliest: Dict[str, float]

    @property
    def elmore_skew(self) -> float:
        """Skew estimated from Elmore delays: ``max - min``."""
        values = list(self.elmore.values())
        return max(values) - min(values)

    @property
    def guaranteed_skew_bound(self) -> float:
        """Upper bound on the true skew: ``max(latest) - min(earliest)``."""
        return max(self.latest.values()) - min(self.earliest.values())

    @property
    def slowest_leaf(self) -> str:
        """Leaf with the largest guaranteed-latest arrival."""
        return max(self.latest, key=self.latest.get)

    @property
    def fastest_leaf(self) -> str:
        """Leaf with the smallest guaranteed-earliest arrival."""
        return min(self.earliest, key=self.earliest.get)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"clock skew at threshold {self.threshold:g}:",
            f"  Elmore skew            : {self.elmore_skew * 1e12:.2f} ps",
            f"  guaranteed skew bound  : {self.guaranteed_skew_bound * 1e12:.2f} ps",
            f"  slowest leaf           : {self.slowest_leaf}",
            f"  fastest leaf           : {self.fastest_leaf}",
        ]
        return "\n".join(lines)


def clock_skew_report(
    tree: RCTree, threshold: float = 0.5, outputs: Optional[Sequence[str]] = None
) -> SkewReport:
    """Compute Elmore delays and guaranteed arrival brackets for every clock leaf.

    One vectorized :class:`~repro.flat.FlatTree` solve covers every leaf, and
    both delay bounds of all leaves come from a single batched evaluation of
    eqs. (13)-(17) -- no per-leaf Python loop over the tree.
    """
    flat = FlatTree.from_tree(tree)
    names, lower, upper = flat.delay_bounds_batch([threshold], outputs)
    times = flat.solve()
    indices = [flat.index(name) for name in names]
    elmore: Dict[str, float] = {
        name: float(times.tde[i]) for name, i in zip(names, indices)
    }
    latest: Dict[str, float] = dict(zip(names, upper[:, 0].tolist()))
    earliest: Dict[str, float] = dict(zip(names, lower[:, 0].tolist()))
    return SkewReport(threshold=threshold, elmore=elmore, latest=latest, earliest=earliest)
