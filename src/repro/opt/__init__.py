"""Design-optimisation applications built on the delay bounds.

The reason a designer evaluates interconnect delay at all is to change the
design when it is too slow.  This subpackage provides the two classic knobs
for the nets the paper studies, both driven by the *guaranteed* (upper-bound)
delay rather than an estimate:

* :mod:`repro.opt.sizing` -- pick the smallest driver strength whose
  guaranteed delay meets a deadline (upsizing trades lower drive resistance
  against higher self-loading, so there is a genuine optimum);
* :mod:`repro.opt.buffering` -- repeater insertion along a long resistive
  line: sweep the repeater count, evaluate each candidate stage-by-stage, and
  report the plan with the smallest guaranteed delay.
"""

from repro.opt.sizing import SizingResult, size_driver_for_deadline, sweep_driver_sizes
from repro.opt.buffering import (
    BufferingPlan,
    Repeater,
    buffered_line_delay,
    optimal_buffer_count,
    compare_buffering,
)

__all__ = [
    "SizingResult",
    "size_driver_for_deadline",
    "sweep_driver_sizes",
    "BufferingPlan",
    "Repeater",
    "buffered_line_delay",
    "optimal_buffer_count",
    "compare_buffering",
]
