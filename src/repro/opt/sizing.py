"""Driver sizing against a guaranteed-delay deadline.

Upsizing a driver by a factor ``x`` divides its effective resistance by ``x``
but multiplies its parasitic output capacitance by ``x`` (see
:meth:`repro.mos.drivers.DriverModel.scaled`), and in a larger flow it would
also load the previous stage.  The guaranteed delay of the driven net is
therefore not monotone in ``x``: there is a useful optimum, and beyond it
upsizing is pure waste.

:func:`size_driver_for_deadline` sweeps a geometric grid of sizes, finds the
region where the guaranteed (upper-bound) delay meets the deadline, and then
bisects for the smallest such size -- i.e. it answers "what is the cheapest
driver that is *provably* fast enough", which is exactly the certification
question (use 3 in the paper's abstract) turned into a design knob.

The search never rebuilds the net per candidate -- and it never *solves* per
candidate either: an evaluator probes the ``NetFactory`` with a few driver
sizes, verifies that the topology is driver-independent and that the driver
enters the tree only through its resistance and output capacitance (the
universal case -- every factory in this repository does exactly that), then
compiles the net *once* into a :class:`~repro.flat.FlatTree` and evaluates
**all candidates as scenarios in one batched solve**
(:meth:`~repro.flat.FlatTree.solve_batch`): each candidate becomes one row
of a per-node element plane.  Factories that fail the probe fall back to a
compile per candidate, still through the flat engine -- the unavoidable path
when the topology itself depends on the driver.

Beyond single nets, :func:`upsize_critical_path` runs the same knob at
*design scope*: an ECO loop over a :class:`~repro.graph.TimingGraph` that,
per iteration, evaluates **every** upsizable critical-path instance as a
what-if scenario in one batched solve
(:meth:`~repro.graph.TimingGraph.whatif_resize_worst_slack`), applies the
swap with the best resulting worst slack, and re-times only the affected
cone (the incremental machinery of
:meth:`~repro.graph.TimingGraph.resize_instance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bounds import delay_bounds
from repro.core.tree import RCTree
from repro.flat import FlatTree, delay_upper_bound_batch
from repro.mos.drivers import DriverModel
from repro.sta.cells import Cell
from repro.sta.delaycalc import DelayModel
from repro.utils.checks import require_in_unit_interval, require_positive

#: A callable that builds the driven net for a given driver model.  The
#: returned tree must mark (or the caller must name) the output of interest.
NetFactory = Callable[[DriverModel], RCTree]

#: Relative tolerance used when probing a factory for topology stability.
_PROBE_RTOL = 1e-9


@dataclass(frozen=True)
class SizingResult:
    """Outcome of a driver-sizing search."""

    feasible: bool
    scale: Optional[float]
    driver: Optional[DriverModel]
    guaranteed_delay: Optional[float]
    deadline: float
    threshold: float
    #: (scale, guaranteed delay) pairs for every size evaluated during the sweep.
    sweep: List[Tuple[float, float]]

    @property
    def best_achievable_delay(self) -> float:
        """Smallest guaranteed delay seen anywhere in the sweep."""
        return min(delay for _, delay in self.sweep)


def _resolve_target(tree: RCTree, output: Optional[str]) -> str:
    return output or (tree.outputs[0] if tree.outputs else tree.leaves()[-1])


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _PROBE_RTOL * max(abs(a), abs(b), 1e-300)


class _DelayEvaluator:
    """Guaranteed delay of the driven net as a function of the driver.

    On construction the factory is probed with three driver sizes.  When the
    probes show a fixed topology whose only driver-dependent values follow
    the additive model ``r(d) = r0 + (R(d) - R(d0))`` on edges and
    ``c(d) = c0 + (C(d) - C(d0))`` on node capacitances (i.e. the driver
    contributes its effective resistance in series and its output capacitance
    in shunt, possibly combined with fixed wire parasitics), the net is
    compiled once and every candidate is evaluated through incremental
    updates.  Otherwise each candidate compiles its own flat tree.
    """

    def __init__(self, net_factory: NetFactory, base_driver: DriverModel, output: Optional[str], threshold: float):
        self._factory = net_factory
        self._threshold = threshold
        self._output = output
        self._template: Optional[FlatTree] = None
        self._r_edges: List[Tuple[int, float]] = []
        self._c_nodes: List[Tuple[int, float]] = []
        self._base = base_driver
        self._probe(base_driver)

    # ------------------------------------------------------------------
    def _probe(self, base: DriverModel) -> None:
        reference = self._factory(base)
        self._target = _resolve_target(reference, self._output)
        drivers = [base.scaled(2.0), base.scaled(0.5)]
        try:
            probes = [self._factory(driver) for driver in drivers]
        except Exception:
            # A factory may legitimately reject sizes it was never asked to
            # build (range validation, lookup tables); fall back to compiling
            # per candidate rather than surfacing the probe.
            return
        if any(probe.nodes != reference.nodes for probe in probes):
            return
        r_edges: List[Tuple[str, float]] = []  # (child node, base resistance)
        c_nodes: List[Tuple[str, float]] = []  # (node, base capacitance)
        for name in reference.nodes:
            edge = reference.parent_edge(name)
            candidates = [probe.parent_edge(name) for probe in probes]
            if edge is None:
                if any(c is not None for c in candidates):
                    return
            else:
                if any(
                    c is None
                    or c.parent != edge.parent
                    or c.is_distributed != edge.is_distributed
                    for c in candidates
                ):
                    return
                # Distributed line capacitance must not depend on the driver.
                if any(not _close(c.capacitance, edge.capacitance) for c in candidates):
                    return
                if all(_close(c.resistance, edge.resistance) for c in candidates):
                    pass
                else:
                    expected = [
                        edge.resistance + (d.effective_resistance - base.effective_resistance)
                        for d in drivers
                    ]
                    if not all(
                        _close(c.resistance, e) for c, e in zip(candidates, expected)
                    ):
                        return
                    r_edges.append((name, edge.resistance))
            cap = reference.node_capacitance(name)
            probe_caps = [probe.node_capacitance(name) for probe in probes]
            if all(_close(p, cap) for p in probe_caps):
                continue
            expected = [
                cap + (d.output_capacitance - base.output_capacitance) for d in drivers
            ]
            if not all(_close(p, e) for p, e in zip(probe_caps, expected)):
                return
            c_nodes.append((name, cap))
        if not r_edges and not c_nodes:
            # The driver does not enter the tree at all; nothing to update,
            # but the fixed topology still lets us compile once.
            pass
        template = FlatTree.from_tree(reference)
        self._template = template
        self._r_edges = [(template.index(name), base) for name, base in r_edges]
        self._c_nodes = [(template.index(name), base) for name, base in c_nodes]
        self._target_index = template.index(self._target)

    # ------------------------------------------------------------------
    def _fallback_delay(self, driver: DriverModel) -> float:
        """Rebuild through the factory (topology-varying case), still flat."""
        tree = self._factory(driver)
        flat = FlatTree.from_tree(tree)
        times = flat.characteristic_times(_resolve_target(tree, self._output))
        return delay_bounds(times, self._threshold).upper

    def delays(self, drivers: Sequence[DriverModel]) -> List[float]:
        """Guaranteed delay of every candidate driver, one batched solve.

        Candidates that keep every templated element value physical (positive
        resistances, non-negative capacitances) become rows of a per-node
        element plane evaluated by a single
        :meth:`~repro.flat.FlatTree.solve_batch`; the rest (and every
        candidate of a probe-rejected factory) fall back to a per-candidate
        factory rebuild.
        """
        template = self._template
        results: List[Optional[float]] = [None] * len(drivers)
        batched: List[int] = []
        if template is not None:
            base_r = self._base.effective_resistance
            base_c = self._base.output_capacitance
            deltas = []
            for position, driver in enumerate(drivers):
                dr = driver.effective_resistance - base_r
                dc = driver.output_capacitance - base_c
                if all(base + dr > 0.0 for _, base in self._r_edges) and all(
                    base + dc >= 0.0 for _, base in self._c_nodes
                ):
                    batched.append(position)
                    deltas.append((dr, dc))
            if batched:
                count = len(batched)
                edge_r = np.repeat(template._edge_r[np.newaxis, :], count, axis=0)
                node_c = np.repeat(template._node_c[np.newaxis, :], count, axis=0)
                for row, (dr, dc) in enumerate(deltas):
                    for node, base in self._r_edges:
                        edge_r[row, node] = base + dr
                    for node, base in self._c_nodes:
                        node_c[row, node] = base + dc
                times = template.solve_batch(
                    edge_r=edge_r, node_c=node_c, count=count
                )
                target = self._target_index
                upper = delay_upper_bound_batch(
                    times.tp,
                    times.tde[:, target],
                    times.tre[:, target],
                    [self._threshold],
                    total_capacitance=times.total_capacitance,
                )[:, 0]
                for row, position in enumerate(batched):
                    results[position] = float(upper[row])
        for position, driver in enumerate(drivers):
            if results[position] is None:
                results[position] = self._fallback_delay(driver)
        return results

    def delay(self, driver: DriverModel) -> float:
        """Guaranteed delay of one candidate (a batch of one)."""
        return self.delays([driver])[0]


def _guaranteed_delay(net_factory: NetFactory, driver: DriverModel, output: Optional[str], threshold: float) -> float:
    tree = net_factory(driver)
    flat = FlatTree.from_tree(tree)
    times = flat.characteristic_times(_resolve_target(tree, output))
    return delay_bounds(times, threshold).upper


def sweep_driver_sizes(
    net_factory: NetFactory,
    base_driver: DriverModel,
    *,
    output: Optional[str] = None,
    threshold: float = 0.5,
    scales: Optional[List[float]] = None,
    _evaluator: Optional[_DelayEvaluator] = None,
) -> List[Tuple[float, float]]:
    """Guaranteed delay versus drive strength over a geometric size grid.

    The whole grid is evaluated as one scenario batch (see
    :meth:`_DelayEvaluator.delays`) -- no per-candidate solve loop.
    """
    require_in_unit_interval("threshold", threshold, open_ends=True)
    if scales is None:
        scales = [0.25 * (2.0 ** (i / 2.0)) for i in range(17)]  # 0.25x .. 64x
    for scale in scales:
        require_positive("scale", scale)
    evaluator = _evaluator or _DelayEvaluator(net_factory, base_driver, output, threshold)
    delays = evaluator.delays([base_driver.scaled(scale) for scale in scales])
    return list(zip(scales, delays))


def size_driver_for_deadline(
    net_factory: NetFactory,
    base_driver: DriverModel,
    deadline: float,
    *,
    output: Optional[str] = None,
    threshold: float = 0.5,
    scales: Optional[List[float]] = None,
    refinement_steps: int = 40,
) -> SizingResult:
    """Find the smallest driver scale whose guaranteed delay meets ``deadline``.

    Returns an infeasible :class:`SizingResult` (with the full sweep attached)
    when no size on the grid meets the deadline -- meaning the wire itself is
    too slow and needs restructuring (see :mod:`repro.opt.buffering`).
    """
    require_positive("deadline", deadline)
    require_in_unit_interval("threshold", threshold, open_ends=True)
    evaluator = _DelayEvaluator(net_factory, base_driver, output, threshold)
    sweep = sweep_driver_sizes(
        net_factory,
        base_driver,
        output=output,
        threshold=threshold,
        scales=scales,
        _evaluator=evaluator,
    )
    meeting = [(scale, delay) for scale, delay in sweep if delay <= deadline]
    if not meeting:
        return SizingResult(
            feasible=False,
            scale=None,
            driver=None,
            guaranteed_delay=None,
            deadline=deadline,
            threshold=threshold,
            sweep=sweep,
        )

    smallest_meeting_scale = min(scale for scale, _ in meeting)
    chosen_delay = dict(meeting)[smallest_meeting_scale]
    # Refine between the largest failing scale below (if any) and the
    # smallest passing scale: each round evaluates a whole sub-grid as one
    # scenario batch (batched rounds instead of a scalar bisection loop) and
    # shrinks the bracket by its grid resolution, stopping -- like the old
    # bisection -- once the bracket is within 1e-4 of the chosen scale.
    # ``refinement_steps`` still budgets the total number of candidate
    # evaluations (0 skips refinement and returns the grid answer).
    failing_below = [scale for scale, delay in sweep if scale < smallest_meeting_scale and delay > deadline]
    lo = max(failing_below) if failing_below else smallest_meeting_scale * 0.5
    hi = smallest_meeting_scale
    rounds = min(3, refinement_steps)
    points = max(2, refinement_steps // rounds) if rounds else 0
    for _ in range(rounds):
        if hi - lo <= 1e-4 * hi:
            break
        grid = [lo + (hi - lo) * (k + 1) / (points + 1) for k in range(points)]
        delays = evaluator.delays([base_driver.scaled(scale) for scale in grid])
        new_lo = lo
        for scale, delay in zip(grid, delays):
            if delay <= deadline:
                hi, chosen_delay = scale, delay
                break
            new_lo = scale
        lo = new_lo

    return SizingResult(
        feasible=True,
        scale=hi,
        driver=base_driver.scaled(hi),
        guaranteed_delay=chosen_delay,
        deadline=deadline,
        threshold=threshold,
        sweep=sweep,
    )


# ----------------------------------------------------------------------
# Design-scope ECO sizing over a TimingGraph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EcoStep:
    """One applied cell swap of a design-scope sizing ECO."""

    instance: str
    old_cell: str
    new_cell: str
    worst_slack_before: float
    worst_slack_after: float
    #: Number of pins re-evaluated by the incremental cone re-timing.
    cone_size: int


@dataclass(frozen=True)
class EcoResult:
    """Outcome of :func:`upsize_critical_path`."""

    met: bool
    worst_slack: float
    steps: List[EcoStep]

    @property
    def swap_count(self) -> int:
        """Number of cell swaps applied."""
        return len(self.steps)


def next_drive_strength(cell: Cell, library: Dict[str, Cell]) -> Optional[Cell]:
    """The same cell one drive step up (``_X1`` -> ``_X2`` ...), if the library has it."""
    prefix, separator, suffix = cell.name.rpartition("_X")
    if not separator or not suffix.isdigit():
        return None
    return library.get(f"{prefix}_X{2 * int(suffix)}")


def upsize_critical_path(
    graph: "TimingGraph",
    library: Dict[str, Cell],
    *,
    model: DelayModel = DelayModel.UPPER_BOUND,
    max_steps: int = 32,
) -> EcoResult:
    """Design-scope ECO loop: upsize critical-path drivers until timing is met.

    Each iteration traces the worst path under ``model`` (the sign-off upper
    bound by default), collects *every* path instance that still has a
    stronger library variant, and evaluates all of those candidate swaps **as
    scenarios in one batched solve**
    (:meth:`~repro.graph.TimingGraph.whatif_resize_worst_slack`) -- no
    trial-swap loop.  The swap with the best resulting worst slack is applied
    for real and the graph re-times just the affected cone.  Stops when the
    worst slack is non-negative, no upsizable candidate remains, or
    ``max_steps`` swaps were spent.  The applied swaps mutate the shared
    design in place (this is an ECO, not a what-if).
    """
    steps: List[EcoStep] = []
    worst = graph.worst_slack(model)
    while worst < 0.0 and len(steps) < max_steps:
        path = graph.critical_path(model)
        candidates: List[Tuple[str, Cell]] = []
        seen = set()
        for segment in path:
            if "/" not in segment.location:
                continue
            instance_name = segment.location.split("/", 1)[0]
            if instance_name in seen:
                continue
            record = graph.db.instances.get(instance_name)
            if record is None or not segment.arc.startswith(record.cell.name):
                continue
            stronger = next_drive_strength(record.cell, library)
            if stronger is None:
                continue
            seen.add(instance_name)
            candidates.append((instance_name, stronger))
        if not candidates:
            break
        outcomes = graph.whatif_resize_worst_slack(candidates, model=model)
        instance_name, stronger = candidates[int(np.argmax(outcomes))]
        old_cell = graph.db.instances[instance_name].cell.name
        cone = graph.resize_instance(instance_name, stronger)
        after = graph.worst_slack(model)
        steps.append(
            EcoStep(
                instance=instance_name,
                old_cell=old_cell,
                new_cell=stronger.name,
                worst_slack_before=worst,
                worst_slack_after=after,
                cone_size=cone,
            )
        )
        worst = after
    return EcoResult(met=worst >= 0.0, worst_slack=worst, steps=steps)
