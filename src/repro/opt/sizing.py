"""Driver sizing against a guaranteed-delay deadline.

Upsizing a driver by a factor ``x`` divides its effective resistance by ``x``
but multiplies its parasitic output capacitance by ``x`` (see
:meth:`repro.mos.drivers.DriverModel.scaled`), and in a larger flow it would
also load the previous stage.  The guaranteed delay of the driven net is
therefore not monotone in ``x``: there is a useful optimum, and beyond it
upsizing is pure waste.

:func:`size_driver_for_deadline` sweeps a geometric grid of sizes, finds the
region where the guaranteed (upper-bound) delay meets the deadline, and then
bisects for the smallest such size -- i.e. it answers "what is the cheapest
driver that is *provably* fast enough", which is exactly the certification
question (use 3 in the paper's abstract) turned into a design knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.bounds import delay_bounds
from repro.core.exceptions import AnalysisError
from repro.core.timeconstants import characteristic_times
from repro.core.tree import RCTree
from repro.mos.drivers import DriverModel
from repro.utils.checks import require_in_unit_interval, require_positive

#: A callable that builds the driven net for a given driver model.  The
#: returned tree must mark (or the caller must name) the output of interest.
NetFactory = Callable[[DriverModel], RCTree]


@dataclass(frozen=True)
class SizingResult:
    """Outcome of a driver-sizing search."""

    feasible: bool
    scale: Optional[float]
    driver: Optional[DriverModel]
    guaranteed_delay: Optional[float]
    deadline: float
    threshold: float
    #: (scale, guaranteed delay) pairs for every size evaluated during the sweep.
    sweep: List[Tuple[float, float]]

    @property
    def best_achievable_delay(self) -> float:
        """Smallest guaranteed delay seen anywhere in the sweep."""
        return min(delay for _, delay in self.sweep)


def _guaranteed_delay(net_factory: NetFactory, driver: DriverModel, output: Optional[str], threshold: float) -> float:
    tree = net_factory(driver)
    target = output or (tree.outputs[0] if tree.outputs else tree.leaves()[-1])
    times = characteristic_times(tree, target)
    return delay_bounds(times, threshold).upper


def sweep_driver_sizes(
    net_factory: NetFactory,
    base_driver: DriverModel,
    *,
    output: Optional[str] = None,
    threshold: float = 0.5,
    scales: Optional[List[float]] = None,
) -> List[Tuple[float, float]]:
    """Guaranteed delay versus drive strength over a geometric size grid."""
    require_in_unit_interval("threshold", threshold, open_ends=True)
    if scales is None:
        scales = [0.25 * (2.0 ** (i / 2.0)) for i in range(17)]  # 0.25x .. 64x
    results = []
    for scale in scales:
        require_positive("scale", scale)
        delay = _guaranteed_delay(net_factory, base_driver.scaled(scale), output, threshold)
        results.append((scale, delay))
    return results


def size_driver_for_deadline(
    net_factory: NetFactory,
    base_driver: DriverModel,
    deadline: float,
    *,
    output: Optional[str] = None,
    threshold: float = 0.5,
    scales: Optional[List[float]] = None,
    refinement_steps: int = 40,
) -> SizingResult:
    """Find the smallest driver scale whose guaranteed delay meets ``deadline``.

    Returns an infeasible :class:`SizingResult` (with the full sweep attached)
    when no size on the grid meets the deadline -- meaning the wire itself is
    too slow and needs restructuring (see :mod:`repro.opt.buffering`).
    """
    require_positive("deadline", deadline)
    sweep = sweep_driver_sizes(
        net_factory, base_driver, output=output, threshold=threshold, scales=scales
    )
    meeting = [(scale, delay) for scale, delay in sweep if delay <= deadline]
    if not meeting:
        return SizingResult(
            feasible=False,
            scale=None,
            driver=None,
            guaranteed_delay=None,
            deadline=deadline,
            threshold=threshold,
            sweep=sweep,
        )

    smallest_meeting_scale = min(scale for scale, _ in meeting)
    # Bisect between the largest failing scale below it (if any) and the
    # smallest passing scale for the cheapest driver that still passes.
    failing_below = [scale for scale, delay in sweep if scale < smallest_meeting_scale and delay > deadline]
    lo = max(failing_below) if failing_below else smallest_meeting_scale * 0.5
    hi = smallest_meeting_scale
    for _ in range(refinement_steps):
        mid = 0.5 * (lo + hi)
        if _guaranteed_delay(net_factory, base_driver.scaled(mid), output, threshold) <= deadline:
            hi = mid
        else:
            lo = mid
        if hi - lo <= 1e-4 * hi:
            break

    chosen = base_driver.scaled(hi)
    return SizingResult(
        feasible=True,
        scale=hi,
        driver=chosen,
        guaranteed_delay=_guaranteed_delay(net_factory, chosen, output, threshold),
        deadline=deadline,
        threshold=threshold,
        sweep=sweep,
    )
