"""Repeater (buffer) insertion along a long RC line.

The paper's Fig. 13 observation -- line delay grows quadratically with
length -- is the reason repeaters exist: splitting a line of total
resistance ``R_w`` and capacitance ``C_w`` into ``k + 1`` equal segments,
each driven by its own buffer, replaces one quadratic term by ``k + 1``
small ones, at the cost of the buffers' own delay and input load.

Each candidate plan is evaluated *stage by stage*: a stage is one driver
(the original driver or a repeater) plus one line segment ending in the next
repeater's input capacitance, and its delay is taken from the
Penfield-Rubinstein upper bound (or the Elmore delay, selectable).  Summing
per-stage threshold delays assumes each repeater regenerates a clean edge --
the standard repeater-insertion approximation.

Every stage of every candidate shares one topology (driver resistance, one
line segment, one load), so the sweep compiles a single
:class:`~repro.flat.FlatTree` *template* and evaluates **every stage of
every candidate plan as one scenario batch**
(:meth:`~repro.flat.FlatTree.solve_batch`): each stage becomes a row of a
per-node element plane, and an entire repeater-count sweep is a single
solve -- no tree is ever rebuilt and no per-candidate solve loop remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tree import RCTree
from repro.flat import FlatTree, delay_upper_bound_batch
from repro.mos.drivers import DriverModel
from repro.utils.checks import require_in_unit_interval, require_non_negative, require_positive


@dataclass(frozen=True)
class Repeater:
    """A repeater cell: drive resistance, input capacitance, intrinsic delay."""

    name: str
    drive_resistance: float
    input_capacitance: float
    intrinsic_delay: float = 0.0

    def __post_init__(self):
        require_positive("drive_resistance", self.drive_resistance)
        require_non_negative("input_capacitance", self.input_capacitance)
        require_non_negative("intrinsic_delay", self.intrinsic_delay)

    def scaled(self, factor: float) -> "Repeater":
        """A drive-strength-scaled variant (R / factor, C_in * factor)."""
        require_positive("factor", factor)
        return Repeater(
            name=f"{self.name}_x{factor:g}",
            drive_resistance=self.drive_resistance / factor,
            input_capacitance=self.input_capacitance * factor,
            intrinsic_delay=self.intrinsic_delay,
        )


#: One stage's element values: (drive R, segment R, segment C, load C, driver self-load C).
_StageParams = Tuple[float, float, float, float, float]


class _StageTemplate:
    """One compiled driver + segment + load stage, batch-valued per sweep.

    The topology (``src -R-> drv -URC-> sink``) never changes across a
    repeater sweep; only the four element values do.  Compiling it once and
    evaluating every stage of every candidate as one row of a
    :meth:`~repro.flat.FlatTree.solve_batch` plane makes a whole sweep a
    single vectorized solve.
    """

    def __init__(self):
        tree = RCTree("src")
        tree.add_resistor("src", "drv", 1.0)
        tree.add_line("drv", "sink", 1.0, 1.0)
        self._flat = FlatTree.from_tree(tree)
        self._drv = self._flat.index("drv")
        self._sink = self._flat.index("sink")

    def delays_batch(
        self,
        stages: Sequence[_StageParams],
        threshold: float,
        use_bounds: bool,
    ) -> np.ndarray:
        """Threshold delay of every stage row, one batched solve.

        A stage whose tree carries no capacitance settles instantaneously in
        the linear model and reports zero delay, mirroring the scalar path.
        """
        count = len(stages)
        edge_r = np.zeros((count, 3))
        edge_c = np.zeros((count, 3))
        node_c = np.zeros((count, 3))
        for row, (drive, seg_r, seg_c, load, self_c) in enumerate(stages):
            edge_r[row, self._drv] = drive
            edge_r[row, self._sink] = seg_r
            edge_c[row, self._sink] = seg_c
            node_c[row, self._drv] = self_c
            node_c[row, self._sink] = load
        times = self._flat.solve_batch(
            edge_r=edge_r, edge_c=edge_c, node_c=node_c, count=count
        )
        tde = times.tde[:, self._sink]
        live = tde > 0.0
        if not use_bounds:
            return np.where(live, tde, 0.0)
        out = np.zeros(count)
        if np.any(live):
            out[live] = delay_upper_bound_batch(
                times.tp[live],
                tde[live],
                times.tre[live, self._sink],
                [threshold],
                total_capacitance=times.total_capacitance[live],
            )[:, 0]
        return out

    def delay(
        self,
        drive_resistance: float,
        segment_resistance: float,
        segment_capacitance: float,
        load_capacitance: float,
        threshold: float,
        use_bounds: bool,
        driver_output_capacitance: float = 0.0,
    ) -> float:
        """Threshold delay of one stage (a batch of one)."""
        return float(
            self.delays_batch(
                [
                    (
                        drive_resistance,
                        segment_resistance,
                        segment_capacitance,
                        load_capacitance,
                        driver_output_capacitance,
                    )
                ],
                threshold,
                use_bounds,
            )[0]
        )


def _stage_params(
    repeater_count: int,
    driver: DriverModel,
    repeater: Repeater,
    line_resistance: float,
    line_capacitance: float,
    load_capacitance: float,
) -> List[_StageParams]:
    """Element values of every stage of one repeater plan, in stage order."""
    stages = repeater_count + 1
    segment_r = line_resistance / stages
    segment_c = line_capacitance / stages
    rows: List[_StageParams] = []
    for stage in range(stages):
        is_last = stage == stages - 1
        drive = driver.effective_resistance if stage == 0 else repeater.drive_resistance
        load = load_capacitance if is_last else repeater.input_capacitance
        self_loading = driver.output_capacitance if stage == 0 else 0.0
        rows.append((drive, segment_r, segment_c, load, self_loading))
    return rows


@dataclass(frozen=True)
class BufferingPlan:
    """One candidate repeater plan and its guaranteed delay."""

    repeater_count: int
    stage_delays: List[float]
    repeater: Optional[Repeater]
    threshold: float

    @property
    def total_delay(self) -> float:
        """Total source-to-sink delay (sum of stage delays plus repeater delays)."""
        intrinsic = self.repeater.intrinsic_delay if self.repeater else 0.0
        return sum(self.stage_delays) + self.repeater_count * intrinsic


def buffered_line_delay(
    repeater_count: int,
    driver: DriverModel,
    repeater: Repeater,
    line_resistance: float,
    line_capacitance: float,
    load_capacitance: float,
    *,
    threshold: float = 0.5,
    use_bounds: bool = True,
    _template: Optional[_StageTemplate] = None,
) -> BufferingPlan:
    """Evaluate one repeater plan: ``repeater_count`` repeaters, equal segments."""
    if repeater_count < 0:
        raise ValueError("repeater_count must be >= 0")
    require_positive("line_resistance", line_resistance)
    require_positive("line_capacitance", line_capacitance)
    require_non_negative("load_capacitance", load_capacitance)
    require_in_unit_interval("threshold", threshold, open_ends=True)

    template = _template or _StageTemplate()
    rows = _stage_params(
        repeater_count, driver, repeater,
        line_resistance, line_capacitance, load_capacitance,
    )
    delays = template.delays_batch(rows, threshold, use_bounds)
    return BufferingPlan(
        repeater_count=repeater_count,
        stage_delays=delays.tolist(),
        repeater=repeater,
        threshold=threshold,
    )


def optimal_buffer_count(
    driver: DriverModel,
    repeater: Repeater,
    line_resistance: float,
    line_capacitance: float,
    load_capacitance: float,
    *,
    threshold: float = 0.5,
    use_bounds: bool = True,
    max_repeaters: int = 64,
) -> BufferingPlan:
    """Sweep the repeater count and return the plan with the smallest delay.

    Every stage of every candidate count becomes one row of a single
    :meth:`~repro.flat.FlatTree.solve_batch` plane, so the whole sweep is one
    vectorized solve followed by per-plan sums -- no per-candidate loop,
    no trees allocated.
    """
    require_positive("line_resistance", line_resistance)
    require_positive("line_capacitance", line_capacitance)
    require_non_negative("load_capacitance", load_capacitance)
    require_in_unit_interval("threshold", threshold, open_ends=True)
    template = _StageTemplate()
    rows: List[_StageParams] = []
    spans: List[Tuple[int, int, int]] = []
    for count in range(0, max_repeaters + 1):
        plan_rows = _stage_params(
            count, driver, repeater,
            line_resistance, line_capacitance, load_capacitance,
        )
        spans.append((count, len(rows), len(rows) + len(plan_rows)))
        rows.extend(plan_rows)
    delays = template.delays_batch(rows, threshold, use_bounds)
    best: Optional[BufferingPlan] = None
    for count, start, stop in spans:
        plan = BufferingPlan(
            repeater_count=count,
            stage_delays=delays[start:stop].tolist(),
            repeater=repeater,
            threshold=threshold,
        )
        if best is None or plan.total_delay < best.total_delay:
            best = plan
    return best


@dataclass(frozen=True)
class BufferingComparison:
    """Unbuffered versus optimally buffered guaranteed delay."""

    unbuffered: BufferingPlan
    buffered: BufferingPlan

    @property
    def improvement(self) -> float:
        """Delay ratio unbuffered / buffered (> 1 means buffering helps)."""
        return self.unbuffered.total_delay / self.buffered.total_delay


def compare_buffering(
    driver: DriverModel,
    repeater: Repeater,
    line_resistance: float,
    line_capacitance: float,
    load_capacitance: float,
    *,
    threshold: float = 0.5,
    use_bounds: bool = True,
) -> BufferingComparison:
    """Compare the unbuffered line against the best repeater plan."""
    unbuffered = buffered_line_delay(
        0, driver, repeater, line_resistance, line_capacitance, load_capacitance,
        threshold=threshold, use_bounds=use_bounds,
    )
    buffered = optimal_buffer_count(
        driver, repeater, line_resistance, line_capacitance, load_capacitance,
        threshold=threshold, use_bounds=use_bounds,
    )
    return BufferingComparison(unbuffered=unbuffered, buffered=buffered)


# ----------------------------------------------------------------------
# Design-scope advice over a TimingGraph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetBufferingAdvice:
    """Repeater advice for one critical-path net of a design."""

    net: str
    #: The net arc's contribution to the critical path (seconds).
    wire_delay: float
    comparison: BufferingComparison

    @property
    def recommended_repeaters(self) -> int:
        """Best repeater count for the net (0 means leave it alone)."""
        return self.comparison.buffered.repeater_count

    @property
    def improvement(self) -> float:
        """Unbuffered / buffered guaranteed-delay ratio."""
        return self.comparison.improvement


def advise_critical_buffering(
    graph: "TimingGraph",
    repeater: Repeater,
    *,
    model=None,
    top: int = 3,
    threshold: float = 0.5,
) -> List[NetBufferingAdvice]:
    """Score repeater plans for the heaviest wire arcs on the critical path.

    Design-scope companion to :func:`optimal_buffer_count`: the critical path
    of a :class:`~repro.graph.TimingGraph` is traced, its largest net-arc
    contributions are taken, and each such net is modelled as a line (its
    total wire resistance and capacitance) driven by its actual driver into
    its aggregate pin load.  Nets with no wire resistance (lumped
    parasitics) cannot benefit from repeaters and are skipped.  Purely
    advisory -- buffer insertion changes the netlist topology, which is a
    re-compile, not an incremental edit.
    """
    from repro.sta.delaycalc import DelayModel

    model = model or DelayModel.UPPER_BOUND
    path = graph.critical_path(model)
    db = graph.db
    seen = set()
    arcs = []
    for segment in path:
        if not segment.arc.startswith("net "):
            continue
        net = segment.arc[4:]
        if net in seen:
            continue
        seen.add(net)
        arcs.append((segment.incremental_delay, net))
    arcs.sort(key=lambda pair: -pair[0])

    advice: List[NetBufferingAdvice] = []
    for wire_delay, net in arcs:
        if len(advice) >= top:
            break
        base = db.net_model(net).base
        if base is None:
            continue
        line_resistance = float(base._edge_r.sum())
        line_capacitance = float(base._edge_c.sum() + base._node_c.sum())
        if line_resistance <= 0.0 or line_capacitance <= 0.0:
            continue
        driver = DriverModel(
            name=f"driver({net})",
            effective_resistance=max(db.drive_resistance_of(net), 1e-6),
        )
        load = sum(db.sink_capacitances_of(net).values())
        advice.append(
            NetBufferingAdvice(
                net=net,
                wire_delay=wire_delay,
                comparison=compare_buffering(
                    driver,
                    repeater,
                    line_resistance,
                    line_capacitance,
                    load,
                    threshold=threshold,
                ),
            )
        )
    return advice
