"""Repeater (buffer) insertion along a long RC line.

The paper's Fig. 13 observation -- line delay grows quadratically with
length -- is the reason repeaters exist: splitting a line of total
resistance ``R_w`` and capacitance ``C_w`` into ``k + 1`` equal segments,
each driven by its own buffer, replaces one quadratic term by ``k + 1``
small ones, at the cost of the buffers' own delay and input load.

Each candidate plan is evaluated *stage by stage*: a stage is one driver
(the original driver or a repeater) plus one line segment ending in the next
repeater's input capacitance, and its delay is taken from the
Penfield-Rubinstein upper bound (or the Elmore delay, selectable).  Summing
per-stage threshold delays assumes each repeater regenerates a clean edge --
the standard repeater-insertion approximation.

Every stage of every candidate shares one topology (driver resistance, one
line segment, one load), so the sweep compiles a single
:class:`~repro.flat.FlatTree` *template* and evaluates each candidate by
incrementally updating its four element values -- no tree is ever rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.bounds import delay_bounds
from repro.core.tree import RCTree
from repro.flat import FlatTree
from repro.mos.drivers import DriverModel
from repro.utils.checks import require_in_unit_interval, require_non_negative, require_positive


@dataclass(frozen=True)
class Repeater:
    """A repeater cell: drive resistance, input capacitance, intrinsic delay."""

    name: str
    drive_resistance: float
    input_capacitance: float
    intrinsic_delay: float = 0.0

    def __post_init__(self):
        require_positive("drive_resistance", self.drive_resistance)
        require_non_negative("input_capacitance", self.input_capacitance)
        require_non_negative("intrinsic_delay", self.intrinsic_delay)

    def scaled(self, factor: float) -> "Repeater":
        """A drive-strength-scaled variant (R / factor, C_in * factor)."""
        require_positive("factor", factor)
        return Repeater(
            name=f"{self.name}_x{factor:g}",
            drive_resistance=self.drive_resistance / factor,
            input_capacitance=self.input_capacitance * factor,
            intrinsic_delay=self.intrinsic_delay,
        )


class _StageTemplate:
    """One compiled driver + segment + load stage, re-valued per candidate.

    The topology (``src -R-> drv -URC-> sink``) never changes across a
    repeater sweep; only the four element values do.  Compiling it once and
    using the flat engine's O(depth) incremental updates and single-output
    query makes each candidate evaluation a handful of scalar operations.
    """

    def __init__(self):
        tree = RCTree("src")
        tree.add_resistor("src", "drv", 1.0)
        tree.add_line("drv", "sink", 1.0, 1.0)
        self._flat = FlatTree.from_tree(tree)
        self._drv = self._flat.index("drv")
        self._sink = self._flat.index("sink")

    def delay(
        self,
        drive_resistance: float,
        segment_resistance: float,
        segment_capacitance: float,
        load_capacitance: float,
        threshold: float,
        use_bounds: bool,
        driver_output_capacitance: float = 0.0,
    ) -> float:
        """Threshold delay of one stage: driver R + one line segment + one load."""
        flat = self._flat
        flat.update_resistance(self._drv, drive_resistance)
        flat.update_capacitance(self._drv, driver_output_capacitance)
        flat.update_line(self._sink, segment_resistance, segment_capacitance)
        flat.update_capacitance(self._sink, load_capacitance)
        times = flat.characteristic_times(self._sink)
        if times.tde <= 0.0:
            return 0.0
        if use_bounds:
            return delay_bounds(times, threshold).upper
        return times.tde


def _stage_delay(
    drive_resistance: float,
    segment_resistance: float,
    segment_capacitance: float,
    load_capacitance: float,
    threshold: float,
    use_bounds: bool,
    driver_output_capacitance: float = 0.0,
) -> float:
    """One-shot stage delay (sweeps share a :class:`_StageTemplate` instead)."""
    return _StageTemplate().delay(
        drive_resistance,
        segment_resistance,
        segment_capacitance,
        load_capacitance,
        threshold,
        use_bounds,
        driver_output_capacitance,
    )


@dataclass(frozen=True)
class BufferingPlan:
    """One candidate repeater plan and its guaranteed delay."""

    repeater_count: int
    stage_delays: List[float]
    repeater: Optional[Repeater]
    threshold: float

    @property
    def total_delay(self) -> float:
        """Total source-to-sink delay (sum of stage delays plus repeater delays)."""
        intrinsic = self.repeater.intrinsic_delay if self.repeater else 0.0
        return sum(self.stage_delays) + self.repeater_count * intrinsic


def buffered_line_delay(
    repeater_count: int,
    driver: DriverModel,
    repeater: Repeater,
    line_resistance: float,
    line_capacitance: float,
    load_capacitance: float,
    *,
    threshold: float = 0.5,
    use_bounds: bool = True,
    _template: Optional[_StageTemplate] = None,
) -> BufferingPlan:
    """Evaluate one repeater plan: ``repeater_count`` repeaters, equal segments."""
    if repeater_count < 0:
        raise ValueError("repeater_count must be >= 0")
    require_positive("line_resistance", line_resistance)
    require_positive("line_capacitance", line_capacitance)
    require_non_negative("load_capacitance", load_capacitance)
    require_in_unit_interval("threshold", threshold, open_ends=True)

    stages = repeater_count + 1
    segment_r = line_resistance / stages
    segment_c = line_capacitance / stages
    template = _template or _StageTemplate()

    delays = []
    for stage in range(stages):
        is_last = stage == stages - 1
        drive = driver.effective_resistance if stage == 0 else repeater.drive_resistance
        load = load_capacitance if is_last else repeater.input_capacitance
        self_loading = driver.output_capacitance if stage == 0 else 0.0
        delays.append(
            template.delay(
                drive,
                segment_r,
                segment_c,
                load,
                threshold,
                use_bounds,
                driver_output_capacitance=self_loading,
            )
        )
    return BufferingPlan(
        repeater_count=repeater_count,
        stage_delays=delays,
        repeater=repeater,
        threshold=threshold,
    )


def optimal_buffer_count(
    driver: DriverModel,
    repeater: Repeater,
    line_resistance: float,
    line_capacitance: float,
    load_capacitance: float,
    *,
    threshold: float = 0.5,
    use_bounds: bool = True,
    max_repeaters: int = 64,
) -> BufferingPlan:
    """Sweep the repeater count and return the plan with the smallest delay.

    The delay is unimodal in the repeater count, so the sweep stops once two
    consecutive counts make things worse.  One compiled stage template is
    shared by every candidate, so the whole sweep allocates no trees.
    """
    best: Optional[BufferingPlan] = None
    worse_in_a_row = 0
    template = _StageTemplate()
    for count in range(0, max_repeaters + 1):
        plan = buffered_line_delay(
            count,
            driver,
            repeater,
            line_resistance,
            line_capacitance,
            load_capacitance,
            threshold=threshold,
            use_bounds=use_bounds,
            _template=template,
        )
        if best is None or plan.total_delay < best.total_delay:
            best = plan
            worse_in_a_row = 0
        else:
            worse_in_a_row += 1
            if worse_in_a_row >= 2:
                break
    return best


@dataclass(frozen=True)
class BufferingComparison:
    """Unbuffered versus optimally buffered guaranteed delay."""

    unbuffered: BufferingPlan
    buffered: BufferingPlan

    @property
    def improvement(self) -> float:
        """Delay ratio unbuffered / buffered (> 1 means buffering helps)."""
        return self.unbuffered.total_delay / self.buffered.total_delay


def compare_buffering(
    driver: DriverModel,
    repeater: Repeater,
    line_resistance: float,
    line_capacitance: float,
    load_capacitance: float,
    *,
    threshold: float = 0.5,
    use_bounds: bool = True,
) -> BufferingComparison:
    """Compare the unbuffered line against the best repeater plan."""
    unbuffered = buffered_line_delay(
        0, driver, repeater, line_resistance, line_capacitance, load_capacitance,
        threshold=threshold, use_bounds=use_bounds,
    )
    buffered = optimal_buffer_count(
        driver, repeater, line_resistance, line_capacitance, load_capacitance,
        threshold=threshold, use_bounds=use_bounds,
    )
    return BufferingComparison(unbuffered=unbuffered, buffered=buffered)


# ----------------------------------------------------------------------
# Design-scope advice over a TimingGraph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetBufferingAdvice:
    """Repeater advice for one critical-path net of a design."""

    net: str
    #: The net arc's contribution to the critical path (seconds).
    wire_delay: float
    comparison: BufferingComparison

    @property
    def recommended_repeaters(self) -> int:
        """Best repeater count for the net (0 means leave it alone)."""
        return self.comparison.buffered.repeater_count

    @property
    def improvement(self) -> float:
        """Unbuffered / buffered guaranteed-delay ratio."""
        return self.comparison.improvement


def advise_critical_buffering(
    graph: "TimingGraph",
    repeater: Repeater,
    *,
    model=None,
    top: int = 3,
    threshold: float = 0.5,
) -> List[NetBufferingAdvice]:
    """Score repeater plans for the heaviest wire arcs on the critical path.

    Design-scope companion to :func:`optimal_buffer_count`: the critical path
    of a :class:`~repro.graph.TimingGraph` is traced, its largest net-arc
    contributions are taken, and each such net is modelled as a line (its
    total wire resistance and capacitance) driven by its actual driver into
    its aggregate pin load.  Nets with no wire resistance (lumped
    parasitics) cannot benefit from repeaters and are skipped.  Purely
    advisory -- buffer insertion changes the netlist topology, which is a
    re-compile, not an incremental edit.
    """
    from repro.sta.delaycalc import DelayModel

    model = model or DelayModel.UPPER_BOUND
    path = graph.critical_path(model)
    db = graph.db
    seen = set()
    arcs = []
    for segment in path:
        if not segment.arc.startswith("net "):
            continue
        net = segment.arc[4:]
        if net in seen:
            continue
        seen.add(net)
        arcs.append((segment.incremental_delay, net))
    arcs.sort(key=lambda pair: -pair[0])

    advice: List[NetBufferingAdvice] = []
    for wire_delay, net in arcs:
        if len(advice) >= top:
            break
        base = db.net_model(net).base
        if base is None:
            continue
        line_resistance = float(base._edge_r.sum())
        line_capacitance = float(base._edge_c.sum() + base._node_c.sum())
        if line_resistance <= 0.0 or line_capacitance <= 0.0:
            continue
        driver = DriverModel(
            name=f"driver({net})",
            effective_resistance=max(db.drive_resistance_of(net), 1e-6),
        )
        load = sum(db.sink_capacitances_of(net).values())
        advice.append(
            NetBufferingAdvice(
                net=net,
                wire_delay=wire_delay,
                comparison=compare_buffering(
                    driver,
                    repeater,
                    line_resistance,
                    line_capacitance,
                    load,
                    threshold=threshold,
                ),
            )
        )
    return advice
