"""Scenario-batched characteristic-time sweeps.

The single-scenario engine evaluates the paper's two tree passes over
``(N,)`` element arrays, one vectorized gather/scatter per depth level.  The
kernel here runs the *same* recurrences over ``(N, S)`` matrices -- ``S``
scenarios side by side -- so a 64-corner sweep costs a handful of slightly
wider numpy calls instead of 64 re-runs of the whole pipeline.  The per-node
arithmetic (operations, association, child order) is kept identical to the
single-scenario sweeps, which is what lets the parity tests pin the batched
axis against a per-scenario loop of the reference engine at 1e-12 relative
tolerance.

Callers hand in *effective* element values per scenario -- derates and
overrides are applied by the layer that understands them
(:meth:`repro.flat.FlatTree.solve_scenarios` for bare trees,
:meth:`repro.graph.DesignDB.solve_scenarios` for whole designs,
:meth:`repro.graph.TimingGraph.whatif_resize_worst_slack` for
candidates-as-scenarios optimization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import AnalysisError

#: Scenario element planes accepted by the batch solvers and
#: :func:`as_node_matrix`: ``None`` (use the base array for every scenario),
#: a scalar, an ``(S,)`` per-scenario vector, or a full ``(S, N)`` matrix of
#: effective element values.
PlaneInput = Optional[Union[float, Sequence[float], np.ndarray]]

__all__ = [
    "ScenarioTimes",
    "ScenarioForestTimes",
    "sweep_scenarios",
    "as_node_matrix",
    "level_buckets",
]


def level_buckets(depth: np.ndarray) -> List[np.ndarray]:
    """Node indices grouped by depth, one array per level.

    The stable sort keeps preorder (== attachment) order within each level;
    every level-sweep consumer -- :class:`~repro.flat.flattree.FlatTree`,
    :class:`~repro.flat.forest.FlatForest` and the sharded workers of
    :mod:`repro.parallel.engine` -- builds its buckets through this one
    helper, which is what keeps their per-level scatter order (and thus
    bitwise results) identical.
    """
    order = np.argsort(depth, kind="stable")
    counts = np.bincount(depth)
    return list(np.split(order, np.cumsum(counts)[:-1]))


@dataclass(frozen=True)
class ScenarioTimes:
    """Characteristic times of every node under every scenario (one tree).

    ``tde``/``tre``/``ree`` have shape ``(S, N)``; ``tp`` and
    ``total_capacitance`` carry one entry per scenario.
    """

    tp: np.ndarray
    tde: np.ndarray
    tre: np.ndarray
    ree: np.ndarray
    total_capacitance: np.ndarray

    @property
    def scenario_count(self) -> int:
        """Number of scenarios ``S``."""
        return self.tde.shape[0]


@dataclass(frozen=True)
class ScenarioForestTimes:
    """Characteristic times of every node of every tree under every scenario.

    Node-indexed arrays have shape ``(S, N)`` over the forest's concatenated
    numbering; ``tp`` and ``total_capacitance`` have shape ``(S, trees)``.
    """

    tp: np.ndarray
    tde: np.ndarray
    tre: np.ndarray
    ree: np.ndarray
    total_capacitance: np.ndarray

    @property
    def scenario_count(self) -> int:
        """Number of scenarios ``S``."""
        return self.tde.shape[0]


def as_node_matrix(values: PlaneInput, base: np.ndarray, count: int) -> np.ndarray:
    """Normalize a scenario plane to a contiguous ``(N, S)`` matrix.

    ``values`` may be ``None`` (use the base array for every scenario), a
    ``(S,)`` vector of per-scenario values to broadcast over nodes, or a full
    ``(S, N)`` matrix of effective element values.
    """
    n = base.shape[0]
    if values is None:
        return np.ascontiguousarray(np.broadcast_to(base[:, np.newaxis], (n, count)))
    array = np.asarray(values, dtype=float)
    if array.ndim == 1:
        if array.shape[0] != count:
            raise AnalysisError(
                f"scenario vector has {array.shape[0]} entries, expected {count}"
            )
        return np.ascontiguousarray(np.broadcast_to(array[np.newaxis, :], (n, count)))
    if array.shape != (count, n):
        raise AnalysisError(
            f"scenario plane has shape {array.shape}, expected ({count}, {n})"
        )
    return np.ascontiguousarray(array.T)


def sweep_scenarios(
    levels: Sequence[np.ndarray],
    parent: np.ndarray,
    edge_r: np.ndarray,
    edge_c: np.ndarray,
    node_c: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The two characteristic-time passes over ``(N, S)`` element matrices.

    Returns ``(rkk, c_down, tde, tre)``, all ``(N, S)``.  The recurrences are
    the single-scenario sweeps verbatim; numpy broadcasting carries the
    trailing scenario axis through every gather/scatter.
    """
    rkk = edge_r.copy()
    for level in levels[1:]:
        rkk[level] += rkk[parent[level]]
    c_down = node_c.copy()
    for level in reversed(levels[1:]):
        np.add.at(c_down, parent[level], c_down[level] + edge_c[level])
    tde = np.zeros_like(rkk)
    tr_num = np.zeros_like(rkk)
    for level in levels[1:]:
        p = parent[level]
        r = edge_r[level]
        lc = edge_c[level]
        below = c_down[level]
        rk = rkk[level]
        rp = rkk[p]
        tde[level] = tde[p] + r * (below + lc / 2.0)
        tr_num[level] = tr_num[p] + (rk * rk - rp * rp) * below + (rp * r + r * r / 3.0) * lc
    tre = np.divide(tr_num, rkk, out=np.zeros_like(rkk), where=rkk > 0.0)
    return rkk, c_down, tde, tre
