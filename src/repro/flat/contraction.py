"""Pointer-jumping tree contraction: depth-independent characteristic times.

The level-bucketed sweeps of :mod:`repro.flat.scenarios` issue one numpy
call per depth level, so a 10k-node *chain* degenerates into 10k tiny calls
and the vectorization win evaporates (the "depth pathology" of
docs/performance.md).  This module reformulates both passes as parallel
tree contraction in the rake-and-compress / pointer-jumping family: every
quantity the paper's recurrences need is either a **root-path prefix sum**
or a **subtree sum**, and both are computable in ``ceil(log2(depth + 1))``
rounds of ``O(N)`` vectorized work regardless of topology.

The decomposition
-----------------

With ``R_kk`` the path resistance, ``c_down`` the downstream capacitance
and per-node weights derived from the element planes:

* ``R_kk[v] = sum of edge_r along root->v``  -- a root-path sum of
  ``edge_r`` (the root's own entry included, exactly as the level sweep's
  ``rkk = edge_r.copy()`` seeds it);
* ``c_down[v] = sum of node_c over subtree(v) + sum of edge_c over
  subtree(v) minus v itself`` -- a subtree sum of ``node_c`` plus a
  subtree sum of each child edge's ``edge_c`` scattered onto its parent;
* ``T_De[v] = sum over the root path of  edge_r * (c_down + edge_c/2)``;
* ``T_Rn[v] = sum over the root path of  (R_kk^2 - R_kk[parent]^2) * c_down
  + (R_kk[parent] * edge_r + edge_r^2/3) * edge_c``.

Root-path sums run as classic pointer jumping: each round every live node
adds its successor's partial sum and doubles its pointer.  Subtree sums
reuse the *same* jump schedule run in reverse with scatter-adds -- the two
passes are exact linear-algebra transposes of each other, so one schedule
(:func:`jump_schedule`, pure topology) serves every plane of every solve.

Contract with the level sweeps
------------------------------

:func:`sweep_scenarios_contract` accepts the same node-major ``(N, S)``
element planes as :func:`repro.flat.scenarios.sweep_scenarios` and returns
the same ``(rkk, c_down, tde, tre)`` tuple.  The arithmetic is the same
recurrences with a *balanced* summation order instead of a sequential one,
so results agree with the level sweeps to far better than the 1e-12
relative parity the cross-engine test matrix pins -- but not bitwise,
which is why ``engine="numpy"`` remains the reference path.

Nothing here recurses and nothing depends on preorder numbering: any
parent-index array (forest roots at ``-1``) is accepted, which is exactly
the contract of :class:`repro.parallel.ForestStructure`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = [
    "jump_schedule",
    "path_sums",
    "subtree_sums",
    "sweep_scenarios_contract",
    "last_round_count",
]

#: Rounds executed by the most recent :func:`sweep_scenarios_contract` call
#: (the jump-schedule length; each of the kernel's passes replays the same
#: schedule).  Observability hook for the O(log N) regression tests.
_LAST_ROUNDS: List[int] = [0]

#: One pointer-jumping round: ``(nodes, targets)`` -- the live node indices
#: and the node each one currently points at.
Round = Tuple[np.ndarray, np.ndarray]

#: Signature shared by :func:`path_sums` / :func:`subtree_sums` and their
#: compiled twins in :mod:`repro.flat.native`: weight plane + schedule in,
#: accumulated plane out.
SumFn = Callable[[np.ndarray, List[Round]], np.ndarray]


def jump_schedule(parent: np.ndarray) -> List[Round]:
    """The pointer-jumping rounds for a parent-index array (roots ``-1``).

    Round ``i`` holds ``(nodes, targets)``: the nodes whose pointer is still
    live and the node each pointer currently reaches (``parent`` on round 0,
    grandparents on round 1, ``2^i``-th ancestors on round ``i``).  The
    schedule is pure topology -- element planes never enter -- so one
    schedule is shared by the ``R_kk``, ``c_down`` and moment passes of a
    solve, and its length is ``ceil(log2(max_depth + 1))``: O(log N) rounds
    for any forest, 14 for a 10k-node chain where the level sweeps need
    10k.
    """
    nxt = np.asarray(parent, dtype=np.int64).copy()
    schedule: List[Round] = []
    while True:
        nodes = np.flatnonzero(nxt >= 0)
        if nodes.size == 0:
            return schedule
        targets = nxt[nodes]
        schedule.append((nodes, targets))
        nxt[nodes] = nxt[targets]


def path_sums(weights: np.ndarray, schedule: List[Round]) -> np.ndarray:
    """Inclusive root-path sums of per-node weights, in O(log depth) rounds.

    ``weights`` is ``(N,)`` or ``(N, S)``; the result has the same shape and
    holds, for every node, the sum of the weights of the node itself and all
    of its ancestors (each tree's root included).  Within one round the
    gather reads the *previous* round's values -- numpy evaluates the
    right-hand side before the fancy-indexed assignment -- which is what
    makes every round a synchronous doubling step.
    """
    totals = np.array(weights, dtype=float, copy=True)
    for nodes, targets in schedule:
        totals[nodes] += totals[targets]
    return totals


def subtree_sums(weights: np.ndarray, schedule: List[Round]) -> np.ndarray:
    """Per-node subtree sums of per-node weights, in O(log depth) rounds.

    The exact transpose of :func:`path_sums`: the same schedule is replayed
    in reverse with scatter-adds (``np.add.at`` accumulates duplicate
    targets), so the summation tree -- and therefore the rounding behaviour
    -- is the mirror image of the path-sum pass.  ``weights`` is ``(N,)`` or
    ``(N, S)``; the result includes each node's own weight.
    """
    totals = np.array(weights, dtype=float, copy=True)
    for nodes, targets in reversed(schedule):
        np.add.at(totals, targets, totals[nodes])
    return totals


def sweep_scenarios_contract(
    parent: np.ndarray,
    edge_r: np.ndarray,
    edge_c: np.ndarray,
    node_c: np.ndarray,
    schedule: Optional[List[Round]] = None,
    *,
    path_fn: Optional[SumFn] = None,
    subtree_fn: Optional[SumFn] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The two characteristic-time passes via pointer jumping.

    Drop-in contraction twin of
    :func:`repro.flat.scenarios.sweep_scenarios`: the same node-major
    ``(N, S)`` element planes in, the same ``(rkk, c_down, tde, tre)``
    tuple out, but O(log depth) contraction rounds instead of O(depth)
    level sweeps.  ``schedule`` may carry a precomputed
    :func:`jump_schedule` so chunked solves pay the topology pass once.
    ``path_fn`` / ``subtree_fn`` substitute the round executors -- this is
    how :mod:`repro.flat.native` runs the same decomposition with compiled
    gather/scatter rounds while the weight-plane algebra stays shared.
    """
    path_sum = path_sums if path_fn is None else path_fn
    subtree_sum = subtree_sums if subtree_fn is None else subtree_fn
    parent = np.asarray(parent, dtype=np.int64)
    if schedule is None:
        schedule = jump_schedule(parent)
    _LAST_ROUNDS[0] = len(schedule)
    roots = parent < 0
    non_root = np.flatnonzero(~roots)
    clamped = np.maximum(parent, 0)

    # Downstream capacitance: a subtree sum of the node capacitances plus
    # each child edge's distributed capacitance credited to its parent
    # (the level sweep adds c_down[child] + edge_c[child] onto the parent,
    # so a node's own edge_c is excluded from its c_down).
    down_w = node_c.copy()
    np.add.at(down_w, parent[non_root], edge_c[non_root])
    c_down = subtree_sum(down_w, schedule)

    # Path resistance, root rows seeded with their own edge_r exactly like
    # the level sweep's ``rkk = edge_r.copy()``.
    rkk = path_sum(edge_r, schedule)
    rkk_parent = rkk[clamped]
    rkk_parent[roots] = 0.0

    # Per-node contributions of the forward recurrences; the path sums of
    # these weights are T_De and the T_Rn numerator.  Root rows contribute
    # nothing -- the level sweep never updates them either.  Both weight
    # planes replay the same schedule, so they are stacked into one pass:
    # the per-column arithmetic is unchanged, only the index decoding is
    # shared.
    w_de = edge_r * (c_down + edge_c / 2.0)
    w_de[roots] = 0.0
    w_tr = (rkk * rkk - rkk_parent * rkk_parent) * c_down + (
        rkk_parent * edge_r + edge_r * edge_r / 3.0
    ) * edge_c
    w_tr[roots] = 0.0
    if w_de.ndim == 2:
        width = w_de.shape[1]
        fused = path_sum(np.concatenate([w_de, w_tr], axis=1), schedule)
        tde, tr_num = fused[:, :width], fused[:, width:]
    else:
        fused = path_sum(np.stack([w_de, w_tr], axis=-1), schedule)
        tde, tr_num = fused[..., 0], fused[..., 1]
    tre = np.divide(tr_num, rkk, out=np.zeros_like(rkk), where=rkk > 0.0)
    return rkk, c_down, tde, tre


def last_round_count() -> int:
    """Pointer-jumping rounds of the most recent contraction sweep.

    The regression suite asserts this stays O(log N) -- e.g. 14 rounds for
    a 10k-node chain -- so a future change that silently reintroduces a
    depth-proportional loop fails loudly.
    """
    return _LAST_ROUNDS[0]
