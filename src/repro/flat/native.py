"""JIT-compiled (Numba) twins of the characteristic-time kernels.

The numpy engines pay one interpreter dispatch per depth level
(:func:`repro.flat.scenarios.sweep_scenarios`) or per contraction round
(:func:`repro.flat.contraction.sweep_scenarios_contract`), plus a full
``(N, S)`` temporary per sub-expression.  This module compiles both kernel
families with Numba ``@njit(parallel=True, cache=True)`` so one fused pass
replaces the whole call sequence:

* :func:`sweep_scenarios_native` -- the two Penfield--Rubinstein passes
  (reverse ``c_down`` gather, forward ``T_De``/``T_Rn`` recurrences) as a
  single compiled sweep over the level order, ``prange``-parallel across
  scenario-column blocks.  The per-element expressions and the per-level
  accumulation order are kept identical to the numpy sweeps, so results
  match the reference far inside the engine contract's 1e-12.
* :func:`path_sums_native` / :func:`subtree_sums_native` -- the
  pointer-jumping gather/scatter rounds of :mod:`repro.flat.contraction`
  as compiled kernels replaying the same jump schedule (each round
  snapshots its sources first, exactly like the numpy fancy-indexing
  semantics), combined by :func:`sweep_scenarios_contract_native`.

Numba is **never a hard dependency**.  The import is probed once at module
import; :func:`native_status` reports ``"ok"``, ``"numba-missing"``,
``"disabled"`` (the ``REPRO_DISABLE_NATIVE=1`` escape hatch) or
``"jit-failed"``, and every consumer -- the ``"native"`` backend in
:mod:`repro.parallel.engine`, the auto-selection in
:mod:`repro.parallel.backends` -- degrades to the numpy kernels when
:func:`native_ready` is False, recording why in
:func:`repro.parallel.backends.last_selection`.

The kernels declare ``cache=True`` so the machine-code artifact persists on
disk: the compile cost is paid once per machine, and the forked shard
workers of the ``"process"`` machinery load the same cache instead of
recompiling (the parent additionally warms the kernels *before* any pool
fork).  Unless ``NUMBA_THREADING_LAYER`` is set explicitly, the threading
layer is pinned to ``"forksafe"`` -- the compiled sweeps run inside forked
worker processes, where the GNU OpenMP layer would deadlock.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import AnalysisError
from repro.flat.contraction import Round, jump_schedule, sweep_scenarios_contract

__all__ = [
    "NATIVE_DISABLE_ENV",
    "native_available",
    "native_ready",
    "native_status",
    "path_sums_native",
    "subtree_sums_native",
    "sweep_scenarios_native",
    "sweep_scenarios_contract_native",
]

#: Environment variable that, when set to a non-empty value other than
#: ``"0"``, disables the compiled kernels even when Numba is installed --
#: the knob CI's fallback job uses to prove the numpy path end to end.
NATIVE_DISABLE_ENV = "REPRO_DISABLE_NATIVE"

#: Scenario columns handled per ``prange`` work item.  Blocks keep the
#: innermost loops on contiguous memory (the planes are node-major C
#: arrays), and 8 doubles span one cache line.
_BLOCK = 8

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit, prange

    _PROBE = "ok"
except Exception:  # numba absent (or broken) -- the numpy engines carry on
    _PROBE = "numba-missing"

#: One-slot memo of the warm-compile outcome: ``None`` = not yet attempted,
#: then ``True``/``False``.  A JIT failure is remembered so every later
#: solve degrades instantly instead of re-raising inside the engine.
_JIT_OK: List[Optional[bool]] = [None]


if _PROBE == "ok":  # pragma: no cover - exercised only where numba is installed
    try:
        if "NUMBA_THREADING_LAYER" not in os.environ:
            # The kernels run inside forked pool workers; only the
            # fork-safe layers (tbb/workqueue) survive that.
            numba.config.THREADING_LAYER = "forksafe"

        @njit(parallel=True, cache=True)
        def _sweep_levels_kernel(
            order: np.ndarray,
            starts: np.ndarray,
            parent: np.ndarray,
            er: np.ndarray,
            ec: np.ndarray,
            nc: np.ndarray,
            rkk: np.ndarray,
            c_down: np.ndarray,
            tde: np.ndarray,
            tre: np.ndarray,
        ) -> None:
            """Both characteristic-time passes, fused, over the level order.

            ``order`` is the concatenated level buckets (a topological
            order: every parent precedes its children), ``starts`` the
            per-level offsets into it.  Scenario columns are independent,
            so the outer ``prange`` splits them into cache-line blocks;
            within one block the loops replay the numpy sweeps' exact
            per-level, bucket-order accumulation.
            """
            n = order.shape[0]
            s = er.shape[1]
            nlevels = starts.shape[0] - 1
            nblocks = (s + _BLOCK - 1) // _BLOCK
            for b in prange(nblocks):
                j0 = b * _BLOCK
                j1 = min(j0 + _BLOCK, s)
                # Reverse pass: downstream capacitance, deepest level
                # first, bucket order within a level (the np.add.at order).
                for k in range(n):
                    i = order[k]
                    for j in range(j0, j1):
                        c_down[i, j] = nc[i, j]
                for li in range(nlevels - 1, 0, -1):
                    for k in range(starts[li], starts[li + 1]):
                        i = order[k]
                        p = parent[i]
                        for j in range(j0, j1):
                            c_down[p, j] += c_down[i, j] + ec[i, j]
                # Forward pass: path resistance and both moment
                # recurrences; parents are always at earlier levels.
                for k in range(n):
                    i = order[k]
                    p = parent[i]
                    if p < 0:
                        for j in range(j0, j1):
                            rkk[i, j] = er[i, j]
                            tde[i, j] = 0.0
                            tre[i, j] = 0.0
                    else:
                        for j in range(j0, j1):
                            r = er[i, j]
                            lc = ec[i, j]
                            below = c_down[i, j]
                            rp = rkk[p, j]
                            rk = rp + r
                            rkk[i, j] = rk
                            tde[i, j] = tde[p, j] + r * (below + lc / 2.0)
                            tre[i, j] = (
                                tre[p, j]
                                + (rk * rk - rp * rp) * below
                                + (rp * r + r * r / 3.0) * lc
                            )
                # T_Rn = numerator / R_kk, zero where R_kk is not positive.
                for k in range(n):
                    i = order[k]
                    for j in range(j0, j1):
                        rk = rkk[i, j]
                        if rk > 0.0:
                            tre[i, j] = tre[i, j] / rk
                        else:
                            tre[i, j] = 0.0

        @njit(parallel=True, cache=True)
        def _path_round_kernel(
            idx: np.ndarray,
            tgt: np.ndarray,
            totals: np.ndarray,
            scratch: np.ndarray,
        ) -> None:
            """One pointer-jumping gather round: ``totals[idx] += totals[tgt]``.

            The sources are snapshotted first (numpy's fancy-indexed
            right-hand side is materialized before the assignment), so a
            node whose target is itself live reads the *previous* round's
            value -- the synchronous-doubling semantics.
            """
            m = idx.shape[0]
            s = totals.shape[1]
            for k in prange(m):
                t = tgt[k]
                for j in range(s):
                    scratch[k, j] = totals[t, j]
            for k in prange(m):
                i = idx[k]
                for j in range(s):
                    totals[i, j] += scratch[k, j]

        @njit(parallel=True, cache=True)
        def _subtree_round_kernel(
            idx: np.ndarray,
            tgt: np.ndarray,
            totals: np.ndarray,
            scratch: np.ndarray,
        ) -> None:
            """One reverse (scatter) round: ``np.add.at(totals, tgt, totals[idx])``.

            Sources are snapshotted like the gather round; the scatter
            itself runs sequentially over the round's entries within each
            ``prange`` column block, preserving ``np.add.at``'s in-order
            accumulation when several nodes share a target.
            """
            m = idx.shape[0]
            s = totals.shape[1]
            for k in prange(m):
                i = idx[k]
                for j in range(s):
                    scratch[k, j] = totals[i, j]
            nblocks = (s + _BLOCK - 1) // _BLOCK
            for b in prange(nblocks):
                j0 = b * _BLOCK
                j1 = min(j0 + _BLOCK, s)
                for k in range(m):
                    t = tgt[k]
                    for j in range(j0, j1):
                        totals[t, j] += scratch[k, j]

    except Exception:  # decoration failed: treat as a JIT failure
        _PROBE = "jit-failed"


def native_status() -> str:
    """Why the compiled kernels are (or are not) usable right now.

    ``"ok"`` means usable (possibly not yet warm-compiled);
    ``"disabled"`` that :data:`NATIVE_DISABLE_ENV` is set (checked on
    every call, so tests and CI flip it without reloading);
    ``"numba-missing"`` that the import probe failed; ``"jit-failed"``
    that decoration or the warm compile raised.  This string is what
    :func:`repro.parallel.backends.last_selection` records as the
    degradation reason.
    """
    flag = os.environ.get(NATIVE_DISABLE_ENV, "")
    if flag and flag != "0":
        return "disabled"
    if _PROBE != "ok":
        return _PROBE
    if _JIT_OK[0] is False:
        return "jit-failed"
    return "ok"


def native_available() -> bool:
    """Cheap probe: Numba importable and the kernels not disabled/broken.

    Does **not** trigger compilation -- callers that are about to run a
    kernel use :func:`native_ready`, which also pays (once) the warm
    compile.
    """
    return native_status() == "ok"


def native_ready() -> bool:
    """Probe plus one-time warm compilation of every kernel.

    The first call on a machine compiles the kernels on toy inputs
    (subsequent processes load the on-disk cache that ``cache=True``
    writes); any failure is remembered and reported as ``"jit-failed"``.
    The parallel engine calls this before *forking* shard workers, so the
    children inherit or cache-load the compiled code instead of racing to
    compile it.
    """
    if not native_available():
        return False
    if _JIT_OK[0] is None:
        _JIT_OK[0] = _warm()
    return bool(_JIT_OK[0]) and native_available()


def _warm() -> bool:
    """Compile-and-run every kernel on a 3-node chain; False on any raise."""
    try:
        parent = np.array([-1, 0, 1], dtype=np.int64)
        levels = [np.array([i], dtype=np.int64) for i in range(3)]
        plane = np.ones((3, 2), dtype=np.float64)
        _sweep_impl(levels, parent, plane, plane.copy(), plane.copy())
        _contract_impl(parent, plane, plane.copy(), plane.copy(), None)
        return True
    except Exception:
        return False


def _pack_levels(levels: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate level buckets into ``(order, starts)`` kernel inputs."""
    order = np.ascontiguousarray(np.concatenate(list(levels)), dtype=np.int64)
    starts = np.zeros(len(levels) + 1, dtype=np.int64)
    np.cumsum([bucket.shape[0] for bucket in levels], out=starts[1:])
    return order, starts


def _sweep_impl(
    levels: Sequence[np.ndarray],
    parent: np.ndarray,
    edge_r: np.ndarray,
    edge_c: np.ndarray,
    node_c: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Unchecked body of :func:`sweep_scenarios_native` (used by the warm-up)."""
    order, starts = _pack_levels(levels)
    parent = np.ascontiguousarray(parent, dtype=np.int64)
    n, s = edge_r.shape
    rkk = np.empty((n, s), dtype=np.float64)
    c_down = np.empty((n, s), dtype=np.float64)
    tde = np.empty((n, s), dtype=np.float64)
    tre = np.empty((n, s), dtype=np.float64)
    _sweep_levels_kernel(
        order, starts, parent, edge_r, edge_c, node_c, rkk, c_down, tde, tre
    )
    return rkk, c_down, tde, tre


def sweep_scenarios_native(
    levels: Sequence[np.ndarray],
    parent: np.ndarray,
    edge_r: np.ndarray,
    edge_c: np.ndarray,
    node_c: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compiled twin of :func:`repro.flat.scenarios.sweep_scenarios`.

    Same level buckets, same node-major ``(N, S)`` element planes, same
    ``(rkk, c_down, tde, tre)`` tuple out -- one fused compiled pass
    instead of O(depth) numpy calls and their temporaries.  The
    per-element arithmetic and the per-level accumulation order are the
    reference sweeps' own, so parity sits far inside the 1e-12 engine
    contract.  Raises :class:`~repro.core.exceptions.AnalysisError` when
    the kernels are unavailable (callers gate on :func:`native_ready`).
    """
    if not native_ready():
        raise AnalysisError(f"native kernels unavailable ({native_status()})")
    return _sweep_impl(levels, parent, edge_r, edge_c, node_c)


def _round_scratch(schedule: Sequence[Round], width: int) -> np.ndarray:
    """One scratch plane big enough for every round's source snapshot."""
    rows = max((nodes.shape[0] for nodes, _ in schedule), default=0)
    return np.empty((rows, width), dtype=np.float64)


def _as_plane(weights: np.ndarray) -> Tuple[np.ndarray, bool]:
    """View ``(N,)`` input as ``(N, 1)`` for the 2-D kernels."""
    totals = np.array(weights, dtype=np.float64, copy=True)
    if totals.ndim == 1:
        return totals.reshape(-1, 1), True
    return totals, False


def path_sums_native(
    weights: np.ndarray, schedule: List[Round]
) -> np.ndarray:
    """Compiled twin of :func:`repro.flat.contraction.path_sums`.

    Replays the same jump schedule with the same synchronous-doubling
    reads, one compiled gather round per schedule entry.
    """
    totals, squeeze = _as_plane(weights)
    scratch = _round_scratch(schedule, totals.shape[1])
    for nodes, targets in schedule:
        _path_round_kernel(nodes, targets, totals, scratch)
    return totals[:, 0] if squeeze else totals


def subtree_sums_native(
    weights: np.ndarray, schedule: List[Round]
) -> np.ndarray:
    """Compiled twin of :func:`repro.flat.contraction.subtree_sums`.

    The schedule is replayed in reverse with ordered scatter-adds, exactly
    mirroring the numpy ``np.add.at`` accumulation order.
    """
    totals, squeeze = _as_plane(weights)
    scratch = _round_scratch(schedule, totals.shape[1])
    for nodes, targets in reversed(schedule):
        _subtree_round_kernel(nodes, targets, totals, scratch)
    return totals[:, 0] if squeeze else totals


def _contract_impl(
    parent: np.ndarray,
    edge_r: np.ndarray,
    edge_c: np.ndarray,
    node_c: np.ndarray,
    schedule: Optional[List[Round]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Unchecked body of :func:`sweep_scenarios_contract_native`."""
    return sweep_scenarios_contract(
        parent,
        edge_r,
        edge_c,
        node_c,
        schedule=schedule,
        path_fn=path_sums_native,
        subtree_fn=subtree_sums_native,
    )


def sweep_scenarios_contract_native(
    parent: np.ndarray,
    edge_r: np.ndarray,
    edge_c: np.ndarray,
    node_c: np.ndarray,
    schedule: Optional[List[Round]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The contraction sweeps with compiled pointer-jumping rounds.

    Identical decomposition to
    :func:`repro.flat.contraction.sweep_scenarios_contract` -- the weight
    planes are still built by (cheap, elementwise) numpy -- but every
    O(N)-sized gather/scatter round runs as a compiled kernel.  Parity vs
    the numpy contraction path is exact-order; vs the level sweeps it
    inherits contraction's 1e-12 (balanced summation) contract.
    """
    if not native_ready():
        raise AnalysisError(f"native kernels unavailable ({native_status()})")
    return _contract_impl(parent, edge_r, edge_c, node_c, schedule)


def native_sweeps_for(
    parent: np.ndarray,
    levels: Sequence[np.ndarray],
    deep: bool,
) -> "_NativeSweep":
    """A reusable compiled two-pass kernel for one node range.

    ``deep`` selects the contraction rounds (the depth-robust choice the
    engine makes via :func:`repro.parallel.backends.should_contract`);
    otherwise the fused level sweep runs.  Topology products -- the packed
    level order or the jump schedule -- are computed once here and reused
    by every scenario chunk of the solve.
    """
    return _NativeSweep(parent, levels, deep)


class _NativeSweep:
    """Callable with the engine's substitute-kernel signature.

    Precomputes the topology products at construction so chunked solves
    (and the per-shard reuse inside the process machinery) pay them once.
    """

    def __init__(
        self, parent: np.ndarray, levels: Sequence[np.ndarray], deep: bool
    ) -> None:
        self._deep = deep
        self._schedule: Optional[List[Round]] = None
        self._levels = list(levels)
        if deep:
            self._schedule = jump_schedule(parent)

    def __call__(
        self,
        parent: np.ndarray,
        edge_r: np.ndarray,
        edge_c: np.ndarray,
        node_c: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Run the selected compiled kernel over one chunk's planes."""
        if self._deep:
            return sweep_scenarios_contract_native(
                parent, edge_r, edge_c, node_c, schedule=self._schedule
            )
        return sweep_scenarios_native(
            self._levels, parent, edge_r, edge_c, node_c
        )
