"""Vectorized Penfield-Rubinstein bounds over (sinks x thresholds) matrices.

:mod:`repro.core.bounds` evaluates eqs. (8)-(17) for *one* output's
characteristic times at a time (its time/threshold argument may be an array,
but the times are scalars).  The functions here take **arrays of
characteristic times** -- ``tde``/``tre`` with one entry per sink, ``tp``
a scalar or a per-sink array -- and broadcast them against an array of
thresholds (or sample times), producing the full ``(sinks, thresholds)``
bound matrix in a single numpy evaluation.  This is what lets a clock-skew
report or an STA run bound every endpoint at every threshold without a
Python-level loop.

The formulas, clamping and degenerate-case handling mirror
:mod:`repro.core.bounds` exactly (the batch unit tests pin elementwise
equality against the scalar implementation):

* a sink with ``T_De <= 0`` is resistively isolated from every capacitor and
  responds instantaneously -- voltage bounds 1, delay bounds 0;
* eq. (12) applies only for ``t >= T_P - T_Re``; eq. (17) only when
  ``v >= 1 - T_De / T_P`` (non-negative log term);
* thresholds must lie in ``[0, 1)`` and times must be non-negative, exactly
  as the paper's APL listings require.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.core.exceptions import AnalysisError, DegenerateNetworkError

__all__ = [
    "delay_lower_bound_batch",
    "delay_upper_bound_batch",
    "delay_bounds_batch",
    "voltage_lower_bound_batch",
    "voltage_upper_bound_batch",
    "voltage_bounds_batch",
]

ArrayLike = Union[float, np.ndarray]


def _as_column(values: ArrayLike, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim > 1:
        raise AnalysisError(f"{name} must be scalar or one-dimensional")
    return np.atleast_1d(array)[:, np.newaxis]


def _check_times(tp: np.ndarray, total_capacitance: ArrayLike) -> None:
    if np.any(np.asarray(total_capacitance) <= 0.0):
        raise DegenerateNetworkError(
            "the network has no capacitance; the step response is instantaneous "
            "and the bound formulas are undefined"
        )
    if np.any(tp <= 0.0):
        raise DegenerateNetworkError(
            "T_P is zero (no capacitance sees any resistance); the bound formulas are undefined"
        )


def _check_thresholds(thresholds: ArrayLike) -> np.ndarray:
    array = np.atleast_1d(np.asarray(thresholds, dtype=float))
    if np.any(~np.isfinite(array)):
        raise AnalysisError("voltage thresholds must be finite")
    if np.any(array < 0.0) or np.any(array >= 1.0):
        raise AnalysisError(
            "voltage thresholds must lie in [0, 1); the response only reaches 1 asymptotically"
        )
    return array[np.newaxis, :]


def _check_sample_times(times: ArrayLike) -> np.ndarray:
    array = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(~np.isfinite(array)):
        raise AnalysisError("times must be finite")
    if np.any(array < 0.0):
        raise AnalysisError("times must be non-negative (the step is applied at t = 0)")
    return array[np.newaxis, :]


def _prepare(
    tp: ArrayLike, tde: ArrayLike, tre: ArrayLike, total_capacitance: ArrayLike
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    tde_col = _as_column(tde, "tde")
    tre_col = _as_column(tre, "tre")
    tp_col = _as_column(tp, "tp")
    _check_times(tp_col, total_capacitance)
    tp_col, tde_col, tre_col = np.broadcast_arrays(
        tp_col, tde_col, tre_col, subok=False
    )
    live = tde_col > 0.0  # instantaneous sinks handled separately
    return tp_col, tde_col, tre_col, live


def _safe_log_term(
    tp: np.ndarray, tde: np.ndarray, threshold: np.ndarray, live: np.ndarray
) -> np.ndarray:
    """``ln(T_De / (T_P (1 - v)))`` with dead sinks masked to a harmless 1."""
    ratio = np.where(live, tde, tp) / (tp * (1.0 - threshold))
    return np.log(ratio)


# ----------------------------------------------------------------------
# Delay bounds, eqs. (13)-(17)
# ----------------------------------------------------------------------
def delay_lower_bound_batch(
    tp: ArrayLike,
    tde: ArrayLike,
    tre: ArrayLike,
    thresholds: ArrayLike,
    *,
    total_capacitance: ArrayLike = np.inf,
) -> np.ndarray:
    """Lower delay bound -- max of eqs. (13), (14), (15) -- shape (sinks, thresholds)."""
    tp, tde, tre, live = _prepare(tp, tde, tre, total_capacitance)
    v = _check_thresholds(thresholds)
    linear = tde - tp * (1.0 - v)  # eq. (14)
    logarithmic = tre * _safe_log_term(tp, tde, v, live)  # eq. (15)
    result = np.maximum.reduce([np.zeros(np.broadcast(linear, logarithmic).shape), linear, logarithmic])
    return np.where(live, result, 0.0)


def delay_upper_bound_batch(
    tp: ArrayLike,
    tde: ArrayLike,
    tre: ArrayLike,
    thresholds: ArrayLike,
    *,
    total_capacitance: ArrayLike = np.inf,
) -> np.ndarray:
    """Upper delay bound -- min of eqs. (16), (17) -- shape (sinks, thresholds)."""
    tp, tde, tre, live = _prepare(tp, tde, tre, total_capacitance)
    v = _check_thresholds(thresholds)
    hyperbolic = tde / (1.0 - v) - tre  # eq. (16)
    log_term = _safe_log_term(tp, tde, v, live)
    # eq. (17) applies only when v >= 1 - T_De/T_P, i.e. when log_term >= 0.
    exponential = tp - tre + tp * np.maximum(log_term, 0.0)
    result = np.minimum(hyperbolic, exponential)
    result = np.maximum(result, 0.0)
    return np.where(live, result, 0.0)


def delay_bounds_batch(
    tp: ArrayLike,
    tde: ArrayLike,
    tre: ArrayLike,
    thresholds: ArrayLike,
    *,
    total_capacitance: ArrayLike = np.inf,
) -> Tuple[np.ndarray, np.ndarray]:
    """Both delay bound matrices, ``(lower, upper)``, each (sinks, thresholds)."""
    lower = delay_lower_bound_batch(
        tp, tde, tre, thresholds, total_capacitance=total_capacitance
    )
    upper = delay_upper_bound_batch(
        tp, tde, tre, thresholds, total_capacitance=total_capacitance
    )
    return lower, upper


# ----------------------------------------------------------------------
# Voltage bounds, eqs. (8)-(12)
# ----------------------------------------------------------------------
def voltage_upper_bound_batch(
    tp: ArrayLike,
    tde: ArrayLike,
    tre: ArrayLike,
    sample_times: ArrayLike,
    *,
    total_capacitance: ArrayLike = np.inf,
) -> np.ndarray:
    """Upper voltage bound -- min of eqs. (8), (9) -- shape (sinks, times)."""
    tp, tde, tre, live = _prepare(tp, tde, tre, total_capacitance)
    t = _check_sample_times(sample_times)
    linear = 1.0 - (tde - t) / tp  # eq. (8)
    # eq. (9); T_Re = 0 only when the output sits at the input, where the
    # exponential degenerates to the exact instantaneous response for t > 0.
    with np.errstate(divide="ignore"):
        decay = np.exp(-t / np.where(tre > 0.0, tre, np.inf))
    exponential = np.where(
        tre > 0.0,
        1.0 - (tde / tp) * decay,
        np.where(t > 0.0, 1.0, 1.0 - tde / tp),
    )
    result = np.clip(np.minimum(linear, exponential), 0.0, 1.0)
    return np.where(live, result, 1.0)


def voltage_lower_bound_batch(
    tp: ArrayLike,
    tde: ArrayLike,
    tre: ArrayLike,
    sample_times: ArrayLike,
    *,
    total_capacitance: ArrayLike = np.inf,
) -> np.ndarray:
    """Lower voltage bound -- max of eqs. (10), (11), (12) -- shape (sinks, times)."""
    tp, tde, tre, live = _prepare(tp, tde, tre, total_capacitance)
    t = _check_sample_times(sample_times)
    # invalid covers the dead-sink 0/0 case, masked to 1.0 at the end.
    with np.errstate(divide="ignore", invalid="ignore"):
        hyperbolic = 1.0 - tde / (t + tre)  # eq. (11); eq. (10) via the clamp below
    threshold_time = tp - tre
    with np.errstate(over="ignore"):
        exponential = 1.0 - (tde / tp) * np.exp(-(t - threshold_time) / tp)  # eq. (12)
    exponential = np.where(t >= threshold_time, exponential, 0.0)
    shape = np.broadcast(hyperbolic, exponential).shape
    result = np.maximum.reduce([np.zeros(shape), hyperbolic, exponential])
    result = np.clip(result, 0.0, 1.0)
    return np.where(live, result, 1.0)


def voltage_bounds_batch(
    tp: ArrayLike,
    tde: ArrayLike,
    tre: ArrayLike,
    sample_times: ArrayLike,
    *,
    total_capacitance: ArrayLike = np.inf,
) -> Tuple[np.ndarray, np.ndarray]:
    """Both voltage bound matrices, ``(vmin, vmax)``, each (sinks, times)."""
    vmin = voltage_lower_bound_batch(
        tp, tde, tre, sample_times, total_capacitance=total_capacitance
    )
    vmax = voltage_upper_bound_batch(
        tp, tde, tre, sample_times, total_capacitance=total_capacitance
    )
    return vmin, vmax
