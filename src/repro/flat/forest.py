"""Batched analysis of many RC trees at once.

A :class:`FlatForest` concatenates the arrays of many :class:`~repro.flat.flattree.FlatTree`
instances into one set of vectors (each tree's nodes stay contiguous, each
root keeps parent ``-1``) and runs the two characteristic-time passes over
**all trees simultaneously**.  Because the per-depth sweeps operate on global
level buckets, the number of numpy calls is set by the *deepest* tree in the
batch rather than by the number of trees -- analysing 1000 shallow nets costs
barely more than analysing one.

This is the workhorse for sweep-style workloads: Monte-Carlo parasitic
sampling, net-topology comparisons (:func:`repro.apps.nets.compare_nets`),
and bulk scoring of generated trees
(:func:`repro.generators.random_trees.random_forest`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.timeconstants import CharacteristicTimes
from repro.core.tree import RCTree
from repro.flat.batchbounds import delay_bounds_batch, voltage_bounds_batch
from repro.flat.flattree import FlatTimes, FlatTree, _scenario_count
from repro.flat.scenarios import PlaneInput, ScenarioForestTimes, level_buckets

if TYPE_CHECKING:  # runtime import stays inside `structure` (layer order)
    from repro.parallel.engine import ForestStructure

__all__ = ["FlatForest", "ForestTimes"]


@dataclass(frozen=True)
class ForestTimes:
    """Characteristic times of every node of every tree in a forest.

    ``tde``/``tre``/``ree`` are global arrays over the concatenated node
    numbering; ``tp`` and ``total_capacitance`` carry one entry per tree.
    """

    tp: np.ndarray
    tde: np.ndarray
    tre: np.ndarray
    ree: np.ndarray
    total_capacitance: np.ndarray


class FlatForest:
    """A batch of flat trees analysed with shared vectorized passes."""

    def __init__(self, trees: Sequence[FlatTree]) -> None:
        if not trees:
            raise ValueError("a forest needs at least one tree")
        self._trees: List[FlatTree] = list(trees)
        sizes = np.asarray([len(t) for t in self._trees], dtype=np.int64)
        self._offsets = np.concatenate([[0], np.cumsum(sizes)])
        self._n = int(self._offsets[-1])
        self._tree_count = len(self._trees)

        parent = np.empty(self._n, dtype=np.int64)
        depth = np.empty(self._n, dtype=np.int64)
        self._edge_r = np.empty(self._n, dtype=np.float64)
        self._edge_c = np.empty(self._n, dtype=np.float64)
        self._node_c = np.empty(self._n, dtype=np.float64)
        self._is_output = np.empty(self._n, dtype=bool)
        self._tree_id = np.empty(self._n, dtype=np.int64)
        for t, tree in enumerate(self._trees):
            lo, hi = self._offsets[t], self._offsets[t + 1]
            shifted = tree._parent.copy()
            shifted[1:] += lo
            parent[lo:hi] = shifted
            depth[lo:hi] = tree._depth
            self._edge_r[lo:hi] = tree._edge_r
            self._edge_c[lo:hi] = tree._edge_c
            self._node_c[lo:hi] = tree._node_c
            self._is_output[lo:hi] = tree._is_output
            self._tree_id[lo:hi] = t
        self._parent = parent
        self._depth = depth
        self._rebucket()
        self._times: Optional[ForestTimes] = None

    def _rebucket(self) -> None:
        # Global level buckets: stable sort keeps per-tree preorder within a level.
        self._levels = level_buckets(self._depth)

    @classmethod
    def from_rctrees(cls, trees: Iterable[RCTree]) -> "FlatForest":
        """Compile a batch of :class:`~repro.core.tree.RCTree` instances."""
        return cls([FlatTree.from_tree(tree) for tree in trees])

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._tree_count

    @property
    def node_count(self) -> int:
        """Total number of nodes across the batch."""
        return self._n

    @property
    def trees(self) -> List[FlatTree]:
        """The member flat trees (views share no solve state with the forest)."""
        return list(self._trees)

    def tree_slice(self, tree_index: int) -> slice:
        """Global node-index range of one member tree."""
        return slice(int(self._offsets[tree_index]), int(self._offsets[tree_index + 1]))

    def global_index(self, tree_index: int, node: Union[str, int]) -> int:
        """Global node index of ``node`` within tree ``tree_index``."""
        tree = self._trees[tree_index]
        local = node if isinstance(node, int) else tree.index(node)
        return int(self._offsets[tree_index]) + local

    @property
    def output_indices(self) -> np.ndarray:
        """Global indices of every marked output across the batch."""
        return np.flatnonzero(self._is_output)

    def output_labels(self) -> List[Tuple[int, str]]:
        """``(tree_index, node_name)`` for every marked output, in global order."""
        labels = []
        for i in self.output_indices:
            t = int(self._tree_id[i])
            labels.append((t, self._trees[t].name_of(int(i - self._offsets[t]))))
        return labels

    # ------------------------------------------------------------------
    # Incremental membership
    # ------------------------------------------------------------------
    def replace_tree(self, tree_index: int, tree: FlatTree) -> None:
        """Swap one member tree for another (sizes may differ).

        The concatenated arrays are spliced in place of the old member, the
        level buckets are rebuilt and the solved times are invalidated -- the
        next :meth:`solve` is a full batched pass.  This is the ECO hook used
        by :class:`repro.graph.DesignDB`: one net's parasitics change, the
        shared forest stays coherent for batch consumers, and the *edited*
        net's fresh times come from its own small solve rather than from here.
        """
        if not 0 <= tree_index < self._tree_count:
            raise IndexError(f"tree index {tree_index} out of range")
        lo, hi = int(self._offsets[tree_index]), int(self._offsets[tree_index + 1])
        delta = len(tree) - (hi - lo)

        def splice(old: np.ndarray, new: np.ndarray) -> np.ndarray:
            return np.concatenate([old[:lo], new, old[hi:]])

        shifted = tree._parent.copy()
        shifted[1:] += lo
        tail = self._parent[hi:].copy()
        # Roots keep -1; every other tail index shifts with the size change.
        tail[tail >= 0] += delta
        self._parent = np.concatenate([self._parent[:lo], shifted, tail])
        self._depth = splice(self._depth, tree._depth)
        self._edge_r = splice(self._edge_r, tree._edge_r)
        self._edge_c = splice(self._edge_c, tree._edge_c)
        self._node_c = splice(self._node_c, tree._node_c)
        self._is_output = splice(self._is_output, tree._is_output)
        self._tree_id = splice(
            self._tree_id, np.full(len(tree), tree_index, dtype=np.int64)
        )
        self._offsets[tree_index + 1 :] += delta
        self._n += delta
        self._trees[tree_index] = tree
        self._rebucket()
        self._times = None

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def solve(self) -> ForestTimes:
        """Characteristic times of every node of every tree, batched."""
        if self._times is None:
            n = self._n
            parent = self._parent
            edge_r = self._edge_r
            edge_c = self._edge_c
            node_c = self._node_c
            # Aggregates (same sweeps as FlatTree, over global levels).
            rkk = edge_r.copy()
            for level in self._levels[1:]:
                rkk[level] += rkk[parent[level]]
            c_down = node_c.copy()
            for level in reversed(self._levels[1:]):
                np.add.at(c_down, parent[level], c_down[level] + edge_c[level])
            # Moments.
            tde = np.zeros(n, dtype=np.float64)
            tr_num = np.zeros(n, dtype=np.float64)
            for level in self._levels[1:]:
                p = parent[level]
                r = edge_r[level]
                lc = edge_c[level]
                below = c_down[level]
                rk = rkk[level]
                rp = rkk[p]
                tde[level] = tde[p] + r * (below + lc / 2.0)
                tr_num[level] = tr_num[p] + (rk * rk - rp * rp) * below + (rp * r + r * r / 3.0) * lc
            tre = np.divide(
                tr_num, rkk, out=np.zeros(n, dtype=np.float64), where=rkk > 0.0
            )
            # Per-tree T_P and total capacitance via segmented sums.
            rkk_parent = rkk[np.maximum(parent, 0)]
            tp_terms = rkk * node_c + (rkk_parent + edge_r / 2.0) * edge_c
            bins = self._tree_id
            tp = np.bincount(bins, weights=tp_terms, minlength=self._tree_count)
            total = np.bincount(
                bins, weights=node_c + edge_c, minlength=self._tree_count
            )
            self._times = ForestTimes(
                tp=tp, tde=tde, tre=tre, ree=rkk, total_capacitance=total
            )
        return self._times

    @property
    def structure(self) -> "ForestStructure":
        """The forest's topology bundle for :mod:`repro.parallel` engines.

        Built fresh on every access from the *current* arrays (and the
        cached level buckets), so incremental splices
        (:meth:`replace_tree`) are always reflected -- the parallel layer
        caches nothing about a forest.
        """
        from repro.parallel import ForestStructure

        return ForestStructure(
            parent=self._parent,
            depth=self._depth,
            offsets=self._offsets,
            levels=self._levels,
        )

    def solve_batch(
        self,
        edge_r: PlaneInput = None,
        edge_c: PlaneInput = None,
        node_c: PlaneInput = None,
        *,
        count: Optional[int] = None,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
        scenario_chunk: Optional[int] = None,
    ) -> ScenarioForestTimes:
        """Characteristic times of every tree under ``S`` parameterizations.

        Planes follow :meth:`repro.flat.FlatTree.solve_batch`: ``None`` (base
        values), ``(S,)`` per-scenario broadcasts, or ``(S, N)`` effective
        element matrices over the forest's concatenated node numbering.  One
        set of global level sweeps serves every scenario of every tree; the
        per-tree ``T_P`` and total-capacitance reductions become segmented
        sums over the member offsets.  The single-scenario solve cache is
        neither read nor invalidated.

        ``engine`` selects a :mod:`repro.parallel` backend by name
        (``"numpy"`` serial, ``"process"`` sharded workers, ``"contract"``
        pointer jumping, ``"native"`` Numba JIT-compiled kernels -- serial
        or per shard, degrading to ``"numpy"`` without Numba; ``None``
        auto-selects by sweep size and depth pathology), ``jobs`` caps the
        worker count, and ``scenario_chunk`` overrides the bounded-memory
        chunk width.  Every backend returns numerically identical results
        (to 1e-12 for ``"contract"`` and ``"native"``).
        """
        from repro.parallel import solve_forest_batch

        s = _scenario_count(count, edge_r, edge_c, node_c)
        return solve_forest_batch(
            self.structure,
            (self._edge_r, self._edge_c, self._node_c),
            (edge_r, edge_c, node_c),
            s,
            engine=engine,
            jobs=jobs,
            scenario_chunk=scenario_chunk,
        )

    def times_for(self, tree_index: int) -> FlatTimes:
        """The :class:`~repro.flat.flattree.FlatTimes` view of one member tree."""
        times = self.solve()
        window = self.tree_slice(tree_index)
        return FlatTimes(
            tp=float(times.tp[tree_index]),
            tde=times.tde[window],
            tre=times.tre[window],
            ree=times.ree[window],
            total_capacitance=float(times.total_capacitance[tree_index]),
        )

    def characteristic_times(
        self, tree_index: int, output: Union[str, int]
    ) -> CharacteristicTimes:
        """The scalar record for one output of one member tree."""
        times = self.solve()
        i = self.global_index(tree_index, output)
        tree = self._trees[tree_index]
        local = i - int(self._offsets[tree_index])
        return CharacteristicTimes(
            output=tree.name_of(local),
            tp=float(times.tp[tree_index]),
            tde=float(times.tde[i]),
            tre=float(times.tre[i]),
            ree=float(times.ree[i]),
            total_capacitance=float(times.total_capacitance[tree_index]),
        )

    # ------------------------------------------------------------------
    # Batched bounds over every output of every tree
    # ------------------------------------------------------------------
    def delay_bounds_batch(
        self,
        thresholds: Union[Sequence[float], np.ndarray],
        indices: Optional[np.ndarray] = None,
    ) -> Tuple[List[Tuple[int, str]], np.ndarray, np.ndarray]:
        """Delay bound matrices for all marked outputs of all trees at once.

        Returns ``(labels, lower, upper)`` where ``labels`` is the
        ``(tree_index, node_name)`` list and the arrays have shape
        ``(len(labels), len(thresholds))``.
        """
        times = self.solve()
        if indices is None:
            indices = self.output_indices
        labels = [
            (int(self._tree_id[i]), self._name_at(int(i))) for i in indices
        ]
        lower, upper = delay_bounds_batch(
            times.tp[self._tree_id[indices]],
            times.tde[indices],
            times.tre[indices],
            thresholds,
            # Per queried sink's own tree: a degenerate tree elsewhere in the
            # batch must not poison queries of healthy trees.
            total_capacitance=times.total_capacitance[self._tree_id[indices]],
        )
        return labels, lower, upper

    def voltage_bounds_batch(
        self,
        sample_times: Union[Sequence[float], np.ndarray],
        indices: Optional[np.ndarray] = None,
    ) -> Tuple[List[Tuple[int, str]], np.ndarray, np.ndarray]:
        """Voltage bound matrices for all marked outputs of all trees at once."""
        times = self.solve()
        if indices is None:
            indices = self.output_indices
        labels = [
            (int(self._tree_id[i]), self._name_at(int(i))) for i in indices
        ]
        vmin, vmax = voltage_bounds_batch(
            times.tp[self._tree_id[indices]],
            times.tde[indices],
            times.tre[indices],
            sample_times,
            total_capacitance=times.total_capacitance[self._tree_id[indices]],
        )
        return labels, vmin, vmax

    def _name_at(self, global_index: int) -> str:
        t = int(self._tree_id[global_index])
        return self._trees[t].name_of(global_index - int(self._offsets[t]))

    def elmore_delays(self) -> Dict[Tuple[int, str], float]:
        """Elmore delay of every marked output, keyed by ``(tree_index, name)``."""
        times = self.solve()
        return {
            (int(self._tree_id[i]), self._name_at(int(i))): float(times.tde[i])
            for i in self.output_indices
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"FlatForest(trees={self._tree_count}, nodes={self._n})"
