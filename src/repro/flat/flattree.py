"""The array-backed flat-tree analysis engine.

:class:`FlatTree` compiles an :class:`~repro.core.tree.RCTree` into a handful
of numpy arrays indexed by *preorder position* (the root is index 0 and every
parent precedes its children):

* ``parent``        -- parent index per node (``-1`` for the root);
* ``edge_r``/``edge_c`` -- resistance / distributed capacitance of the edge
  *into* each node (zero for the root);
* ``node_c``        -- lumped grounded capacitance per node;
* ``extent``        -- one past the last preorder index of each node's
  subtree, so ``subtree(i) == range(i, extent[i])`` is contiguous;
* ``levels``        -- node indices grouped by depth, which is what turns the
  paper's two tree traversals into a short sequence of vectorized sweeps.

The characteristic times of *every* node are then computed by exactly the two
passes of :func:`repro.core.timeconstants.characteristic_times_all` -- a
reverse (deep-to-shallow) accumulation of downstream capacitance and a
forward (shallow-to-deep) accumulation of the path recurrences for ``T_De``
and ``T_Re R_ee``, including the closed-form distributed-URC line
contributions -- but each level is processed as one numpy gather/scatter
instead of a Python loop over dict-keyed nodes.  The arithmetic per node is
kept *identical* to the dict-based reference (same operations, same
association, same child order), so the two engines agree to the last ulp on
the per-output recurrences and to rounding order on the global sums; the
parity property tests pin this at a relative tolerance of 1e-12.

Incremental updates
-------------------
``update_capacitance`` / ``update_resistance`` / ``update_line`` edit element
values *in place* without recompiling.  Two aggregate caches are maintained
eagerly because their dirty regions are small and cheap to recompute
*exactly* (delta-patching would accumulate cancellation error; recomputation
keeps the caches bit-identical to a fresh compile, which the parity property
tests rely on):

* ``c_down`` (downstream capacitance) changes only along the root path of an
  edited node -- each ancestor is rebuilt from its children;
* ``rkk`` (input-to-node path resistance) changes only inside the edited
  edge's subtree -- a contiguous index range thanks to ``extent``, re-swept
  with the compile-time recurrence.

The moment arrays (``T_P``, ``T_De``, ``T_Re R_ee``) are invalidated and
recomputed lazily: a full :meth:`solve` re-runs the vectorized sweeps, while
:meth:`characteristic_times` of a *single* output recomputes just that
output's path recurrence from the cached aggregates in O(depth), which is
what lets the optimization loops (:mod:`repro.opt.sizing`,
:mod:`repro.opt.buffering`) evaluate thousands of candidates without ever
rebuilding a tree.

Complexity: compilation is one O(N) walk; a solve is O(N) work spread over
O(depth) numpy calls.  Bushy trees (clock trees, signal nets, the random
trees used in the benchmarks) have depth << N and run at numpy speed; a
pathological 10k-node *chain* degenerates to 10k tiny numpy calls and gains
much less -- see ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.elements import Resistor
from repro.core.exceptions import (
    ElementValueError,
    TopologyError,
    UnknownNodeError,
)
from repro.core.timeconstants import CharacteristicTimes
from repro.core.tree import RCTree
from repro.flat.batchbounds import delay_bounds_batch, voltage_bounds_batch
from repro.flat.scenarios import (
    PlaneInput,
    ScenarioTimes,
    as_node_matrix,
    level_buckets,
    sweep_scenarios,
)

__all__ = ["FlatTree", "FlatTimes"]


def _scenario_count(count: Optional[int], *planes: PlaneInput) -> int:
    """Infer the scenario count from the first non-``None`` plane."""
    if count is not None:
        return int(count)
    for plane in planes:
        if plane is not None:
            array = np.asarray(plane)
            return int(array.shape[0]) if array.ndim else 1
    return 1


@dataclass(frozen=True)
class FlatTimes:
    """Characteristic times of every node of a :class:`FlatTree`, as arrays.

    All arrays are indexed by preorder position (see ``FlatTree.index``).

    Attributes
    ----------
    tp:
        ``T_P`` (seconds) -- eq. (5); a scalar, shared by every output.
    tde:
        ``T_De`` (seconds) per node -- eq. (1), the Elmore delays.
    tre:
        ``T_Re`` (seconds) per node -- eq. (6).
    ree:
        ``R_ee`` (ohms) per node -- input-to-node path resistance.
    total_capacitance:
        ``C_T`` (farads) -- total capacitance of the network.
    """

    tp: float
    tde: np.ndarray
    tre: np.ndarray
    ree: np.ndarray
    total_capacitance: float

    @property
    def tr_num(self) -> np.ndarray:
        """The product ``T_Re * R_ee`` carried by the paper's APL programs."""
        return self.tre * self.ree


def _require_value(name: str, value: float) -> float:
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ElementValueError(f"{name} must be finite and non-negative, got {value!r}")
    return value


class FlatTree:
    """An RC tree compiled to parent-index vectors for vectorized analysis.

    Build one with :meth:`from_tree` (from an :class:`~repro.core.tree.RCTree`)
    or :meth:`from_arrays` (directly from parent/element arrays, bypassing the
    dict-based builder entirely -- the fast path for synthetic workloads).
    """

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def __init__(
        self,
        names: Sequence[str],
        parent: np.ndarray,
        edge_r: np.ndarray,
        edge_c: np.ndarray,
        node_c: np.ndarray,
        is_output: np.ndarray,
        _depth: Optional[Sequence[int]] = None,
        _trusted: bool = False,
    ) -> None:
        self._names: List[str] = list(names)
        self._index_cache: Optional[Dict[str, int]] = None
        self._extent_cache: Optional[np.ndarray] = None
        self._children_cache: Optional[List[List[int]]] = None
        if _trusted:
            # Private fast path for arrays that are valid by construction
            # (batch compilers): skip the conversion and validation passes.
            self._parent = parent
            self._edge_r = edge_r
            self._edge_c = edge_c
            self._node_c = node_c
            self._is_output = is_output
        else:
            self._parent = np.ascontiguousarray(parent, dtype=np.int64)
            self._edge_r = np.ascontiguousarray(edge_r, dtype=np.float64)
            self._edge_c = np.ascontiguousarray(edge_c, dtype=np.float64)
            self._node_c = np.ascontiguousarray(node_c, dtype=np.float64)
            self._is_output = np.ascontiguousarray(is_output, dtype=bool)
        self._n = len(self._names)
        if not _trusted:
            self._validate_topology()
        # Structure (depth, level buckets) and the aggregate caches are built
        # lazily: a tree that is only ever *batched* into a FlatForest never
        # pays for its own per-tree level buckets or aggregate sweeps -- the
        # forest runs its own global ones.
        self._depth_cache: Optional[np.ndarray] = (
            None if _depth is None else np.asarray(_depth, dtype=np.int64)
        )
        self._levels_cache: Optional[List[np.ndarray]] = None
        self._parent_list_cache: Optional[List[int]] = None
        self._rkk_cache: Optional[np.ndarray] = None
        self._c_down_cache: Optional[np.ndarray] = None
        # Lazily computed moment state.
        self._times: Optional[FlatTimes] = None

    def _validate_topology(self) -> None:
        n = self._n
        if n == 0:
            raise TopologyError("a flat tree needs at least the input node")
        for array in (self._edge_r, self._edge_c, self._node_c):
            if array.shape != (n,):
                raise TopologyError("element arrays must have one entry per node")
            if not np.all(np.isfinite(array)) or np.any(array < 0.0):
                raise ElementValueError("element values must be finite and non-negative")
        if self._parent.shape != (n,):
            raise TopologyError("parent array must have one entry per node")
        if self._parent[0] != -1:
            raise TopologyError("node 0 must be the input (parent -1)")
        if n > 1:
            rest = self._parent[1:]
            if np.any(rest < 0) or np.any(rest >= np.arange(1, n)):
                raise TopologyError(
                    "nodes must be in topological order: parent[i] in [0, i) for i > 0"
                )

    @property
    def _parent_list(self) -> List[int]:
        """Parent indices as a Python list (fast scalar walks), lazy."""
        if self._parent_list_cache is None:
            self._parent_list_cache = self._parent.tolist()
        return self._parent_list_cache

    @property
    def _depth(self) -> np.ndarray:
        """Depth per node, computed on first use when not supplied."""
        if self._depth_cache is None:
            # parent[i] < i, so one forward pass fixes every depth.
            n = self._n
            parent_list = self._parent_list
            depth_list = [0] * n
            for i in range(1, n):
                depth_list[i] = depth_list[parent_list[i]] + 1
            self._depth_cache = np.asarray(depth_list, dtype=np.int64)
        return self._depth_cache

    @property
    def _levels(self) -> List[np.ndarray]:
        """Node indices bucketed by depth, lazy.

        Stable sort by depth keeps preorder (== attachment) order per level.
        """
        if self._levels_cache is None:
            self._levels_cache = level_buckets(self._depth)
        return self._levels_cache

    @property
    def _index(self) -> Dict[str, int]:
        """Name -> preorder index map, built on first name-based access."""
        if self._index_cache is None:
            self._index_cache = {name: i for i, name in enumerate(self._names)}
            if len(self._index_cache) != self._n:
                raise TopologyError("duplicate node names in flat tree")
        return self._index_cache

    @property
    def _extent(self) -> np.ndarray:
        """Subtree extents (one past the subtree's last preorder index), lazy."""
        if self._extent_cache is None:
            n = self._n
            parent_list = self._parent_list
            sizes = [1] * n
            for i in range(n - 1, 0, -1):
                sizes[parent_list[i]] += sizes[i]
            self._extent_cache = np.arange(n, dtype=np.int64) + np.asarray(
                sizes, dtype=np.int64
            )
        return self._extent_cache

    def _build_aggregates(self) -> None:
        """Cached aggregates: path resistance and downstream capacitance."""
        rkk = self._edge_r.copy()  # root entry is 0
        for level in self._levels[1:]:
            rkk[level] += rkk[self._parent[level]]
        self._rkk_cache = rkk
        c_down = self._node_c.copy()
        for level in reversed(self._levels[1:]):
            np.add.at(c_down, self._parent[level], c_down[level] + self._edge_c[level])
        self._c_down_cache = c_down

    @property
    def _rkk(self) -> np.ndarray:
        """Input-to-node path resistance per node, built on first use."""
        if self._rkk_cache is None:
            self._build_aggregates()
        return self._rkk_cache

    @property
    def _c_down(self) -> np.ndarray:
        """Downstream capacitance per node, built on first use."""
        if self._c_down_cache is None:
            self._build_aggregates()
        return self._c_down_cache

    @classmethod
    def from_tree(cls, tree: RCTree) -> "FlatTree":
        """Compile an :class:`~repro.core.tree.RCTree` (one O(N) walk).

        Raises :class:`~repro.core.exceptions.TopologyError` when the tree has
        free-standing nodes that are not connected to the input.
        """
        n = len(tree)
        names: List[str] = []
        parent: List[int] = []
        edge_r: List[float] = []
        edge_c: List[float] = []
        node_c: List[float] = []
        is_output: List[bool] = []
        depth: List[int] = []
        # Same iterative preorder as RCTree.preorder(), inlined over the
        # internal dicts (and raw element fields) so compilation stays one
        # cheap pass even on 100k-node trees.
        children = tree._children
        parents = tree._parent
        nodes = tree._nodes
        resistor = Resistor
        append_name = names.append
        append_parent = parent.append
        append_r = edge_r.append
        append_c = edge_c.append
        append_nc = node_c.append
        append_out = is_output.append
        append_depth = depth.append
        stack = [(tree.root, -1, 0)]
        push = stack.append
        while stack:
            name, parent_index, level = stack.pop()
            index = len(names)
            node = nodes[name]
            edge = parents.get(name)
            append_name(name)
            append_parent(parent_index)
            append_depth(level)
            if edge is None:
                append_r(0.0)
                append_c(0.0)
            else:
                element = edge.element
                append_r(element.resistance)
                append_c(0.0 if element.__class__ is resistor else element.capacitance)
            append_nc(node.capacitance)
            append_out(node.is_output)
            level += 1
            for child in reversed(children[name]):
                push((child, index, level))
        if len(names) != n:
            reached = set(names)
            missing = [name for name in tree.nodes if name not in reached]
            raise TopologyError(
                f"nodes {missing!r} are not connected to the input {tree.root!r}"
            )
        # The walk emits valid preorder arrays (and RCTree validated element
        # values on construction), so the array re-validation is skipped.
        return cls(
            names,
            np.asarray(parent, dtype=np.int64),
            np.asarray(edge_r, dtype=np.float64),
            np.asarray(edge_c, dtype=np.float64),
            np.asarray(node_c, dtype=np.float64),
            np.asarray(is_output, dtype=bool),
            _depth=depth,
            _trusted=True,
        )

    @classmethod
    def from_arrays(
        cls,
        parent: Sequence[int],
        edge_r: Sequence[float],
        edge_c: Sequence[float],
        node_c: Sequence[float],
        *,
        names: Optional[Sequence[str]] = None,
        outputs: Optional[Sequence[int]] = None,
    ) -> "FlatTree":
        """Build a flat tree directly from arrays (no ``RCTree`` required).

        ``parent[i]`` must be in ``[0, i)`` for every non-root node and ``-1``
        for node 0 -- any topological order is accepted and is relabelled
        into depth-first preorder internally (the engine relies on every
        subtree occupying a contiguous index range).  ``names`` defaults to
        ``in, n1, n2, ...``; ``outputs`` is a sequence of node indices
        (in the *input* numbering) to mark, defaulting to every leaf.
        """
        parent = np.asarray(parent, dtype=np.int64)
        n = len(parent)
        if n == 0:
            raise TopologyError("a flat tree needs at least the input node")
        if parent[0] != -1 or (
            n > 1 and (np.any(parent[1:] < 0) or np.any(parent[1:] >= np.arange(1, n)))
        ):
            raise TopologyError(
                "nodes must be in topological order: parent[0] == -1 and parent[i] in [0, i)"
            )
        if names is None:
            names = ["in"] + [f"n{i}" for i in range(1, n)]
        # Relabel into preorder so subtrees are contiguous index ranges.
        parent_list = parent.tolist()
        children: List[List[int]] = [[] for _ in range(n)]
        for i in range(1, n):
            children[parent_list[i]].append(i)
        perm: List[int] = []
        stack = [0]
        while stack:
            i = stack.pop()
            perm.append(i)
            stack.extend(reversed(children[i]))
        inverse = [0] * n
        for new, old in enumerate(perm):
            inverse[old] = new
        identity = perm == list(range(n))
        if not identity:
            order = np.asarray(perm, dtype=np.int64)
            names = [names[old] for old in perm]
            new_parent = np.asarray(
                [-1] + [inverse[parent_list[old]] for old in perm[1:]], dtype=np.int64
            )
        else:
            order = None
            new_parent = parent
        is_output = np.zeros(n, dtype=bool)
        if outputs is None:
            leaves = np.ones(n, dtype=bool)
            leaves[new_parent[new_parent >= 0]] = False
            is_output = leaves
        else:
            marked = np.asarray([inverse[i] for i in outputs], dtype=np.int64)
            is_output[marked] = True
        edge_r = np.asarray(edge_r, dtype=np.float64)
        edge_c = np.asarray(edge_c, dtype=np.float64)
        node_c = np.asarray(node_c, dtype=np.float64)
        if order is not None:
            edge_r = edge_r[order]
            edge_c = edge_c[order]
            node_c = node_c[order]
        return cls(names, new_parent, edge_r, edge_c, node_c, is_output)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def names(self) -> List[str]:
        """Node names in preorder (index order)."""
        return list(self._names)

    @property
    def root(self) -> str:
        """Name of the input node (index 0)."""
        return self._names[0]

    @property
    def outputs(self) -> List[str]:
        """Names of marked output nodes, in preorder."""
        return [self._names[i] for i in np.flatnonzero(self._is_output)]

    @property
    def depth(self) -> int:
        """Maximum node depth (number of vectorized sweeps per pass)."""
        return len(self._levels) - 1

    @property
    def total_capacitance(self) -> float:
        """Total lumped plus distributed capacitance (farads)."""
        return float(self._node_c.sum() + self._edge_c.sum())

    @property
    def output_indices(self) -> np.ndarray:
        """Preorder indices of marked outputs."""
        return np.flatnonzero(self._is_output)

    def index(self, name: str) -> int:
        """Preorder index of node ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownNodeError(name) from None

    def name_of(self, index: int) -> str:
        """Node name at preorder position ``index``."""
        return self._names[index]

    def path_resistance(self, name: str) -> float:
        """``R_kk``: input-to-node path resistance (from the eager cache)."""
        return float(self._rkk[self.index(name)])

    def downstream_capacitance(self, name: str) -> float:
        """Capacitance at and below ``name``, excluding the edge into it."""
        return float(self._c_down[self.index(name)])

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    @property
    def _children(self) -> List[List[int]]:
        """Child index lists (attachment order), built on first edit."""
        if self._children_cache is None:
            children: List[List[int]] = [[] for _ in range(self._n)]
            for i in range(1, self._n):
                children[self._parent_list[i]].append(i)
            self._children_cache = children
        return self._children_cache

    def _recompute_c_down_path(self, start: int) -> None:
        """Recompute downstream capacitance along ``start`` -> root, exactly.

        Each ancestor's value is rebuilt from its children (the same
        child-order summation as the reference postorder pass), so repeated
        edits accumulate no drift: the caches always equal what a fresh
        compile would produce, bit for bit.
        """
        children = self._children
        c_down = self._c_down
        edge_c = self._edge_c
        node_c = self._node_c
        parent = self._parent_list
        j = start
        while j >= 0:
            total = node_c[j]
            for child in children[j]:
                total = total + c_down[child] + edge_c[child]
            c_down[j] = total
            j = parent[j]

    def update_capacitance(self, node: Union[str, int], capacitance: float) -> None:
        """Set the lumped grounded capacitance at ``node`` (farads).

        Recomputes the cached downstream capacitance along the node's root
        path (O(path children)) and invalidates the moment arrays.
        """
        i = node if isinstance(node, int) else self.index(node)
        capacitance = _require_value("capacitance", capacitance)
        if capacitance == self._node_c[i]:
            return
        self._node_c[i] = capacitance
        self._recompute_c_down_path(i)
        self._times = None

    def update_resistance(self, child: Union[str, int], resistance: float) -> None:
        """Set the series resistance of the edge *into* ``child`` (ohms).

        Recomputes the cached path resistance over the child's (contiguous)
        subtree range, exactly as a fresh forward sweep would.
        """
        i = child if isinstance(child, int) else self.index(child)
        if i == 0:
            raise TopologyError("the input node has no incoming edge")
        resistance = _require_value("resistance", resistance)
        if resistance == self._edge_r[i]:
            return
        self._edge_r[i] = resistance
        rkk = self._rkk
        parent = self._parent_list
        edge_r = self._edge_r
        # Within [i, extent) parents precede children, so one forward walk
        # reproduces the compile-time recurrence bit for bit.
        for j in range(i, int(self._extent[i])):
            rkk[j] = rkk[parent[j]] + edge_r[j]
        self._times = None

    def update_line(
        self, child: Union[str, int], resistance: float, capacitance: float
    ) -> None:
        """Set both totals of the (distributed) edge into ``child``.

        The edge's distributed capacitance feeds the downstream capacitance of
        every *strict* ancestor, so the c_down recomputation starts at the
        parent.
        """
        i = child if isinstance(child, int) else self.index(child)
        if i == 0:
            raise TopologyError("the input node has no incoming edge")
        self.update_resistance(i, resistance)
        capacitance = _require_value("capacitance", capacitance)
        if capacitance != self._edge_c[i]:
            self._edge_c[i] = capacitance
            self._recompute_c_down_path(self._parent_list[i])
            self._times = None

    def refresh(self) -> None:
        """Rebuild the aggregate caches from the element arrays.

        Incremental updates recompute their dirty regions exactly, so this is
        never needed for accuracy; it exists as an escape hatch (and as the
        oracle the incremental unit tests compare against).
        """
        self._build_aggregates()
        self._times = None

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def _compute_tp(self) -> float:
        rkk_parent = self._rkk[np.maximum(self._parent, 0)]
        # The root gathers itself (rkk == 0), so no masking is needed.
        lumped = np.dot(self._rkk, self._node_c)
        distributed = np.dot(rkk_parent + self._edge_r / 2.0, self._edge_c)
        return float(lumped + distributed)

    def solve(self) -> FlatTimes:
        """Characteristic times of every node, recomputing only when stale."""
        if self._times is None:
            n = self._n
            parent = self._parent
            edge_r = self._edge_r
            edge_c = self._edge_c
            c_down = self._c_down
            rkk = self._rkk
            tde = np.zeros(n, dtype=np.float64)
            tr_num = np.zeros(n, dtype=np.float64)
            for level in self._levels[1:]:
                p = parent[level]
                r = edge_r[level]
                lc = edge_c[level]
                below = c_down[level]
                rk = rkk[level]
                rp = rkk[p]
                tde[level] = tde[p] + r * (below + lc / 2.0)
                tr_num[level] = tr_num[p] + (rk * rk - rp * rp) * below + (rp * r + r * r / 3.0) * lc
            tre = np.divide(
                tr_num, rkk, out=np.zeros(n, dtype=np.float64), where=rkk > 0.0
            )
            self._times = FlatTimes(
                tp=self._compute_tp(),
                tde=tde,
                tre=tre,
                ree=rkk.copy(),
                total_capacitance=self.total_capacitance,
            )
        return self._times

    def solve_batch(
        self,
        edge_r: PlaneInput = None,
        edge_c: PlaneInput = None,
        node_c: PlaneInput = None,
        *,
        count: Optional[int] = None,
    ) -> ScenarioTimes:
        """Characteristic times under ``S`` element parameterizations at once.

        Each plane is ``None`` (the tree's own values for every scenario), a
        ``(S,)`` vector of per-scenario *effective* values broadcast over the
        nodes, or a full ``(S, N)`` matrix of effective element values.  The
        level sweeps run over ``(N, S)`` matrices -- the per-node arithmetic
        is the single-scenario :meth:`solve` verbatim -- and the result
        carries a leading scenario axis.  The single-scenario solve cache is
        untouched: batched solves neither read nor invalidate it, and
        incremental updates to the tree are reflected by the *next* batched
        solve because the base arrays are re-read per call.
        """
        s = _scenario_count(count, edge_r, edge_c, node_c)
        er = as_node_matrix(edge_r, self._edge_r, s)
        ec = as_node_matrix(edge_c, self._edge_c, s)
        nc = as_node_matrix(node_c, self._node_c, s)
        rkk, c_down, tde, tre = sweep_scenarios(self._levels, self._parent, er, ec, nc)
        rkk_parent = rkk[np.maximum(self._parent, 0)]
        # The root has no parent edge; zero its gathered row so a plane that
        # puts elements on the root edge (only reachable through trusted
        # from_arrays construction) stays consistent with the forest kernel.
        rkk_parent[self._parent < 0] = 0.0
        tp = (rkk * nc + (rkk_parent + er / 2.0) * ec).sum(axis=0)
        total = nc.sum(axis=0) + ec.sum(axis=0)
        return ScenarioTimes(
            tp=tp, tde=tde.T, tre=tre.T, ree=rkk.T, total_capacitance=total
        )

    def solve_scenarios(self, scenarios: Any) -> ScenarioTimes:
        """Apply a scenario plane's derates to this tree and solve, batched.

        ``scenarios`` is a :class:`repro.scenarios.ParameterPlane` (fields
        ``r_scale``/``c_scale``, each ``(S,)`` or ``(S, N)``) or anything with
        a ``tree_plane()`` method producing one -- in particular a
        :class:`repro.scenarios.ScenarioSet`, whose net/driver/period knobs
        do not apply to a bare tree.
        """
        plane = scenarios.tree_plane() if hasattr(scenarios, "tree_plane") else scenarios
        r_scale = np.asarray(plane.r_scale, dtype=float)
        c_scale = np.asarray(plane.c_scale, dtype=float)
        if r_scale.ndim == 1:
            r_scale = r_scale[:, np.newaxis]
        if c_scale.ndim == 1:
            c_scale = c_scale[:, np.newaxis]
        return self.solve_batch(
            edge_r=self._edge_r * r_scale,
            edge_c=self._edge_c * c_scale,
            node_c=self._node_c * c_scale,
            count=r_scale.shape[0],
        )

    def _path_moments(self, i: int) -> tuple:
        """``(T_De, T_Re * R_ee)`` of one node from the cached aggregates.

        O(depth), bit-identical to the full forward sweep: the same recurrence
        is evaluated in root-to-node order along the single path.
        """
        chain: List[int] = []
        parent = self._parent_list
        j = i
        while parent[j] >= 0:
            chain.append(j)
            j = parent[j]
        tde = 0.0
        tr_num = 0.0
        edge_r = self._edge_r
        edge_c = self._edge_c
        c_down = self._c_down
        rkk = self._rkk
        for j in reversed(chain):
            p = parent[j]
            r = edge_r[j]
            lc = edge_c[j]
            below = c_down[j]
            rk = rkk[j]
            rp = rkk[p]
            tde = tde + r * (below + lc / 2.0)
            tr_num = tr_num + (rk * rk - rp * rp) * below + (rp * r + r * r / 3.0) * lc
        return tde, tr_num

    def characteristic_times(self, output: Union[str, int]) -> CharacteristicTimes:
        """``T_P``, ``T_De``, ``T_Re`` of one output.

        Reads the solved arrays when they are fresh; after an incremental
        update it recomputes just this output's path recurrence (O(depth))
        plus the vectorized ``T_P`` sum, without a full solve.
        """
        i = output if isinstance(output, int) else self.index(output)
        if self._times is not None:
            times = self._times
            tde = float(times.tde[i])
            tre = float(times.tre[i])
            tp = times.tp
            total = times.total_capacitance
        else:
            tde, tr_num = self._path_moments(i)
            ree = self._rkk[i]
            tre = float(tr_num / ree) if ree > 0.0 else 0.0
            tde = float(tde)
            tp = self._compute_tp()
            total = self.total_capacitance
        return CharacteristicTimes(
            output=self._names[i],
            tp=tp,
            tde=tde,
            tre=tre,
            ree=float(self._rkk[i]),
            total_capacitance=total,
        )

    def characteristic_times_all(
        self, outputs: Optional[Iterable[Union[str, int]]] = None
    ) -> Dict[str, CharacteristicTimes]:
        """Drop-in replacement for :func:`repro.core.timeconstants.characteristic_times_all`.

        Defaults to the marked outputs, or every node when none are marked.
        """
        if outputs is None:
            indices = self.output_indices
            if len(indices) == 0:
                indices = np.arange(self._n)
        else:
            indices = np.asarray(
                [o if isinstance(o, int) else self.index(o) for o in outputs],
                dtype=np.int64,
            )
        times = self.solve()
        return {
            self._names[i]: CharacteristicTimes(
                output=self._names[i],
                tp=times.tp,
                tde=float(times.tde[i]),
                tre=float(times.tre[i]),
                ree=float(times.ree[i]),
                total_capacitance=times.total_capacitance,
            )
            for i in indices
        }

    def elmore_delays(
        self, outputs: Optional[Iterable[Union[str, int]]] = None
    ) -> Dict[str, float]:
        """Elmore delay ``T_De`` of many outputs at once."""
        return {
            name: ct.tde for name, ct in self.characteristic_times_all(outputs).items()
        }

    # ------------------------------------------------------------------
    # Batched bounds, eqs. (8)-(17)
    # ------------------------------------------------------------------
    def _select(self, outputs: Optional[Iterable[Union[str, int]]]) -> np.ndarray:
        if outputs is None:
            indices = self.output_indices
            if len(indices) == 0:
                indices = np.arange(self._n)
            return indices
        return np.asarray(
            [o if isinstance(o, int) else self.index(o) for o in outputs],
            dtype=np.int64,
        )

    def delay_bounds_batch(
        self,
        thresholds: Union[Sequence[float], np.ndarray],
        outputs: Optional[Iterable[Union[str, int]]] = None,
    ) -> Tuple[List[str], np.ndarray, np.ndarray]:
        """Eqs. (13)-(17) for a (sinks x thresholds) matrix in one numpy call.

        Returns ``(names, lower, upper)`` where the bound arrays have shape
        ``(len(names), len(thresholds))``.
        """
        indices = self._select(outputs)
        times = self.solve()
        lower, upper = delay_bounds_batch(
            times.tp,
            times.tde[indices],
            times.tre[indices],
            thresholds,
            total_capacitance=times.total_capacitance,
        )
        return [self._names[i] for i in indices], lower, upper

    def voltage_bounds_batch(
        self,
        sample_times: Union[Sequence[float], np.ndarray],
        outputs: Optional[Iterable[Union[str, int]]] = None,
    ) -> Tuple[List[str], np.ndarray, np.ndarray]:
        """Eqs. (8)-(12) for a (sinks x times) matrix in one numpy call.

        Returns ``(names, vmin, vmax)`` with shape ``(len(names), len(times))``.
        """
        indices = self._select(outputs)
        times = self.solve()
        vmin, vmax = voltage_bounds_batch(
            times.tp,
            times.tde[indices],
            times.tre[indices],
            sample_times,
            total_capacitance=times.total_capacitance,
        )
        return [self._names[i] for i in indices], vmin, vmax

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"FlatTree(nodes={self._n}, depth={self.depth}, "
            f"outputs={int(self._is_output.sum())})"
        )
