"""Vectorized flat-tree analysis engine.

The dict-based reference implementation in :mod:`repro.core` walks Python
objects node by node; this subpackage compiles an
:class:`~repro.core.tree.RCTree` into parent-index numpy arrays and computes
the paper's characteristic times (``T_P``, ``T_De``, ``T_Re`` -- eqs. 1, 5,
6, including the closed-form distributed-line integrals) for *every* output
at once with a handful of vectorized sweeps:

* :class:`FlatTree` -- one compiled tree: batched solve, O(depth) incremental
  updates (:meth:`~FlatTree.update_capacitance`,
  :meth:`~FlatTree.update_resistance`, :meth:`~FlatTree.update_line`), and
  single-output queries that never re-traverse the whole network;
* :class:`FlatForest` -- many trees concatenated and solved together, so a
  thousand small nets cost barely more than one;
* scenario batching -- ``solve_batch`` on both classes runs the same level
  sweeps over ``(S, N)`` element planes, evaluating corners, derates and
  what-if candidates side by side (:mod:`repro.flat.scenarios`);
* :mod:`repro.flat.contraction` -- the pointer-jumping twin of the level
  sweeps: O(log N) contraction rounds regardless of topology, the kernel
  behind ``engine="contract"`` for chain-heavy forests;
* :mod:`repro.flat.native` -- Numba JIT-compiled twins of both kernel
  families (fused level sweeps, compiled contraction rounds), the kernel
  behind ``engine="native"``; imported lazily, never a hard dependency,
  degrading to the numpy kernels when Numba is absent;
* :mod:`repro.flat.batchbounds` -- eqs. (8)-(17) evaluated over
  (sinks x thresholds) matrices in one numpy call.

The dict engine remains the reference oracle: the property tests in
``tests/properties/test_flat_parity.py`` pin agreement to a relative
tolerance of 1e-12.  Design notes and measured speedups live in
``docs/performance.md``.
"""

from repro.flat.batchbounds import (
    delay_bounds_batch,
    delay_lower_bound_batch,
    delay_upper_bound_batch,
    voltage_bounds_batch,
    voltage_lower_bound_batch,
    voltage_upper_bound_batch,
)
from repro.flat.contraction import (
    jump_schedule,
    last_round_count,
    path_sums,
    subtree_sums,
    sweep_scenarios_contract,
)
from repro.flat.flattree import FlatTimes, FlatTree
from repro.flat.forest import FlatForest, ForestTimes
from repro.flat.scenarios import ScenarioForestTimes, ScenarioTimes

__all__ = [
    "FlatTree",
    "FlatTimes",
    "FlatForest",
    "ForestTimes",
    "ScenarioTimes",
    "ScenarioForestTimes",
    "delay_bounds_batch",
    "delay_lower_bound_batch",
    "delay_upper_bound_batch",
    "voltage_bounds_batch",
    "voltage_lower_bound_batch",
    "voltage_upper_bound_batch",
    "jump_schedule",
    "last_round_count",
    "path_sums",
    "subtree_sums",
    "sweep_scenarios_contract",
]
