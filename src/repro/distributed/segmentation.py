"""Lumped approximations of distributed lines and their convergence.

The exact simulator replaces every URC line with an N-section ladder
(:meth:`repro.core.tree.RCTree.lumped`).  This module quantifies the error of
that replacement against the analytic series solution of
:mod:`repro.distributed.urc`, which is what the segmentation ablation
benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.tree import RCTree
from repro.distributed.urc import urc_step_waveform
from repro.simulate.compare import max_abs_error
from repro.simulate.state_space import exact_step_response
from repro.utils.checks import require_positive


def lumped_line_tree(
    resistance: float, capacitance: float, segments: int, *, style: str = "pi"
) -> RCTree:
    """An N-section lumped ladder approximating one uniform RC line.

    The far end is named ``out`` and marked as the output.
    """
    require_positive("resistance", resistance)
    require_positive("capacitance", capacitance)
    tree = RCTree("in")
    tree.add_line("in", "out", resistance, capacitance)
    tree.mark_output("out")
    return tree.lumped(segments, style=style)


@dataclass(frozen=True)
class SegmentationPoint:
    """Error of one lumping granularity against the analytic line response."""

    segments: int
    style: str
    max_error: float
    delay_error_50: float


def segmentation_error(
    resistance: float,
    capacitance: float,
    segments: int,
    *,
    style: str = "pi",
    t_end_factor: float = 3.0,
    points: int = 400,
) -> SegmentationPoint:
    """Compare an N-section ladder against the analytic distributed response.

    Returns the maximum absolute voltage error over ``[0, t_end_factor * RC]``
    and the error in the 50% crossing time (in units of RC).
    """
    rc = resistance * capacitance
    t_end = t_end_factor * rc
    analytic = urc_step_waveform(resistance, capacitance, t_end, points=points)
    ladder = lumped_line_tree(resistance, capacitance, segments, style=style)
    response = exact_step_response(ladder)
    lumped = response.waveform("out", t_end, points)
    delay_analytic = analytic.delay_to(0.5)
    delay_lumped = lumped.delay_to(0.5)
    return SegmentationPoint(
        segments=segments,
        style=style,
        max_error=max_abs_error(analytic, lumped),
        delay_error_50=(delay_lumped - delay_analytic) / rc,
    )


def convergence_study(
    resistance: float = 1.0,
    capacitance: float = 1.0,
    segment_counts: Sequence[int] = (1, 2, 3, 5, 10, 20, 50),
    *,
    style: str = "pi",
) -> List[SegmentationPoint]:
    """Run :func:`segmentation_error` for a sweep of segment counts."""
    return [
        segmentation_error(resistance, capacitance, count, style=style)
        for count in segment_counts
    ]
