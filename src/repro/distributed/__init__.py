"""Distributed (uniform RC line) models and their lumped approximations.

The paper's networks mix lumped elements with *distributed* uniform RC lines
("URC" elements).  The characteristic-time engine handles distributed lines
in closed form, but the exact simulator needs them lumped into N sections.
This subpackage provides:

* :mod:`repro.distributed.urc` -- the classical diffusion-equation series
  solution of a uniform line driven by an ideal step (used to validate the
  lumping, and to quote the familiar 0.38 RC half-voltage delay);
* :mod:`repro.distributed.segmentation` -- helpers to lump a line into
  pi/L ladders and to study how quickly the lumped response converges to the
  distributed one.
"""

from repro.distributed.urc import (
    urc_step_response,
    urc_step_waveform,
    urc_threshold_delay,
    URC_HALF_VOLTAGE_COEFFICIENT,
)
from repro.distributed.segmentation import (
    lumped_line_tree,
    segmentation_error,
    convergence_study,
)

__all__ = [
    "urc_step_response",
    "urc_step_waveform",
    "urc_threshold_delay",
    "URC_HALF_VOLTAGE_COEFFICIENT",
    "lumped_line_tree",
    "segmentation_error",
    "convergence_study",
]
