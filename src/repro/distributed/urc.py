"""Analytic step response of a uniform distributed RC line.

A uniform line of total resistance ``R`` and total capacitance ``C``, driven
at one end by an ideal unit step and open at the other end, obeys the
diffusion equation.  With the position normalised to ``x in [0, 1]`` (0 at
the driven end) and time normalised to ``theta = t / (R C)`` the response is
the classical series

.. math::

    v(x, \\theta) = 1 - \\sum_{n \\ge 0} \\frac{4}{(2n+1)\\pi}
        \\sin\\!\\Big(\\frac{(2n+1)\\pi x}{2}\\Big)
        \\exp\\!\\Big(-\\frac{(2n+1)^2 \\pi^2}{4}\\theta\\Big).

At the open end the Elmore delay of this response is ``RC/2`` and ``T_Re``
is ``RC/3`` -- exactly the values the paper quotes for a single URC line --
and the 50% crossing sits near the familiar ``0.38 RC``.

These formulas serve as ground truth for the segmentation study: an
N-section lumped ladder must converge to this response as N grows.
"""

from __future__ import annotations

import math
from typing import Iterable, Union

import numpy as np

from repro.core.exceptions import AnalysisError
from repro.simulate.waveform import Waveform
from repro.utils.checks import require_in_unit_interval, require_positive

ArrayLike = Union[float, Iterable[float], np.ndarray]

#: 50%-threshold delay of an ideally driven open-ended uniform RC line,
#: as a multiple of RC (the familiar "0.38 RC" rule of thumb).
URC_HALF_VOLTAGE_COEFFICIENT = 0.3785


def urc_step_response(
    resistance: float,
    capacitance: float,
    time: ArrayLike,
    *,
    position: float = 1.0,
    terms: int = 200,
) -> Union[float, np.ndarray]:
    """Exact unit-step response of a uniform RC line at ``position``.

    Parameters
    ----------
    resistance, capacitance:
        Line totals (ohms, farads).
    time:
        Time(s) after the step, seconds.
    position:
        Normalised position along the line: 0 is the driven end, 1 the open
        far end (default).
    terms:
        Number of series terms.  The series converges extremely fast except
        at very small ``t``; 200 terms give machine-precision results for
        ``t / RC > 1e-4``.
    """
    require_positive("resistance", resistance)
    require_positive("capacitance", capacitance)
    position = require_in_unit_interval("position", position)
    if terms < 1:
        raise AnalysisError("terms must be >= 1")

    t = np.asarray(time, dtype=float)
    scalar = t.ndim == 0
    t = np.atleast_1d(t)
    if np.any(t < 0):
        raise AnalysisError("time must be >= 0 (the step is applied at t = 0)")

    theta = t / (resistance * capacitance)
    n = np.arange(terms, dtype=float)
    odd = 2.0 * n + 1.0
    amplitude = (4.0 / (odd * math.pi)) * np.sin(odd * math.pi * position / 2.0)
    decay = np.exp(-np.outer(theta, (odd * math.pi / 2.0) ** 2))
    response = 1.0 - decay @ amplitude
    # The series is exactly 0 at t = 0 but truncation leaves a tiny residue;
    # clamp to the physical range.
    response = np.clip(response, 0.0, 1.0)
    response[t == 0.0] = 0.0 if position > 0.0 else 1.0
    return float(response[0]) if scalar else response


def urc_step_waveform(
    resistance: float,
    capacitance: float,
    t_end: float,
    *,
    position: float = 1.0,
    points: int = 400,
    terms: int = 200,
) -> Waveform:
    """Sampled exact step response of a uniform line over ``[0, t_end]``."""
    if t_end <= 0:
        raise AnalysisError("t_end must be positive")
    times = np.linspace(0.0, float(t_end), int(points))
    values = urc_step_response(
        resistance, capacitance, times, position=position, terms=terms
    )
    return Waveform(times, np.asarray(values, dtype=float))


def urc_threshold_delay(
    resistance: float,
    capacitance: float,
    threshold: float,
    *,
    position: float = 1.0,
    terms: int = 200,
) -> float:
    """Time for the line's response at ``position`` to reach ``threshold``.

    Solved by bisection on the analytic series; ``threshold = 0.5`` at the
    far end returns approximately ``0.3785 RC``.
    """
    threshold = require_in_unit_interval("threshold", threshold, open_ends=True)
    rc = resistance * capacitance
    lo, hi = 0.0, rc
    while (
        urc_step_response(resistance, capacitance, hi, position=position, terms=terms)
        < threshold
    ):
        hi *= 2.0
        if hi > 1e6 * rc:  # pragma: no cover - defensive, cannot happen for 0 < v < 1
            raise AnalysisError("threshold search did not converge")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        value = urc_step_response(resistance, capacitance, mid, position=position, terms=terms)
        if value < threshold:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-15 * max(hi, 1e-300):
            break
    return 0.5 * (lo + hi)
