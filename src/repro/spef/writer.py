"""Write RC trees as (simplified) SPEF ``*D_NET`` sections.

The emitted file has a standard SPEF header (units: ohm, picofarad,
nanosecond) and one detailed-net section per tree.  Distributed URC lines are
lumped into pi sections first, because SPEF itself only carries lumped R and
C.  The driver pin is written as ``<net>:DRV`` and marked ``*I ... I`` on the
``*CONN`` list; every tree output becomes a load pin ``<node>`` with ``*P``
direction ``O``.
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Dict, Iterable, Mapping, Union

from repro.core.tree import RCTree

#: Capacitance unit used in the emitted files (1 PF per SPEF convention here).
_CAP_UNIT = 1e-12
#: Resistance unit (1 OHM).
_RES_UNIT = 1.0


def _header(design: str, divider: str = "/") -> str:
    timestamp = datetime.now(timezone.utc).strftime("%a %b %d %H:%M:%S %Y")
    return "\n".join(
        [
            '*SPEF "IEEE 1481-1998"',
            f'*DESIGN "{design}"',
            f'*DATE "{timestamp}"',
            '*VENDOR "rctree-bounds"',
            '*PROGRAM "rctree-bounds spef writer"',
            '*VERSION "1.0.0"',
            "*DESIGN_FLOW \"PIN_CAP NONE\"",
            f"*DIVIDER {divider}",
            "*DELIMITER :",
            "*BUS_DELIMITER [ ]",
            "*T_UNIT 1 NS",
            "*C_UNIT 1 PF",
            "*R_UNIT 1 OHM",
            "*L_UNIT 1 HENRY",
            "",
        ]
    )


def tree_to_spef(
    trees: Union[RCTree, Mapping[str, RCTree]],
    *,
    design: str = "rctree_bounds_design",
    segments_per_line: int = 10,
) -> str:
    """Render one tree (or a mapping net-name -> tree) as a SPEF string."""
    if isinstance(trees, RCTree):
        trees = {"net0": trees}

    sections = [_header(design)]
    for net_name, tree in trees.items():
        working = (
            tree.lumped(segments_per_line)
            if any(edge.is_distributed for edge in tree.edges)
            else tree
        )
        total_cap = working.total_capacitance / _CAP_UNIT
        lines = [f"*D_NET {net_name} {total_cap:.6g}"]

        lines.append("*CONN")
        lines.append(f"*I {net_name}:DRV I")
        for output in working.outputs or working.leaves():
            lines.append(f"*P {net_name}/{output} O")

        lines.append("*CAP")
        cap_index = 0
        for node in working.nodes:
            capacitance = working.node_capacitance(node)
            if capacitance > 0.0:
                cap_index += 1
                lines.append(
                    f"{cap_index} {net_name}/{node} {capacitance / _CAP_UNIT:.6g}"
                )

        lines.append("*RES")
        res_index = 0
        for edge in working.edges:
            res_index += 1
            lines.append(
                f"{res_index} {net_name}/{edge.parent} {net_name}/{edge.child} "
                f"{edge.resistance / _RES_UNIT:.6g}"
            )
        lines.append("*END")
        lines.append("")
        sections.append("\n".join(lines))
    return "\n".join(sections)


def write_spef(trees, path, **kwargs) -> None:
    """Write :func:`tree_to_spef` output to ``path``."""
    text = tree_to_spef(trees, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
