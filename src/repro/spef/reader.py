"""Read the simplified SPEF subset back into RC trees or flat arrays.

The reader understands the sections emitted by :mod:`repro.spef.writer` --
header unit statements, ``*D_NET`` with ``*CONN`` / ``*CAP`` / ``*RES`` --
plus files written by other tools as long as every net's resistor graph is a
tree and every capacitor is a ground capacitor (one node per ``*CAP`` line).
Coupling caps (two nodes on a ``*CAP`` line) raise a ``TopologyError``.

The tree root for each net is the ``I``-direction connection when present,
otherwise the first connection that is not an ``O``-direction load -- so a
file that lists a net's loads before its driver still roots correctly.

Two output forms are offered:

* :func:`spef_to_trees` / :func:`read_spef` build dict
  :class:`~repro.core.tree.RCTree` objects, the reference representation;
* :func:`iter_spef_nets` streams each ``*D_NET`` section directly into
  parent-index arrays (:class:`SpefNet`, convertible to a compiled
  :class:`~repro.flat.FlatTree` with no intermediate dict tree), and
  :func:`spef_to_forest` batches a whole file into one
  :class:`~repro.flat.FlatForest` -- the design-scale ingest path used by
  :meth:`repro.graph.DesignDB.from_spef`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.exceptions import ParseError, TopologyError
from repro.core.tree import RCTree
from repro.utils.units import parse_engineering


@dataclass
class _NetSection:
    name: str
    total_cap: float
    connections: List[Tuple[str, str, str]] = field(default_factory=list)  # (kind, pin, direction)
    caps: List[Tuple[str, Optional[str], float]] = field(default_factory=list)
    resistors: List[Tuple[str, str, float]] = field(default_factory=list)


#: Accepted SPEF input: a whole string, or any iterable of lines (an open
#: file handle qualifies) for true streaming ingest.
SpefSource = Union[str, Iterable[str]]


def _apply_unit(fields: List[str], units: Dict[str, float]) -> None:
    """Fold one ``*?_UNIT`` statement into the running unit table."""
    if len(fields) >= 3 and fields[0] in ("*C_UNIT", "*R_UNIT", "*T_UNIT"):
        value = parse_engineering(fields[1])
        unit_name = fields[2].upper()
        scale = {
            "PF": 1e-12,
            "FF": 1e-15,
            "NF": 1e-9,
            "UF": 1e-6,
            "F": 1.0,
            "OHM": 1.0,
            "KOHM": 1e3,
            "NS": 1e-9,
            "PS": 1e-12,
        }.get(unit_name)
        if scale is None:
            raise ParseError(f"unsupported SPEF unit {unit_name!r}")
        units[fields[0][1]] = value * scale


def _default_units() -> Dict[str, float]:
    return {"C": 1e-12, "R": 1.0, "T": 1e-9}


def _parse_units(lines: List[str]) -> Dict[str, float]:
    units = _default_units()
    for line in lines:
        _apply_unit(line.split(), units)
    return units


def _count_drivers(net: _NetSection) -> int:
    return sum(1 for _, _, direction in net.connections if direction.upper() == "I")


def _iter_net_sections(
    source: SpefSource, *, strict: bool = False
) -> Iterator[_NetSection]:
    """Stream the ``*D_NET`` sections of a SPEF source, one at a time.

    ``source`` is a whole SPEF string or any iterable of lines -- an open
    file handle streams a multi-gigabyte extraction without ever holding
    the text.  String input keeps the historical whole-file unit scan
    (unit statements anywhere apply to every net); line-iterable input
    applies unit statements as they are encountered, which is identical
    for well-formed files (units live in the header).

    ``strict=True`` turns the malformations the lenient reader tolerates
    into clean :class:`ParseError`\\ s: a net truncated by end-of-input
    before its ``*END``, a new ``*D_NET`` opening mid-net, and duplicate
    ``I``-direction ``*CONN`` drivers.  Transactional ingest
    (:mod:`repro.store.ingest`) relies on strict mode so a broken stream
    aborts before partial shard files can survive.
    """
    if isinstance(source, str):
        stripped = [line.strip() for line in source.splitlines() if line.strip()]
        units = _parse_units(stripped)
        lines: Iterable[str] = stripped
        incremental_units = False
    else:
        lines = (line.strip() for line in source)
        units = _default_units()
        incremental_units = True

    current: Optional[_NetSection] = None
    mode = None
    number = 0
    for line in lines:
        if not line:
            continue
        number += 1
        fields = line.split()
        keyword = fields[0].upper()
        if incremental_units:
            _apply_unit(fields, units)
        if keyword == "*D_NET":
            if strict and current is not None:
                raise ParseError(
                    f"net {current.name!r} not terminated by *END before the"
                    " next *D_NET",
                    line=number,
                )
            if len(fields) < 3:
                raise ParseError("malformed *D_NET line", line=number)
            current = _NetSection(name=fields[1], total_cap=float(fields[2]) * units["C"])
            mode = None
        elif keyword == "*CONN":
            mode = "conn"
        elif keyword == "*CAP":
            mode = "cap"
        elif keyword == "*RES":
            mode = "res"
        elif keyword == "*END":
            if current is not None:
                if strict and _count_drivers(current) > 1:
                    raise ParseError(
                        f"net {current.name!r} has {_count_drivers(current)}"
                        " I-direction *CONN drivers; a net has exactly one",
                        line=number,
                    )
                yield current
            current = None
            mode = None
        elif current is not None:
            if mode == "conn" and keyword in ("*I", "*P"):
                direction = fields[2] if len(fields) > 2 else "B"
                current.connections.append((keyword, fields[1], direction))
            elif mode == "cap":
                if len(fields) == 3:
                    current.caps.append((fields[1], None, float(fields[2]) * units["C"]))
                elif len(fields) >= 4:
                    current.caps.append((fields[1], fields[2], float(fields[3]) * units["C"]))
                else:
                    raise ParseError("malformed *CAP entry", line=number)
            elif mode == "res":
                if len(fields) < 4:
                    raise ParseError("malformed *RES entry", line=number)
                current.resistors.append((fields[1], fields[2], float(fields[3]) * units["R"]))
        # Header lines and anything outside a net section are ignored.
    if current is not None:
        if strict:
            raise ParseError(
                f"truncated SPEF: net {current.name!r} not terminated by *END"
                " before end of input"
            )
        # Tolerate a missing trailing *END.
        yield current


def spef_to_trees(text: str, *, root_name: str = "in") -> Dict[str, RCTree]:
    """Parse a SPEF string into a mapping net name -> :class:`RCTree`."""
    return {
        net.name: _net_to_tree(net, root_name=root_name)
        for net in _iter_net_sections(text)
    }


def _strip_net_prefix(pin: str, net: str) -> str:
    for delimiter in ("/", ":"):
        prefix = f"{net}{delimiter}"
        if pin.startswith(prefix):
            return pin[len(prefix):]
    return pin


def _select_driver(net: _NetSection) -> Optional[str]:
    """Pick the net's driver pin from its ``*CONN`` list, order-independently.

    An ``I``-direction connection wins wherever it appears; failing that, the
    first connection that is *not* an ``O``-direction load; failing that, the
    first connection.  (The previous rule took the first ``*I``-kind or
    first-listed connection, so a file listing loads before the driver -- legal
    SPEF -- was rooted at a load.)
    """
    for _, pin, direction in net.connections:
        if direction.upper() == "I":
            return _strip_net_prefix(pin, net.name)
    for _, pin, direction in net.connections:
        if direction.upper() != "O":
            return _strip_net_prefix(pin, net.name)
    if net.connections:
        return _strip_net_prefix(net.connections[0][1], net.name)
    return None


def _net_adjacency(net: _NetSection) -> Dict[str, List[Tuple[str, float]]]:
    adjacency: Dict[str, List[Tuple[str, float]]] = {}
    for n1, n2, value in net.resistors:
        a = _strip_net_prefix(n1, net.name)
        b = _strip_net_prefix(n2, net.name)
        adjacency.setdefault(a, []).append((b, value))
        adjacency.setdefault(b, []).append((a, value))
    return adjacency


def _resolve_driver(net: _NetSection, adjacency: Dict[str, List[Tuple[str, float]]]) -> str:
    driver = _select_driver(net)
    if driver is None:
        raise ParseError(f"net {net.name!r} has no *CONN section to locate its driver")
    if driver not in adjacency and adjacency:
        # The writer emits the driver pin as <net>:DRV while the resistor
        # spine starts at the tree root node; fall back to the resistor node
        # that appears only once (a topological root candidate).
        if driver.upper() == "DRV":
            driver = _strip_net_prefix(net.resistors[0][0], net.name)
        else:
            raise TopologyError(
                f"driver pin {driver!r} of net {net.name!r} does not touch any resistor"
            )
    return driver


def _net_to_tree(net: _NetSection, *, root_name: str) -> RCTree:
    adjacency = _net_adjacency(net)
    driver = _resolve_driver(net, adjacency)

    tree = RCTree(root_name)
    rename = {driver: root_name}

    def node_name(node: str) -> str:
        return rename.get(node, node)

    visited = {driver}
    queue = [driver]
    while queue:
        currentnode = queue.pop(0)
        for neighbour, value in adjacency.get(currentnode, []):
            if neighbour in visited:
                continue
            visited.add(neighbour)
            tree.add_resistor(node_name(currentnode), node_name(neighbour), value)
            queue.append(neighbour)

    # Loop detection: a tree with V nodes has V-1 edges.
    if adjacency and len(net.resistors) != len(visited) - 1:
        raise TopologyError(
            f"net {net.name!r} has {len(net.resistors)} resistors over {len(visited)} nodes; "
            "the parasitic network is not a tree"
        )

    for n1, n2, value in net.caps:
        if n2 is not None:
            raise TopologyError(
                f"net {net.name!r} contains a coupling capacitor ({n1} to {n2}); "
                "RC-tree analysis only supports grounded capacitors"
            )
        node = _strip_net_prefix(n1, net.name)
        if node not in visited:
            raise TopologyError(
                f"capacitor node {node!r} of net {net.name!r} is not connected to the driver"
            )
        tree.add_capacitor(node_name(node), value)

    for kind, pin, direction in net.connections:
        if direction.upper() == "O":
            node = _strip_net_prefix(pin, net.name)
            if node in visited:
                tree.mark_output(node_name(node))
    if not tree.outputs:
        for leaf in tree.leaves():
            tree.mark_output(leaf)
    return tree


@dataclass(frozen=True)
class SpefNet:
    """One ``*D_NET`` section parsed straight into parent-index arrays.

    ``node_names`` is in depth-first preorder from the driver (index 0);
    ``parent`` / ``resistance`` describe the edge *into* each node (root
    entries 0), ``capacitance`` the grounded cap per node.  ``loads`` lists
    the ``O``-direction connection pins (net prefix stripped) -- the sink
    pins a :class:`~repro.graph.DesignDB` binds to design loads.
    """

    name: str
    node_names: List[str]
    parent: np.ndarray
    resistance: np.ndarray
    capacitance: np.ndarray
    loads: List[str] = field(default_factory=list)
    total_capacitance: float = 0.0

    def to_flat_tree(self) -> "FlatTree":
        """Compile to a :class:`~repro.flat.FlatTree` (loads, else leaves, as outputs)."""
        from repro.flat import FlatTree

        outputs = None
        marked = [
            index
            for index, name in enumerate(self.node_names)
            if name in set(self.loads)
        ]
        if marked:
            outputs = marked
        return FlatTree.from_arrays(
            self.parent,
            self.resistance,
            np.zeros(len(self.parent)),
            self.capacitance,
            names=self.node_names,
            outputs=outputs,
        )


def _net_to_flat(net: _NetSection) -> SpefNet:
    """Convert one parsed section to arrays, with the same validation as the tree path."""
    adjacency = _net_adjacency(net)
    driver = _resolve_driver(net, adjacency)

    names: List[str] = []
    parent: List[int] = []
    resistance: List[float] = []
    index: Dict[str, int] = {}
    stack: List[Tuple[str, int, float]] = [(driver, -1, 0.0)]
    while stack:
        node, parent_index, value = stack.pop()
        if node in index:
            continue
        index[node] = len(names)
        names.append(node)
        parent.append(parent_index)
        resistance.append(value)
        # Reverse so the first-listed neighbour is visited first (preorder).
        for neighbour, edge_value in reversed(adjacency.get(node, [])):
            if neighbour not in index:
                stack.append((neighbour, index[node], edge_value))

    # Loop detection: a tree with V nodes has V-1 edges.
    if adjacency and len(net.resistors) != len(names) - 1:
        raise TopologyError(
            f"net {net.name!r} has {len(net.resistors)} resistors over {len(names)} nodes; "
            "the parasitic network is not a tree"
        )

    capacitance = [0.0] * len(names)
    for n1, n2, value in net.caps:
        if n2 is not None:
            raise TopologyError(
                f"net {net.name!r} contains a coupling capacitor ({n1} to {n2}); "
                "RC-tree analysis only supports grounded capacitors"
            )
        node = _strip_net_prefix(n1, net.name)
        if node not in index:
            raise TopologyError(
                f"capacitor node {node!r} of net {net.name!r} is not connected to the driver"
            )
        capacitance[index[node]] += value

    loads = [
        _strip_net_prefix(pin, net.name)
        for _, pin, direction in net.connections
        if direction.upper() == "O"
    ]
    return SpefNet(
        name=net.name,
        node_names=names,
        parent=np.asarray(parent, dtype=np.int64),
        resistance=np.asarray(resistance, dtype=np.float64),
        capacitance=np.asarray(capacitance, dtype=np.float64),
        loads=[pin for pin in loads if pin in index],
        total_capacitance=net.total_cap,
    )


def iter_spef_nets(source: SpefSource, *, strict: bool = False) -> Iterator[SpefNet]:
    """Stream a SPEF source as :class:`SpefNet` records, one per ``*D_NET``.

    No dict :class:`~repro.core.tree.RCTree` is ever built -- each section
    goes straight from its resistor adjacency to preorder parent-index arrays,
    which is what keeps design-scale ingest
    (:meth:`repro.graph.DesignDB.from_spef`) linear with a small constant.
    ``source`` may be a whole string or any iterable of lines (e.g. an open
    file handle), and ``strict=True`` rejects truncated or duplicate-driver
    sections instead of tolerating them -- see :func:`_iter_net_sections`.
    """
    for section in _iter_net_sections(source, strict=strict):
        yield _net_to_flat(section)


def spef_to_forest(text: str):
    """Parse a whole SPEF file into one batched :class:`~repro.flat.FlatForest`.

    Returns ``(forest, nets)`` where ``nets`` is the list of
    :class:`SpefNet` records in file order (``forest`` member ``i`` is
    ``nets[i]``).  All nets are then solved together by the forest's shared
    level sweeps -- the bulk path for scoring every net of an extracted design
    without per-net Python traversals.
    """
    from repro.flat import FlatForest

    nets = list(iter_spef_nets(text))
    if not nets:
        raise ParseError("the SPEF text contains no *D_NET sections")
    return FlatForest([net.to_flat_tree() for net in nets]), nets


def read_spef(path, **kwargs) -> Dict[str, RCTree]:
    """Read a SPEF file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return spef_to_trees(handle.read(), **kwargs)
