"""Read the simplified SPEF subset back into RC trees.

The reader understands the sections emitted by :mod:`repro.spef.writer` --
header unit statements, ``*D_NET`` with ``*CONN`` / ``*CAP`` / ``*RES`` --
plus files written by other tools as long as every net's resistor graph is a
tree and every capacitor is a ground capacitor (one node per ``*CAP`` line).
Coupling caps (two nodes on a ``*CAP`` line) raise a ``TopologyError``.

The tree root for each net is the ``*I``-direction connection when present,
otherwise the first connection listed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.exceptions import ParseError, TopologyError
from repro.core.tree import RCTree
from repro.utils.units import parse_engineering


@dataclass
class _NetSection:
    name: str
    total_cap: float
    connections: List[Tuple[str, str, str]] = field(default_factory=list)  # (kind, pin, direction)
    caps: List[Tuple[str, Optional[str], float]] = field(default_factory=list)
    resistors: List[Tuple[str, str, float]] = field(default_factory=list)


def _parse_units(lines: List[str]) -> Dict[str, float]:
    units = {"C": 1e-12, "R": 1.0, "T": 1e-9}
    for line in lines:
        fields = line.split()
        if len(fields) >= 3 and fields[0] in ("*C_UNIT", "*R_UNIT", "*T_UNIT"):
            value = parse_engineering(fields[1])
            unit_name = fields[2].upper()
            scale = {
                "PF": 1e-12,
                "FF": 1e-15,
                "NF": 1e-9,
                "UF": 1e-6,
                "F": 1.0,
                "OHM": 1.0,
                "KOHM": 1e3,
                "NS": 1e-9,
                "PS": 1e-12,
            }.get(unit_name)
            if scale is None:
                raise ParseError(f"unsupported SPEF unit {unit_name!r}")
            units[fields[0][1]] = value * scale
    return units


def spef_to_trees(text: str, *, root_name: str = "in") -> Dict[str, RCTree]:
    """Parse a SPEF string into a mapping net name -> :class:`RCTree`."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    units = _parse_units(lines)

    nets: List[_NetSection] = []
    current: Optional[_NetSection] = None
    mode = None
    for number, line in enumerate(lines, start=1):
        fields = line.split()
        keyword = fields[0].upper()
        if keyword == "*D_NET":
            if len(fields) < 3:
                raise ParseError("malformed *D_NET line", line=number)
            current = _NetSection(name=fields[1], total_cap=float(fields[2]) * units["C"])
            nets.append(current)
            mode = None
        elif keyword == "*CONN":
            mode = "conn"
        elif keyword == "*CAP":
            mode = "cap"
        elif keyword == "*RES":
            mode = "res"
        elif keyword == "*END":
            current = None
            mode = None
        elif current is not None:
            if mode == "conn" and keyword in ("*I", "*P"):
                direction = fields[2] if len(fields) > 2 else "B"
                current.connections.append((keyword, fields[1], direction))
            elif mode == "cap":
                if len(fields) == 3:
                    current.caps.append((fields[1], None, float(fields[2]) * units["C"]))
                elif len(fields) >= 4:
                    current.caps.append((fields[1], fields[2], float(fields[3]) * units["C"]))
                else:
                    raise ParseError("malformed *CAP entry", line=number)
            elif mode == "res":
                if len(fields) < 4:
                    raise ParseError("malformed *RES entry", line=number)
                current.resistors.append((fields[1], fields[2], float(fields[3]) * units["R"]))
        # Header lines and anything outside a net section are ignored.

    trees: Dict[str, RCTree] = {}
    for net in nets:
        trees[net.name] = _net_to_tree(net, root_name=root_name)
    return trees


def _strip_net_prefix(pin: str, net: str) -> str:
    for delimiter in ("/", ":"):
        prefix = f"{net}{delimiter}"
        if pin.startswith(prefix):
            return pin[len(prefix):]
    return pin


def _net_to_tree(net: _NetSection, *, root_name: str) -> RCTree:
    adjacency: Dict[str, List[Tuple[str, float]]] = {}
    for n1, n2, value in net.resistors:
        a = _strip_net_prefix(n1, net.name)
        b = _strip_net_prefix(n2, net.name)
        adjacency.setdefault(a, []).append((b, value))
        adjacency.setdefault(b, []).append((a, value))

    driver = None
    for kind, pin, direction in net.connections:
        if kind == "*I" or direction.upper() == "I":
            driver = _strip_net_prefix(pin, net.name)
            break
    if driver is None and net.connections:
        driver = _strip_net_prefix(net.connections[0][1], net.name)
    if driver is None:
        raise ParseError(f"net {net.name!r} has no *CONN section to locate its driver")
    if driver not in adjacency and adjacency:
        # The writer emits the driver pin as <net>:DRV while the resistor
        # spine starts at the tree root node; fall back to the resistor node
        # that appears only once (a topological root candidate).
        if driver.upper() == "DRV":
            driver = _strip_net_prefix(net.resistors[0][0], net.name)
        else:
            raise TopologyError(
                f"driver pin {driver!r} of net {net.name!r} does not touch any resistor"
            )

    tree = RCTree(root_name)
    rename = {driver: root_name}

    def node_name(node: str) -> str:
        return rename.get(node, node)

    visited = {driver}
    queue = [driver]
    while queue:
        currentnode = queue.pop(0)
        for neighbour, value in adjacency.get(currentnode, []):
            if neighbour in visited:
                continue
            visited.add(neighbour)
            tree.add_resistor(node_name(currentnode), node_name(neighbour), value)
            queue.append(neighbour)

    # Loop detection: a tree with V nodes has V-1 edges.
    if adjacency and len(net.resistors) != len(visited) - 1:
        raise TopologyError(
            f"net {net.name!r} has {len(net.resistors)} resistors over {len(visited)} nodes; "
            "the parasitic network is not a tree"
        )

    for n1, n2, value in net.caps:
        if n2 is not None:
            raise TopologyError(
                f"net {net.name!r} contains a coupling capacitor ({n1} to {n2}); "
                "RC-tree analysis only supports grounded capacitors"
            )
        node = _strip_net_prefix(n1, net.name)
        if node not in visited:
            raise TopologyError(
                f"capacitor node {node!r} of net {net.name!r} is not connected to the driver"
            )
        tree.add_capacitor(node_name(node), value)

    for kind, pin, direction in net.connections:
        if direction.upper() == "O":
            node = _strip_net_prefix(pin, net.name)
            if node in visited:
                tree.mark_output(node_name(node))
    if not tree.outputs:
        for leaf in tree.leaves():
            tree.mark_output(leaf)
    return tree


def read_spef(path, **kwargs) -> Dict[str, RCTree]:
    """Read a SPEF file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return spef_to_trees(handle.read(), **kwargs)
