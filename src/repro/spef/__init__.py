"""Simplified SPEF (Standard Parasitic Exchange Format) interchange.

SPEF is how modern EDA flows hand extracted parasitics to static timing
analysis -- the direct industrial descendant of the paper's RC trees.  This
package reads and writes a well-formed subset of IEEE 1481 SPEF: the header,
one ``*D_NET`` section per net with ``*CONN`` / ``*CAP`` / ``*RES`` blocks.
Coupling capacitors are not supported (the RC-tree theory has no place for
them); they are rejected on read.
"""

from repro.spef.writer import tree_to_spef, write_spef
from repro.spef.reader import spef_to_trees, read_spef

__all__ = ["tree_to_spef", "write_spef", "spef_to_trees", "read_spef"]
