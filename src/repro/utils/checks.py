"""Argument-validation helpers shared across the library.

Each helper raises ``ValueError`` with a message naming the offending
argument, so callers can simply write::

    require_positive("resistance", resistance)

and get a consistent error message everywhere.
"""

from __future__ import annotations

import math
from typing import Iterable


def require_finite(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite real number."""
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is finite and ``>= 0``."""
    value = require_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def require_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is finite and ``> 0``."""
    value = require_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_in_unit_interval(name: str, value: float, *, open_ends: bool = False) -> float:
    """Raise ``ValueError`` unless ``value`` lies in ``[0, 1]`` (or ``(0, 1)``).

    The Penfield-Rubinstein bound formulas are only meaningful for voltage
    thresholds strictly between 0 and 1 (the paper itself notes its APL
    functions "fail ... for V = 0"), so several callers use
    ``open_ends=True``.
    """
    value = require_finite(name, value)
    if open_ends:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be strictly between 0 and 1, got {value!r}")
    else:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def require_sorted(name: str, values: Iterable[float]) -> list:
    """Raise ``ValueError`` unless ``values`` is non-decreasing."""
    out = [require_finite(f"{name} entry", v) for v in values]
    for a, b in zip(out, out[1:]):
        if b < a:
            raise ValueError(f"{name} must be sorted in non-decreasing order")
    return out
