"""Engineering-notation helpers.

EDA tools juggle values spanning ~20 orders of magnitude (femtofarads to
kiloohms, picoseconds to milliseconds).  These helpers convert between raw
floats and human-readable engineering notation, and between the SI prefixes
used by SPICE decks (``k``, ``meg``, ``u``, ``n``, ``p``, ``f``) and plain
floats.
"""

from __future__ import annotations

import math

#: Mapping from SI prefix symbol to multiplier.  ``meg`` is included because
#: SPICE uses ``meg`` for 1e6 (``m`` means milli in SPICE decks).
SI_PREFIXES = {
    "T": 1e12,
    "G": 1e9,
    "MEG": 1e6,
    "meg": 1e6,
    "M": 1e6,
    "k": 1e3,
    "K": 1e3,
    "": 1.0,
    "m": 1e-3,
    "u": 1e-6,
    "U": 1e-6,
    "µ": 1e-6,
    "n": 1e-9,
    "N": 1e-9,
    "p": 1e-12,
    "P": 1e-12,
    "f": 1e-15,
    "F": 1e-15,
    "a": 1e-18,
}

# Ordered prefixes used when *formatting* (unambiguous, descending).
_FORMAT_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def format_engineering(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with an engineering SI prefix.

    >>> format_engineering(1.8e-10, "s")
    '180 ps'
    >>> format_engineering(380.0, "ohm")
    '380 ohm'
    >>> format_engineering(0.0, "F")
    '0 F'
    """
    if value == 0:
        return f"0 {unit}".rstrip()
    if math.isnan(value):
        return f"nan {unit}".rstrip()
    if math.isinf(value):
        sign = "-" if value < 0 else ""
        return f"{sign}inf {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _FORMAT_PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.{digits}g} {prefix}{unit}"
            return text.rstrip()
    scale, prefix = _FORMAT_PREFIXES[-1]
    scaled = value / scale
    return f"{scaled:.{digits}g} {prefix}{unit}".rstrip()


def parse_engineering(text: str) -> float:
    """Parse a SPICE-style engineering-notation number.

    Accepts plain floats (``1e-12``), prefixed values (``1.5k``, ``10p``,
    ``3meg``) and values with a trailing unit (``10pF``, ``30ohm``) -- any
    alphabetic characters after the prefix are ignored, matching SPICE
    semantics.

    >>> parse_engineering("1.5k")
    1500.0
    >>> parse_engineering("10pF")
    1e-11
    >>> parse_engineering("3meg")
    3000000.0
    """
    text = text.strip()
    if not text:
        raise ValueError("cannot parse an empty string as a number")
    # Greedily take the numeric head: sign, digits, dot, exponent.
    idx = 0
    seen_exp = False
    while idx < len(text):
        ch = text[idx]
        if ch.isdigit() or ch in "+-.":
            idx += 1
            continue
        if ch in "eE" and not seen_exp:
            # Only treat as exponent if followed by a digit or sign+digit.
            rest = text[idx + 1 : idx + 3]
            if rest and (rest[0].isdigit() or (rest[0] in "+-" and len(rest) > 1 and rest[1].isdigit())):
                seen_exp = True
                idx += 1
                continue
        break
    head, tail = text[:idx], text[idx:]
    if not head:
        raise ValueError(f"no numeric value found in {text!r}")
    value = float(head)
    tail = tail.strip()
    if not tail:
        return value
    # SPICE-style: "meg" must be checked before "m".
    lowered = tail.lower()
    if lowered.startswith("meg"):
        return value * 1e6
    prefix = tail[0]
    if prefix in SI_PREFIXES:
        return value * SI_PREFIXES[prefix]
    # No recognised prefix: the tail is a bare unit such as "ohm" or "V".
    return value


def seconds_to_ns(value: float) -> float:
    """Convert seconds to nanoseconds."""
    return value * 1e9


def ns_to_seconds(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9
