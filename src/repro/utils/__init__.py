"""Shared utilities: engineering units, validation helpers, table formatting.

These helpers are deliberately small and dependency-free so every other
subpackage (core model, simulator, extraction, STA) can use them without
import cycles.
"""

from repro.utils.units import (
    SI_PREFIXES,
    format_engineering,
    parse_engineering,
    seconds_to_ns,
    ns_to_seconds,
)
from repro.utils.checks import (
    require_finite,
    require_non_negative,
    require_positive,
    require_in_unit_interval,
)
from repro.utils.tables import Table, format_table

__all__ = [
    "SI_PREFIXES",
    "format_engineering",
    "parse_engineering",
    "seconds_to_ns",
    "ns_to_seconds",
    "require_finite",
    "require_non_negative",
    "require_positive",
    "require_in_unit_interval",
    "Table",
    "format_table",
]
