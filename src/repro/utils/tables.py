"""Lightweight plain-text table formatting.

The experiment harness reproduces the paper's tables (Fig. 10, Fig. 13) as
rows of numbers printed to the terminal; this module provides the minimal
column-aligned rendering used by ``repro.experiments`` and the benchmark
harnesses, with no third-party dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


def _render_cell(value, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class Table:
    """A small column-aligned table.

    Parameters
    ----------
    headers:
        Column titles.
    precision:
        Number of significant digits used for float cells.
    title:
        Optional table title printed above the header row.
    """

    headers: Sequence[str]
    precision: int = 6
    title: str = ""
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, values: Iterable) -> None:
        """Append one row; values are formatted immediately."""
        row = [_render_cell(v, self.precision) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as an aligned plain-text block."""
        columns = [list(col) for col in zip(self.headers, *self.rows)] if self.rows else [
            [h] for h in self.headers
        ]
        widths = [max(len(cell) for cell in col) for col in columns]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.rjust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_table(headers: Sequence[str], rows: Iterable[Iterable], *, precision: int = 6, title: str = "") -> str:
    """One-shot helper: build a :class:`Table` and render it."""
    table = Table(headers=headers, precision=precision, title=title)
    for row in rows:
        table.add_row(row)
    return table.render()
