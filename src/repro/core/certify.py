"""Timing certification -- the paper's ``OK`` function (Fig. 9) generalised.

The paper frames one use of the bounds as: *"certify that a circuit is 'fast
enough', given both the maximum delay and the voltage threshold."*  Its APL
``OK`` function returns ``1`` when the circuit is certainly fast enough
(``TMAX <= T``), ``-1`` when it certainly is not (``T < TMIN``), and ``0``
when the bounds are too loose to decide.

This module reproduces that ternary verdict as :class:`Verdict`, and adds the
quantities an engineer acts on: the guaranteed/possible slack against the
deadline and a per-output report across a whole tree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.bounds import DelayBounds, delay_bounds
from repro.core.timeconstants import CharacteristicTimes, characteristic_times_all
from repro.core.tree import RCTree
from repro.utils.checks import require_in_unit_interval, require_non_negative


class Verdict(enum.IntEnum):
    """Ternary certification verdict, numerically identical to the paper's ``OK``."""

    #: The upper delay bound meets the deadline: guaranteed fast enough.
    PASS = 1
    #: The bounds straddle the deadline: cannot tell without exact analysis.
    INDETERMINATE = 0
    #: Even the lower delay bound misses the deadline: guaranteed too slow.
    FAIL = -1


@dataclass(frozen=True)
class Certificate:
    """Result of certifying one output against (threshold, deadline).

    Attributes
    ----------
    output:
        Output node name.
    threshold:
        Voltage threshold (fraction of the final value) that must be reached.
    deadline:
        Time (seconds) by which the threshold must be reached.
    bounds:
        The delay bounds used for the decision.
    verdict:
        :class:`Verdict` -- PASS, FAIL or INDETERMINATE.
    """

    output: str
    threshold: float
    deadline: float
    bounds: DelayBounds
    verdict: Verdict

    @property
    def guaranteed_slack(self) -> float:
        """Worst-case slack: ``deadline - upper_bound``.  Non-negative iff PASS."""
        return self.deadline - self.bounds.upper

    @property
    def optimistic_slack(self) -> float:
        """Best-case slack: ``deadline - lower_bound``.  Negative iff FAIL."""
        return self.deadline - self.bounds.lower

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.output}: {self.verdict.name} at v={self.threshold:g}, "
            f"deadline={self.deadline:.4g} s, bounds=[{self.bounds.lower:.4g}, "
            f"{self.bounds.upper:.4g}] s, guaranteed slack={self.guaranteed_slack:.4g} s"
        )


def certify(times: CharacteristicTimes, threshold: float, deadline: float) -> Certificate:
    """Certify one output described by ``times`` against a threshold and deadline.

    Mirrors the paper's ``OK``: PASS when ``t_max <= deadline``, FAIL when
    ``deadline < t_min``, INDETERMINATE otherwise.
    """
    threshold = require_in_unit_interval("threshold", threshold)
    deadline = require_non_negative("deadline", deadline)
    bounds = delay_bounds(times, threshold)
    if bounds.upper <= deadline:
        verdict = Verdict.PASS
    elif deadline < bounds.lower:
        verdict = Verdict.FAIL
    else:
        verdict = Verdict.INDETERMINATE
    return Certificate(
        output=times.output,
        threshold=threshold,
        deadline=deadline,
        bounds=bounds,
        verdict=verdict,
    )


def certify_tree(
    tree: RCTree,
    threshold: float,
    deadline: float,
    outputs: Optional[Iterable[str]] = None,
) -> Dict[str, Certificate]:
    """Certify every output of ``tree`` (marked outputs by default) in one pass."""
    all_times = characteristic_times_all(tree, outputs)
    return {
        name: certify(times, threshold, deadline) for name, times in all_times.items()
    }


def worst_output(certificates: Dict[str, Certificate]) -> Certificate:
    """Return the certificate with the smallest guaranteed slack (the critical output)."""
    if not certificates:
        raise ValueError("no certificates to compare")
    return min(certificates.values(), key=lambda cert: cert.guaranteed_slack)
