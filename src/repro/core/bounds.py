"""The Penfield-Rubinstein delay and voltage bounds (paper, Section III, eqs. 8-17).

Given the characteristic times ``T_P``, ``T_De``, ``T_Re`` and ``R_ee`` of an
output, the unit-step response ``v_e(t)`` (which rises monotonically from 0
to 1) is bracketed by closed-form envelopes, and -- because the response is
monotonic -- the time at which a voltage threshold ``v`` is crossed is
bracketed by the inverted envelopes.

Voltage bounds
--------------
Upper bounds (the tightest of the two is used at each ``t``):

* eq. (8)  ``v_e(t) <= 1 - (T_De - t) / T_P``               (tightest for small t)
* eq. (9)  ``v_e(t) <= 1 - (T_De / T_P) exp(-t / T_Re)``    (tightest for large t)

Lower bounds (piecewise, by region of ``t``):

* eq. (10) ``v_e(t) >= 0``                                  for ``t <= T_De - T_Re``
* eq. (11) ``v_e(t) >= 1 - T_De / (t + T_Re)``              for ``T_De - T_Re <= t <= T_P - T_Re``
* eq. (12) ``v_e(t) >= 1 - (T_De / T_P) exp(-(t - T_P + T_Re) / T_P)``  for ``t >= T_P - T_Re``

Delay bounds (time to reach threshold ``v``)
--------------------------------------------
Lower bounds (from inverting the upper voltage bounds):

* eq. (13) ``t >= 0``
* eq. (14) ``t >= T_De - T_P (1 - v)``
* eq. (15) ``t >= T_Re ln( T_De / (T_P (1 - v)) )``

Upper bounds (from inverting the lower voltage bounds):

* eq. (16) ``t <= T_De / (1 - v) - T_Re``
* eq. (17) ``t <= T_P - T_Re + T_P ln( T_De / (T_P (1 - v)) )``   (only when ``v >= 1 - T_De/T_P``)

The functions here mirror the paper's APL listings ``VMIN``, ``VMAX``,
``TMIN``, ``TMAX`` (Fig. 9) exactly -- including the clamping with 0 and the
conditional applicability of eqs. (12) and (17) -- and reproduce the numeric
table of Fig. 10 to print precision (see ``repro.experiments.figure10``).

All functions accept either a scalar or a sequence/array for the time or
threshold argument and return a float or ``numpy.ndarray`` correspondingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

import numpy as np

from repro.core.exceptions import AnalysisError, DegenerateNetworkError
from repro.core.timeconstants import CharacteristicTimes

ArrayLike = Union[float, Sequence[float], np.ndarray]


@dataclass(frozen=True)
class DelayBounds:
    """Lower and upper bounds on the time to reach a voltage threshold."""

    threshold: float
    lower: float
    upper: float

    @property
    def width(self) -> float:
        """Absolute bound gap ``upper - lower`` (seconds)."""
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        """Midpoint estimate ``(lower + upper) / 2`` (seconds)."""
        return 0.5 * (self.lower + self.upper)

    @property
    def relative_width(self) -> float:
        """Bound gap relative to the midpoint (dimensionless)."""
        mid = self.midpoint
        return self.width / mid if mid > 0 else 0.0


@dataclass(frozen=True)
class VoltageBounds:
    """Lower and upper bounds on the step response voltage at a given time."""

    time: float
    lower: float
    upper: float

    @property
    def width(self) -> float:
        """Absolute bound gap (volts, for a 1 V step)."""
        return self.upper - self.lower


def _as_array(value: ArrayLike):
    array = np.asarray(value, dtype=float)
    return array, array.ndim == 0


def _check_times(times: CharacteristicTimes) -> None:
    if times.total_capacitance <= 0.0:
        raise DegenerateNetworkError(
            "the network has no capacitance; the step response is instantaneous "
            "and the bound formulas are undefined"
        )
    if times.tp <= 0.0:
        raise DegenerateNetworkError(
            "T_P is zero (no capacitance sees any resistance); the bound formulas are undefined"
        )


def _check_threshold(threshold: ArrayLike) -> np.ndarray:
    array = np.asarray(threshold, dtype=float)
    if np.any(~np.isfinite(array)):
        raise AnalysisError("voltage thresholds must be finite")
    if np.any(array < 0.0) or np.any(array >= 1.0):
        raise AnalysisError(
            "voltage thresholds must lie in [0, 1); the response only reaches 1 asymptotically"
        )
    return array


def _check_time(time: ArrayLike) -> np.ndarray:
    array = np.asarray(time, dtype=float)
    if np.any(~np.isfinite(array)):
        raise AnalysisError("times must be finite")
    if np.any(array < 0.0):
        raise AnalysisError("times must be non-negative (the step is applied at t = 0)")
    return array


# ----------------------------------------------------------------------
# Voltage bounds, eqs. (8)-(12)
# ----------------------------------------------------------------------
def voltage_upper_bound(times: CharacteristicTimes, time: ArrayLike) -> Union[float, np.ndarray]:
    """Upper bound on the unit-step response at ``time`` -- min of eqs. (8) and (9)."""
    _check_times(times)
    t, scalar = _as_array(_check_time(time))
    if times.tde <= 0.0:
        # Output is resistively isolated from every capacitor: instantaneous response.
        result = np.ones_like(t)
        return float(result) if scalar else result
    linear = 1.0 - (times.tde - t) / times.tp  # eq. (8)
    if times.tre > 0.0:
        exponential = 1.0 - (times.tde / times.tp) * np.exp(-t / times.tre)  # eq. (9)
    else:
        # T_Re = 0 only when the output sits at the input; eq. (9) degenerates
        # to the exact instantaneous response for t > 0.
        exponential = np.where(t > 0.0, 1.0, 1.0 - times.tde / times.tp)
    result = np.minimum(linear, exponential)
    result = np.clip(result, 0.0, 1.0)
    return float(result) if scalar else result


def voltage_lower_bound(times: CharacteristicTimes, time: ArrayLike) -> Union[float, np.ndarray]:
    """Lower bound on the unit-step response at ``time`` -- max of eqs. (10), (11), (12)."""
    _check_times(times)
    t, scalar = _as_array(_check_time(time))
    if times.tde <= 0.0:
        result = np.ones_like(t)
        return float(result) if scalar else result
    with np.errstate(divide="ignore"):
        hyperbolic = 1.0 - times.tde / (t + times.tre)  # eq. (11); eq. (10) via the clamp below
    threshold_time = times.tp - times.tre
    with np.errstate(over="ignore"):
        exponential = 1.0 - (times.tde / times.tp) * np.exp(-(t - threshold_time) / times.tp)  # eq. (12)
    exponential = np.where(t >= threshold_time, exponential, 0.0)
    result = np.maximum.reduce([np.zeros_like(t), hyperbolic, exponential])
    result = np.clip(result, 0.0, 1.0)
    return float(result) if scalar else result


def voltage_bounds(times: CharacteristicTimes, time: float) -> VoltageBounds:
    """Both voltage bounds at a single time, as a :class:`VoltageBounds` record."""
    return VoltageBounds(
        time=float(time),
        lower=float(voltage_lower_bound(times, time)),
        upper=float(voltage_upper_bound(times, time)),
    )


# ----------------------------------------------------------------------
# Delay bounds, eqs. (13)-(17)
# ----------------------------------------------------------------------
def delay_lower_bound(times: CharacteristicTimes, threshold: ArrayLike) -> Union[float, np.ndarray]:
    """Lower bound on the time to reach ``threshold`` -- max of eqs. (13), (14), (15)."""
    _check_times(times)
    v, scalar = _as_array(_check_threshold(threshold))
    if times.tde <= 0.0:
        result = np.zeros_like(v)
        return float(result) if scalar else result
    linear = times.tde - times.tp * (1.0 - v)  # eq. (14)
    log_term = np.log(times.tde / (times.tp * (1.0 - v)))
    logarithmic = times.tre * log_term  # eq. (15)
    result = np.maximum.reduce([np.zeros_like(v), linear, logarithmic])
    return float(result) if scalar else result


def delay_upper_bound(times: CharacteristicTimes, threshold: ArrayLike) -> Union[float, np.ndarray]:
    """Upper bound on the time to reach ``threshold`` -- min of eqs. (16), (17)."""
    _check_times(times)
    v, scalar = _as_array(_check_threshold(threshold))
    if times.tde <= 0.0:
        result = np.zeros_like(v)
        return float(result) if scalar else result
    hyperbolic = times.tde / (1.0 - v) - times.tre  # eq. (16)
    log_term = np.log(times.tde / (times.tp * (1.0 - v)))
    # eq. (17) applies only when v >= 1 - T_De/T_P, i.e. when log_term >= 0;
    # the paper's TMAX listing expresses this as subtracting min(0, -T_P*log_term).
    exponential = times.tp - times.tre + times.tp * np.maximum(log_term, 0.0)
    result = np.minimum(hyperbolic, exponential)
    result = np.maximum(result, 0.0)
    return float(result) if scalar else result


def delay_bounds(times: CharacteristicTimes, threshold: float) -> DelayBounds:
    """Both delay bounds for a single threshold, as a :class:`DelayBounds` record."""
    return DelayBounds(
        threshold=float(threshold),
        lower=float(delay_lower_bound(times, threshold)),
        upper=float(delay_upper_bound(times, threshold)),
    )


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def delay_bound_table(times: CharacteristicTimes, thresholds: Iterable[float]):
    """Return ``[(v, t_min, t_max), ...]`` for a sweep of thresholds (Fig. 10, upper table)."""
    rows = []
    for v in thresholds:
        bounds = delay_bounds(times, v)
        rows.append((float(v), bounds.lower, bounds.upper))
    return rows


def voltage_bound_table(times: CharacteristicTimes, sample_times: Iterable[float]):
    """Return ``[(t, v_min, v_max), ...]`` for a sweep of times (Fig. 10, lower table)."""
    rows = []
    for t in sample_times:
        bounds = voltage_bounds(times, t)
        rows.append((float(t), bounds.lower, bounds.upper))
    return rows


# ----------------------------------------------------------------------
# Object-oriented facade
# ----------------------------------------------------------------------
class BoundedResponse:
    """Bound envelopes of one output, wrapped as a callable-friendly object.

    This is the object most examples use: it memoises the characteristic
    times of an output and exposes ``vmin/vmax/tmin/tmax`` plus certification
    against a (threshold, deadline) requirement.
    """

    def __init__(self, times: CharacteristicTimes):
        _check_times(times)
        times.check_ordering()
        self._times = times

    @property
    def times(self) -> CharacteristicTimes:
        """The underlying characteristic times."""
        return self._times

    @property
    def output(self) -> str:
        """Name of the output node."""
        return self._times.output

    def vmin(self, time: ArrayLike) -> Union[float, np.ndarray]:
        """Lower bound on the response voltage at ``time``."""
        return voltage_lower_bound(self._times, time)

    def vmax(self, time: ArrayLike) -> Union[float, np.ndarray]:
        """Upper bound on the response voltage at ``time``."""
        return voltage_upper_bound(self._times, time)

    def tmin(self, threshold: ArrayLike) -> Union[float, np.ndarray]:
        """Lower bound on the delay to ``threshold``."""
        return delay_lower_bound(self._times, threshold)

    def tmax(self, threshold: ArrayLike) -> Union[float, np.ndarray]:
        """Upper bound on the delay to ``threshold``."""
        return delay_upper_bound(self._times, threshold)

    def delay_bounds(self, threshold: float) -> DelayBounds:
        """Both delay bounds at ``threshold``."""
        return delay_bounds(self._times, threshold)

    def voltage_bounds(self, time: float) -> VoltageBounds:
        """Both voltage bounds at ``time``."""
        return voltage_bounds(self._times, time)

    def envelope(self, t_end: float, points: int = 200):
        """Sample both envelopes over ``[0, t_end]``.

        Returns ``(t, vmin, vmax)`` as numpy arrays -- the data behind the
        paper's Fig. 5 / Fig. 11 plots.
        """
        if t_end <= 0:
            raise AnalysisError("t_end must be positive")
        t = np.linspace(0.0, float(t_end), int(points))
        return t, self.vmin(t), self.vmax(t)

    def worst_case_delay(self, threshold: float) -> float:
        """Guaranteed (pessimistic) delay: the upper bound at ``threshold``."""
        return float(self.tmax(threshold))

    def best_case_delay(self, threshold: float) -> float:
        """Optimistic delay: the lower bound at ``threshold``."""
        return float(self.tmin(threshold))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        t = self._times
        return (
            f"BoundedResponse(output={t.output!r}, T_P={t.tp:.4g}, "
            f"T_De={t.tde:.4g}, T_Re={t.tre:.4g})"
        )
