"""Path resistance and shared-path resistance (paper, Section III, Fig. 3).

The three resistances that drive the whole theory are:

* ``R_kk`` -- the resistance of the unique path from the input to node ``k``;
* ``R_ee`` -- the same for the output ``e`` (a special case of ``R_kk``);
* ``R_ke`` -- the resistance of the portion of the input-to-``e`` path that is
  *common* with the input-to-``k`` path.  Topologically this is the
  input-to-LCA(k, e) resistance.

The paper's Figure 3 example: with the output reached through ``R1, R2, R5``
and node ``k`` reached through ``R1, R2, R3``, one has ``R_ke = R1 + R2``,
``R_kk = R1 + R2 + R3`` and ``R_ee = R1 + R2 + R5`` -- the test-suite checks
exactly this case.

For distributed URC lines the "node" is a continuum of points along the
line; the helpers here return the resistance *to the near end* of a line plus
the line's own resistance where appropriate, and the integral contributions
over distributed capacitance are handled in :mod:`repro.core.timeconstants`.
"""

from __future__ import annotations

from typing import Dict

from repro.core.tree import RCTree


def path_resistance(tree: RCTree, node: str) -> float:
    """Return ``R_kk``: total resistance of the unique input-to-``node`` path.

    Distributed lines on the path contribute their full resistance.
    """
    return sum(edge.resistance for edge in tree.path_edges(node))


def all_path_resistances(tree: RCTree) -> Dict[str, float]:
    """Return ``R_kk`` for every node in a single O(N) pre-order traversal."""
    resistances: Dict[str, float] = {tree.root: 0.0}
    for name in tree.preorder():
        if name == tree.root:
            continue
        edge = tree.parent_edge(name)
        resistances[name] = resistances[edge.parent] + edge.resistance
    return resistances


def shared_path_resistance(tree: RCTree, k: str, e: str) -> float:
    """Return ``R_ke``: resistance common to the input->``k`` and input->``e`` paths.

    Satisfies ``R_ke <= R_kk`` and ``R_ke <= R_ee`` (paper, Section III).
    """
    ancestor = tree.lca(k, e)
    return path_resistance(tree, ancestor)


def shared_resistances_to_output(tree: RCTree, output: str) -> Dict[str, float]:
    """Return ``R_ke`` for every node ``k``, for a fixed output ``e``.

    Runs in O(N): nodes on the input-to-output path have ``R_ke = R_kk``;
    every node hanging off that path at branch point ``b`` has
    ``R_ke = R_bb``.
    """
    rkk = all_path_resistances(tree)
    on_path = set(tree.path_nodes(output))
    shared: Dict[str, float] = {}
    for name in tree.preorder():
        if name in on_path:
            shared[name] = rkk[name]
        else:
            parent = tree.parent_of(name)
            # The branch point's value has already been computed because
            # preorder visits parents before children.
            shared[name] = shared[parent]
    return shared


def resistance_between(tree: RCTree, a: str, b: str) -> float:
    """Resistance of the unique path between two arbitrary nodes ``a`` and ``b``.

    Equal to ``R_aa + R_bb - 2 R_ab``; useful for clock-skew style analyses
    where the quantity of interest is a node-to-node resistance rather than an
    input-to-node one.
    """
    r_aa = path_resistance(tree, a)
    r_bb = path_resistance(tree, b)
    r_ab = shared_path_resistance(tree, a, b)
    return r_aa + r_bb - 2.0 * r_ab
