"""Exception hierarchy for the RC-tree core model.

All library-specific errors derive from :class:`RCTreeError` so callers can
catch one base class.  More specific subclasses communicate *what* about the
network is wrong: topology problems (not a tree, unknown node), value
problems (negative resistance), or analysis problems (degenerate network with
no resistance or capacitance, which the paper's functions explicitly do not
handle).
"""

from __future__ import annotations


class RCTreeError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TopologyError(RCTreeError):
    """The network is not a valid RC tree (cycle, disconnected, re-parented node)."""


class UnknownNodeError(TopologyError, KeyError):
    """A node name was referenced that does not exist in the tree."""

    def __init__(self, name: str):
        super().__init__(f"unknown node {name!r}")
        self.name = name


class DuplicateNodeError(TopologyError):
    """A node name was added twice."""

    def __init__(self, name: str):
        super().__init__(f"node {name!r} already exists in the tree")
        self.name = name


class ElementValueError(RCTreeError, ValueError):
    """An element was given an invalid value (negative R or C, NaN, ...)."""


class DegenerateNetworkError(RCTreeError):
    """The network has no resistance or no capacitance.

    The bound formulas divide by ``T_P``, ``T_De`` and ``R_ee``; the paper
    notes that its APL listings "fail for networks without any resistances or
    capacitances".  This library raises this exception instead.
    """


class AnalysisError(RCTreeError):
    """An analysis could not be carried out (e.g. threshold outside the bounds' domain)."""


class ParseError(RCTreeError, ValueError):
    """A textual network description (expression, SPICE deck, SPEF file) is malformed."""

    def __init__(self, message: str, *, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column
