"""The RC tree network model (paper, Section II).

An :class:`RCTree` is a rooted tree of circuit nodes.  The root is the
*input*, driven by the step source (the output of the switching driver).
Every non-root node is connected to its parent by exactly one *branch
element*: a lumped :class:`~repro.core.elements.Resistor` or a distributed
:class:`~repro.core.elements.URCLine`.  Every node may additionally carry a
lumped grounded capacitance.  Any node can be declared an *output* -- the
paper stresses that "outputs may be taken anywhere in the tree".

The defining property exploited by all of the analysis code is that **there
is a unique path from any point in the tree to the input**.

This module holds only the topology and element values.  Analysis lives in
:mod:`repro.core.path` (path and shared-path resistances),
:mod:`repro.core.timeconstants` (``T_P``, ``T_De``, ``T_Re``) and
:mod:`repro.core.bounds` (the Penfield-Rubinstein bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.elements import Capacitor, Resistor, URCLine
from repro.core.exceptions import (
    DegenerateNetworkError,
    DuplicateNodeError,
    ElementValueError,
    TopologyError,
    UnknownNodeError,
)
from repro.utils.checks import require_non_negative

BranchElement = Union[Resistor, URCLine]


@dataclass
class Node:
    """A circuit node: a name, a lumped grounded capacitance, and an output flag."""

    name: str
    capacitance: float = 0.0
    is_output: bool = False

    def __post_init__(self):
        self.capacitance = require_non_negative("node capacitance", self.capacitance)


@dataclass(frozen=True)
class Edge:
    """A directed tree edge from ``parent`` to ``child`` carrying ``element``."""

    parent: str
    child: str
    element: BranchElement

    @property
    def resistance(self) -> float:
        """Total series resistance of the edge."""
        return self.element.resistance

    @property
    def capacitance(self) -> float:
        """Total (distributed) capacitance of the edge; zero for lumped resistors."""
        return self.element.capacitance

    @property
    def is_distributed(self) -> bool:
        """True when the edge is a URC line with both resistance and capacitance."""
        return isinstance(self.element, URCLine) and self.element.resistance > 0 and self.element.capacitance > 0


class RCTree:
    """A single-input RC tree network.

    Parameters
    ----------
    root:
        Name of the input node (default ``"in"``).  The input node is where
        the unit step is applied; it never carries capacitance that matters
        for the response (a capacitor directly at the input is driven by an
        ideal source and contributes nothing to any characteristic time,
        because its shared resistance with every output is zero -- it is
        still allowed, for fidelity with extracted netlists).

    Examples
    --------
    Build the paper's Figure 7 example network::

        tree = RCTree("in")
        tree.add_resistor("in", "a", 15.0)
        tree.add_capacitor("a", 2.0)
        tree.add_resistor("a", "b", 8.0)
        tree.add_capacitor("b", 7.0)
        tree.add_line("a", "out", resistance=3.0, capacitance=4.0)
        tree.add_capacitor("out", 9.0)
        tree.mark_output("out")
    """

    def __init__(self, root: str = "in"):
        self._root = root
        self._nodes: Dict[str, Node] = {root: Node(root)}
        self._parent: Dict[str, Edge] = {}
        self._children: Dict[str, List[str]] = {root: []}
        # Insertion order of node creation; gives deterministic traversals.
        self._order: List[str] = [root]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _ensure_known(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNodeError(name) from None

    def _create_node(self, name: str) -> Node:
        if name in self._nodes:
            raise DuplicateNodeError(name)
        node = Node(name)
        self._nodes[name] = node
        self._children[name] = []
        self._order.append(name)
        return node

    def add_node(self, name: str, capacitance: float = 0.0) -> Node:
        """Create a free-standing node (it must later be attached with an edge).

        Mostly useful for netlist readers; :meth:`add_resistor` and
        :meth:`add_line` create their child node automatically.
        """
        node = self._create_node(name)
        if capacitance:
            node.capacitance = require_non_negative("capacitance", capacitance)
        return node

    def _attach(self, parent: str, child: str, element: BranchElement) -> Edge:
        self._ensure_known(parent)
        if child not in self._nodes:
            self._create_node(child)
        elif child in self._parent:
            raise TopologyError(
                f"node {child!r} already has a parent ({self._parent[child].parent!r}); "
                "an RC tree node has exactly one path to the input"
            )
        elif child == self._root:
            raise TopologyError("the input node cannot be the child of an edge")
        if parent == child:
            raise TopologyError(f"self-loop on node {child!r} is not allowed")
        edge = Edge(parent, child, element)
        self._parent[child] = edge
        self._children[parent].append(child)
        return edge

    def add_resistor(self, parent: str, child: str, resistance: float) -> Edge:
        """Connect ``child`` to ``parent`` through a lumped resistor (ohms)."""
        return self._attach(parent, child, Resistor(resistance))

    def add_line(self, parent: str, child: str, resistance: float, capacitance: float) -> Edge:
        """Connect ``child`` to ``parent`` through a uniform distributed RC line.

        ``resistance`` and ``capacitance`` are the line totals (ohms, farads).
        """
        return self._attach(parent, child, URCLine(resistance, capacitance))

    def add_element(self, parent: str, child: str, element: BranchElement) -> Edge:
        """Connect ``child`` to ``parent`` through an existing element object."""
        if isinstance(element, Capacitor):
            raise ElementValueError(
                "a Capacitor cannot form a tree edge; use add_capacitor() to ground it at a node"
            )
        if not isinstance(element, (Resistor, URCLine)):
            raise ElementValueError(f"unsupported branch element {element!r}")
        return self._attach(parent, child, element)

    def add_capacitor(self, node: str, capacitance: float) -> None:
        """Add lumped grounded capacitance (farads) at ``node`` (accumulates)."""
        target = self._ensure_known(node)
        target.capacitance += require_non_negative("capacitance", capacitance)

    def set_capacitance(self, node: str, capacitance: float) -> None:
        """Replace the lumped grounded capacitance at ``node``."""
        target = self._ensure_known(node)
        target.capacitance = require_non_negative("capacitance", capacitance)

    def mark_output(self, node: str) -> None:
        """Declare ``node`` to be an output of interest."""
        self._ensure_known(node).is_output = True

    def unmark_output(self, node: str) -> None:
        """Remove the output flag from ``node``."""
        self._ensure_known(node).is_output = False

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> str:
        """Name of the input node."""
        return self._root

    @property
    def nodes(self) -> List[str]:
        """All node names, in creation order (root first)."""
        return list(self._order)

    @property
    def outputs(self) -> List[str]:
        """Names of nodes marked as outputs, in creation order."""
        return [name for name in self._order if self._nodes[name].is_output]

    @property
    def edges(self) -> List[Edge]:
        """All edges, in child-creation order."""
        return [self._parent[name] for name in self._order if name in self._parent]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        """Return the :class:`Node` record for ``name``."""
        return self._ensure_known(name)

    def node_capacitance(self, name: str) -> float:
        """Lumped grounded capacitance at ``name`` (farads)."""
        return self._ensure_known(name).capacitance

    def parent_edge(self, name: str) -> Optional[Edge]:
        """The edge connecting ``name`` to its parent, or ``None`` for the root."""
        self._ensure_known(name)
        return self._parent.get(name)

    def parent_of(self, name: str) -> Optional[str]:
        """Name of the parent node, or ``None`` for the root."""
        edge = self.parent_edge(name)
        return edge.parent if edge else None

    def children_of(self, name: str) -> List[str]:
        """Names of the children of ``name``, in attachment order."""
        self._ensure_known(name)
        return list(self._children[name])

    def is_leaf(self, name: str) -> bool:
        """True when ``name`` has no children."""
        return not self.children_of(name)

    def leaves(self) -> List[str]:
        """All leaf node names."""
        return [name for name in self._order if not self._children[name]]

    def depth(self, name: str) -> int:
        """Number of edges between ``name`` and the input."""
        depth = 0
        current = name
        self._ensure_known(name)
        while current != self._root:
            current = self._parent[current].parent
            depth += 1
        return depth

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def preorder(self, start: Optional[str] = None) -> Iterator[str]:
        """Yield node names root-first (parents before children)."""
        start = start or self._root
        self._ensure_known(start)
        stack = [start]
        while stack:
            name = stack.pop()
            yield name
            # Reverse so the first-attached child is visited first.
            stack.extend(reversed(self._children[name]))

    def postorder(self, start: Optional[str] = None) -> Iterator[str]:
        """Yield node names children-first (every child before its parent)."""
        start = start or self._root
        self._ensure_known(start)
        stack: List[Tuple[str, bool]] = [(start, False)]
        while stack:
            name, expanded = stack.pop()
            if expanded:
                yield name
                continue
            stack.append((name, True))
            for child in reversed(self._children[name]):
                stack.append((child, False))

    def ancestors(self, name: str) -> List[str]:
        """Nodes on the path from ``name`` (exclusive) up to the root (inclusive)."""
        self._ensure_known(name)
        result = []
        current = name
        while current != self._root:
            current = self._parent[current].parent
            result.append(current)
        return result

    def path_nodes(self, name: str) -> List[str]:
        """Nodes on the unique path from the input to ``name``, both inclusive."""
        return list(reversed(self.ancestors(name))) + [name]

    def path_edges(self, name: str) -> List[Edge]:
        """Edges on the unique path from the input to ``name``, in input-to-node order."""
        self._ensure_known(name)
        result = []
        current = name
        while current != self._root:
            edge = self._parent[current]
            result.append(edge)
            current = edge.parent
        result.reverse()
        return result

    def subtree_nodes(self, name: str) -> List[str]:
        """All nodes in the subtree rooted at ``name`` (including ``name``)."""
        return list(self.preorder(name))

    def lca(self, a: str, b: str) -> str:
        """Lowest common ancestor of nodes ``a`` and ``b``.

        The shared-path resistance ``R_ke`` of the paper is the input-to-LCA
        resistance, so this is the topological primitive behind eq. (1).
        """
        self._ensure_known(a)
        self._ensure_known(b)
        seen = set(self.path_nodes(a))
        current = b
        while current not in seen:
            current = self._parent[current].parent
        return current

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_capacitance(self) -> float:
        """Sum of all lumped node capacitance and distributed line capacitance (farads)."""
        lumped = sum(node.capacitance for node in self._nodes.values())
        distributed = sum(edge.capacitance for edge in self._parent.values())
        return lumped + distributed

    @property
    def total_resistance(self) -> float:
        """Sum of all branch resistance in the tree (ohms)."""
        return sum(edge.resistance for edge in self._parent.values())

    def subtree_capacitance(self, name: str) -> float:
        """Total capacitance at and below ``name`` (excluding the edge *into* ``name``)."""
        total = 0.0
        for node_name in self.preorder(name):
            total += self._nodes[node_name].capacitance
            if node_name != name:
                total += self._parent[node_name].capacitance
        return total

    # ------------------------------------------------------------------
    # Validation and transformation
    # ------------------------------------------------------------------
    def validate(self, *, require_capacitance: bool = False, require_resistance: bool = False) -> None:
        """Check structural invariants; raise :class:`TopologyError` on failure.

        The tree-ness of the network is enforced at construction time (a node
        cannot acquire two parents), so this primarily checks connectivity --
        every node must be reachable from the input -- plus optional
        non-degeneracy requirements used before running the bound formulas.
        """
        reachable = set(self.preorder())
        missing = [name for name in self._order if name not in reachable]
        if missing:
            raise TopologyError(
                f"nodes {missing!r} are not connected to the input {self._root!r}"
            )
        if require_capacitance and self.total_capacitance <= 0.0:
            raise DegenerateNetworkError("the network has no capacitance anywhere")
        if require_resistance and self.total_resistance <= 0.0:
            raise DegenerateNetworkError("the network has no resistance anywhere")

    def copy(self) -> "RCTree":
        """Deep-copy the tree (element objects are immutable and shared)."""
        clone = RCTree(self._root)
        clone._nodes[self._root].capacitance = self._nodes[self._root].capacitance
        clone._nodes[self._root].is_output = self._nodes[self._root].is_output
        for name in self._order:
            if name == self._root:
                continue
            edge = self._parent.get(name)
            if edge is None:
                clone.add_node(name)
            else:
                clone._attach(edge.parent, edge.child, edge.element)
            clone._nodes[name].capacitance = self._nodes[name].capacitance
            clone._nodes[name].is_output = self._nodes[name].is_output
        return clone

    def lumped(self, segments_per_line: int = 10, *, style: str = "pi") -> "RCTree":
        """Return an equivalent tree with every URC line replaced by lumped segments.

        Parameters
        ----------
        segments_per_line:
            Number of RC sections each distributed line is divided into.
        style:
            ``"pi"`` (default) splits each segment's capacitance half-and-half
            between its two end nodes; ``"L"`` puts each segment's full
            capacitance at its far end.  Pi sections converge faster and are
            what SPICE's ``URC`` expansion uses.

        The lumped tree is what the exact simulator (:mod:`repro.simulate`)
        operates on; as ``segments_per_line`` grows, its response converges
        to the distributed line's (see ``benchmarks/bench_ablation_segmentation``).
        """
        if segments_per_line < 1:
            raise ElementValueError("segments_per_line must be >= 1")
        if style not in ("pi", "L"):
            raise ElementValueError(f"unknown lumping style {style!r}; expected 'pi' or 'L'")
        clone = RCTree(self._root)
        clone._nodes[self._root].capacitance = self._nodes[self._root].capacitance
        clone._nodes[self._root].is_output = self._nodes[self._root].is_output
        for name in self._order:
            if name == self._root:
                continue
            node = self._nodes[name]
            edge = self._parent.get(name)
            if edge is None:
                clone.add_node(name, node.capacitance)
            elif not edge.is_distributed:
                # Lumped resistor, or a degenerate line: keep as a resistor and
                # move any line capacitance onto the child node.
                clone.add_resistor(edge.parent, name, edge.resistance)
                clone.set_capacitance(name, node.capacitance + edge.capacitance)
            else:
                seg_r = edge.resistance / segments_per_line
                seg_c = edge.capacitance / segments_per_line
                previous = edge.parent
                extra_child_cap = 0.0
                for index in range(segments_per_line):
                    is_last = index == segments_per_line - 1
                    current = name if is_last else f"{name}__seg{index + 1}"
                    clone.add_resistor(previous, current, seg_r)
                    if style == "pi":
                        # Half a segment's capacitance at each end of the segment.
                        if index == 0:
                            clone.add_capacitor(previous, seg_c / 2)
                        else:
                            clone.add_capacitor(previous, seg_c)
                        if is_last:
                            extra_child_cap = seg_c / 2
                    else:  # "L": all of the segment's capacitance at its far end
                        if is_last:
                            extra_child_cap = seg_c
                        else:
                            clone.add_capacitor(current, seg_c)
                    previous = current
                clone.set_capacitance(name, node.capacitance + extra_child_cap)
            clone._nodes[name].is_output = node.is_output
        return clone

    # ------------------------------------------------------------------
    # Interop / display
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export the tree as a ``networkx.DiGraph`` (edges carry ``resistance`` /
        ``capacitance`` attributes, nodes carry ``capacitance`` / ``is_output``)."""
        import networkx as nx

        graph = nx.DiGraph()
        for name in self._order:
            node = self._nodes[name]
            graph.add_node(name, capacitance=node.capacitance, is_output=node.is_output)
        for edge in self.edges:
            graph.add_edge(
                edge.parent,
                edge.child,
                resistance=edge.resistance,
                capacitance=edge.capacitance,
                distributed=edge.is_distributed,
            )
        return graph

    def describe(self) -> str:
        """Human-readable multi-line summary of the tree."""
        lines = [
            f"RCTree(root={self._root!r}, nodes={len(self._nodes)}, "
            f"edges={len(self._parent)}, outputs={len(self.outputs)})",
            f"  total resistance : {self.total_resistance:g} ohm",
            f"  total capacitance: {self.total_capacitance:g} F",
        ]
        for edge in self.edges:
            kind = "URC " if edge.is_distributed else "R   "
            lines.append(
                f"  {kind}{edge.parent} -> {edge.child}: "
                f"R={edge.resistance:g} C={edge.capacitance:g}"
            )
        for name in self._order:
            node = self._nodes[name]
            if node.capacitance or node.is_output:
                flag = " [output]" if node.is_output else ""
                lines.append(f"  C   {name}: {node.capacitance:g} F{flag}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"RCTree(root={self._root!r}, nodes={len(self._nodes)}, "
            f"edges={len(self._parent)}, outputs={len(self.outputs)})"
        )
