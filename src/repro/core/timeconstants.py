"""The three characteristic times ``T_P``, ``T_De`` and ``T_Re`` (paper, Section III).

For an RC tree driven by a unit step, with ``C_k`` the capacitance at node
``k`` (summations become integrals over distributed lines):

* ``T_P  = sum_k R_kk C_k``  -- eq. (5); identical for every output;
* ``T_De = sum_k R_ke C_k``  -- eq. (1); the first moment of the impulse
  response at output ``e``, i.e. the **Elmore delay**;
* ``T_Re = (sum_k R_ke^2 C_k) / R_ee`` -- eq. (6).

They always satisfy ``T_Re <= T_De <= T_P`` (eq. 7).  For a tree with no side
branches (a nonuniform RC line) ``T_De = T_P``; for a single uniform RC line
``T_P = T_De = RC/2`` and ``T_Re = RC/3``.

Two algorithms are provided, mirroring Section IV of the paper:

* :func:`characteristic_times` -- the direct "by inspection" computation for
  one output.  Computing all outputs this way costs O(N) per output, i.e.
  O(N^2) overall, which is the cost the paper attributes to the schematic-
  driven approach.
* :func:`characteristic_times_all` -- a two-pass O(N) computation of the
  times for *every* node at once, the Python analogue of the paper's
  linear-time constructive procedure (the construction algebra itself lives
  in :mod:`repro.algebra`).

Distributed URC lines are handled in closed form (no segmentation): a line of
total resistance ``R`` and capacitance ``C`` whose near end sees an upstream
path resistance ``R_u`` contributes

* on the path to the output: ``(R_u + R/2) C`` to ``T_De`` and ``T_P``, and
  ``(R_u^2 + R_u R + R^2/3) C`` to ``T_Re R_ee``;
* off the path (branch shared resistance ``R_s``): ``R_s C`` to ``T_De``,
  ``(R_u + R/2) C`` to ``T_P`` and ``R_s^2 C`` to ``T_Re R_ee``.

These are the integral forms of eqs. (1), (5), (6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.exceptions import AnalysisError, UnknownNodeError
from repro.core.path import all_path_resistances, shared_resistances_to_output
from repro.core.tree import RCTree

#: Relative tolerance used when checking the eq. (7) ordering numerically.
_ORDERING_RTOL = 1e-9


@dataclass(frozen=True)
class CharacteristicTimes:
    """The characteristic times of one output of an RC tree.

    Attributes
    ----------
    output:
        Name of the output node these times describe.
    tp:
        ``T_P`` (seconds) -- eq. (5); output-independent.
    tde:
        ``T_De`` (seconds) -- eq. (1); the Elmore delay of this output.
    tre:
        ``T_Re`` (seconds) -- eq. (6).
    ree:
        ``R_ee`` (ohms) -- input-to-output path resistance.
    total_capacitance:
        ``C_T`` (farads) -- total capacitance of the network.
    """

    output: str
    tp: float
    tde: float
    tre: float
    ree: float
    total_capacitance: float

    @property
    def elmore_delay(self) -> float:
        """Alias for ``T_De`` under its common modern name."""
        return self.tde

    @property
    def tre_ree(self) -> float:
        """The product ``T_Re * R_ee`` carried by the paper's APL programs."""
        return self.tre * self.ree

    def check_ordering(self) -> None:
        """Assert the eq. (7) ordering ``T_Re <= T_De <= T_P`` (with tolerance)."""
        slack = _ORDERING_RTOL * max(abs(self.tp), abs(self.tde), abs(self.tre), 1e-300)
        if not (self.tre <= self.tde + slack and self.tde <= self.tp + slack):
            raise AnalysisError(
                f"characteristic times violate T_Re <= T_De <= T_P: "
                f"T_Re={self.tre!r}, T_De={self.tde!r}, T_P={self.tp!r}"
            )

    def describe(self) -> str:
        """Short human-readable summary."""
        return (
            f"output {self.output!r}: T_P={self.tp:.6g} s, T_De={self.tde:.6g} s, "
            f"T_Re={self.tre:.6g} s, R_ee={self.ree:.6g} ohm, C_T={self.total_capacitance:.6g} F"
        )


def _line_on_path_contributions(upstream: float, resistance: float, capacitance: float):
    """Closed-form contributions of a distributed line lying on the output path."""
    tde = (upstream + resistance / 2.0) * capacitance
    tp = tde
    tr_num = (upstream * upstream + upstream * resistance + resistance * resistance / 3.0) * capacitance
    return tde, tp, tr_num


def _line_off_path_contributions(upstream: float, shared: float, resistance: float, capacitance: float):
    """Closed-form contributions of a distributed line hanging off the output path."""
    tde = shared * capacitance
    tp = (upstream + resistance / 2.0) * capacitance
    tr_num = shared * shared * capacitance
    return tde, tp, tr_num


def characteristic_times(tree: RCTree, output: str) -> CharacteristicTimes:
    """Compute ``T_P``, ``T_De``, ``T_Re`` for one output by direct summation.

    This is the reference implementation of eqs. (1), (5), (6): it walks every
    capacitor (lumped and distributed) once and accumulates the three sums
    using the shared-path resistances of :mod:`repro.core.path`.
    """
    if output not in tree:
        raise UnknownNodeError(output)
    rkk = all_path_resistances(tree)
    rke = shared_resistances_to_output(tree, output)
    path_children = set(tree.path_nodes(output))

    tp = 0.0
    tde = 0.0
    tr_num = 0.0

    for name in tree.nodes:
        cap = tree.node_capacitance(name)
        if cap:
            tp += rkk[name] * cap
            tde += rke[name] * cap
            tr_num += rke[name] * rke[name] * cap

    for edge in tree.edges:
        if edge.capacitance <= 0.0:
            continue
        upstream = rkk[edge.parent]
        if edge.child in path_children:
            d_tde, d_tp, d_tr = _line_on_path_contributions(upstream, edge.resistance, edge.capacitance)
        else:
            d_tde, d_tp, d_tr = _line_off_path_contributions(
                upstream, rke[edge.parent], edge.resistance, edge.capacitance
            )
        tde += d_tde
        tp += d_tp
        tr_num += d_tr

    ree = rkk[output]
    tre = tr_num / ree if ree > 0.0 else 0.0
    return CharacteristicTimes(
        output=output,
        tp=tp,
        tde=tde,
        tre=tre,
        ree=ree,
        total_capacitance=tree.total_capacitance,
    )


def characteristic_times_all(
    tree: RCTree, outputs: Optional[Iterable[str]] = None
) -> Dict[str, CharacteristicTimes]:
    """Compute the characteristic times of every requested output in O(N) total.

    This is the library's analogue of the paper's linear-time approach: two
    tree traversals produce, for *all* nodes simultaneously,

    * downstream capacitance ``C_down`` (postorder accumulation), and
    * ``T_De`` and ``T_Re R_ee`` via the path recurrences::

        T_De(child)      = T_De(parent) + R (C_down(child) + C_line/2)
        T_Rn(child)      = T_Rn(parent) + (R_kk(child)^2 - R_kk(parent)^2) C_down(child)
                                        + (R_kk(parent) R + R^2/3) C_line

    where ``R`` and ``C_line`` describe the edge into ``child``.  ``T_P`` is a
    single sum shared by every output.

    Parameters
    ----------
    outputs:
        Node names to report.  Defaults to the tree's marked outputs, or all
        nodes when none are marked.
    """
    if outputs is None:
        outputs = tree.outputs or tree.nodes
    outputs = list(outputs)
    for name in outputs:
        if name not in tree:
            raise UnknownNodeError(name)

    rkk = all_path_resistances(tree)
    total_cap = tree.total_capacitance

    # Pass 1 (postorder): capacitance at-and-below each node, excluding the
    # edge into the node itself.
    c_down: Dict[str, float] = {}
    for name in tree.postorder():
        total = tree.node_capacitance(name)
        for child in tree.children_of(name):
            edge = tree.parent_edge(child)
            total += c_down[child] + edge.capacitance
        c_down[name] = total

    # T_P: one pass over all capacitance.
    tp = 0.0
    for name in tree.nodes:
        tp += rkk[name] * tree.node_capacitance(name)
    for edge in tree.edges:
        if edge.capacitance:
            tp += (rkk[edge.parent] + edge.resistance / 2.0) * edge.capacitance

    # Pass 2 (preorder): T_De and T_Re*R_ee recurrences from the root down.
    tde: Dict[str, float] = {tree.root: 0.0}
    tr_num: Dict[str, float] = {tree.root: 0.0}
    for name in tree.preorder():
        if name == tree.root:
            continue
        edge = tree.parent_edge(name)
        parent = edge.parent
        resistance = edge.resistance
        line_cap = edge.capacitance
        below = c_down[name]
        tde[name] = tde[parent] + resistance * (below + line_cap / 2.0)
        tr_num[name] = (
            tr_num[parent]
            + (rkk[name] ** 2 - rkk[parent] ** 2) * below
            + (rkk[parent] * resistance + resistance * resistance / 3.0) * line_cap
        )

    results: Dict[str, CharacteristicTimes] = {}
    for name in outputs:
        ree = rkk[name]
        tre = tr_num[name] / ree if ree > 0.0 else 0.0
        results[name] = CharacteristicTimes(
            output=name,
            tp=tp,
            tde=tde[name],
            tre=tre,
            ree=ree,
            total_capacitance=total_cap,
        )
    return results


def elmore_delay(tree: RCTree, output: str) -> float:
    """Convenience wrapper returning only the Elmore delay ``T_De`` of ``output``."""
    return characteristic_times(tree, output).tde


def elmore_delays(tree: RCTree, outputs: Optional[Iterable[str]] = None) -> Dict[str, float]:
    """Elmore delays of many outputs at once (O(N) total)."""
    return {name: ct.tde for name, ct in characteristic_times_all(tree, outputs).items()}
