"""Circuit elements that make up an RC tree.

The paper (Section II) defines an RC tree as a resistor tree with grounded
capacitors at its nodes, where any resistor may be replaced by a distributed
RC line.  Three element kinds therefore exist:

* :class:`Resistor` -- a lumped series resistance between a parent node and a
  child node.
* :class:`Capacitor` -- a lumped capacitance from a node to ground.
* :class:`URCLine` -- a *uniform* distributed RC line between a parent node
  and a child node, characterised by its total resistance and total
  capacitance.  (The paper allows non-uniform lines too; those are modelled
  here by chaining uniform segments, see :mod:`repro.distributed`.)

Branch elements (resistor / URC line) are immutable value objects; identity
and position in the tree live in :class:`repro.core.tree.RCTree`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ElementValueError
from repro.utils.checks import require_finite, require_non_negative


def _check_value(name: str, value: float) -> float:
    try:
        return require_non_negative(name, value)
    except ValueError as exc:
        raise ElementValueError(str(exc)) from exc


@dataclass(frozen=True)
class Resistor:
    """A lumped resistor of ``resistance`` ohms.

    A zero-ohm resistor is legal: it is how the paper's ``URC R,0`` /
    ``URC 0,C`` degenerate primitives connect a capacitor directly to an
    existing node.
    """

    resistance: float

    def __post_init__(self):
        object.__setattr__(self, "resistance", _check_value("resistance", self.resistance))

    @property
    def capacitance(self) -> float:
        """Total capacitance of the element (zero for a pure resistor)."""
        return 0.0

    def scaled(self, factor: float) -> "Resistor":
        """Return a copy with the resistance multiplied by ``factor``."""
        require_finite("factor", factor)
        return Resistor(self.resistance * factor)


@dataclass(frozen=True)
class Capacitor:
    """A lumped grounded capacitor of ``capacitance`` farads."""

    capacitance: float

    def __post_init__(self):
        object.__setattr__(self, "capacitance", _check_value("capacitance", self.capacitance))

    @property
    def resistance(self) -> float:
        """Total series resistance of the element (zero for a capacitor)."""
        return 0.0

    def scaled(self, factor: float) -> "Capacitor":
        """Return a copy with the capacitance multiplied by ``factor``."""
        require_finite("factor", factor)
        return Capacitor(self.capacitance * factor)


@dataclass(frozen=True)
class URCLine:
    """A uniform distributed RC line.

    Parameters
    ----------
    resistance:
        Total series resistance of the line, ohms.
    capacitance:
        Total capacitance of the line to ground, farads, distributed
        uniformly along its length.

    Notes
    -----
    The paper's single primitive ``URC R,C`` (Section IV) is exactly this
    element; ``URC R,0`` degenerates to a lumped resistor and ``URC 0,C`` to
    a lumped capacitor.  :meth:`as_lumped` performs that degeneration.

    For a single uniform line driven directly, the characteristic times are
    ``T_P = T_De = RC/2`` and ``T_Re = RC/3`` (paper, Section III), which the
    test-suite checks.
    """

    resistance: float
    capacitance: float

    def __post_init__(self):
        object.__setattr__(self, "resistance", _check_value("resistance", self.resistance))
        object.__setattr__(self, "capacitance", _check_value("capacitance", self.capacitance))

    @property
    def is_pure_resistor(self) -> bool:
        """True when the line has no capacitance (degenerates to a resistor)."""
        return self.capacitance == 0.0

    @property
    def is_pure_capacitor(self) -> bool:
        """True when the line has no resistance (degenerates to a capacitor)."""
        return self.resistance == 0.0

    def as_lumped(self):
        """Degenerate to :class:`Resistor` / :class:`Capacitor` when possible.

        Returns ``self`` unchanged if the line has both resistance and
        capacitance (a genuinely distributed element).
        """
        if self.is_pure_resistor:
            return Resistor(self.resistance)
        if self.is_pure_capacitor:
            return Capacitor(self.capacitance)
        return self

    def split(self, fraction: float) -> tuple["URCLine", "URCLine"]:
        """Split the line at ``fraction`` of its length into two uniform lines."""
        fraction = require_finite("fraction", fraction)
        if not 0.0 <= fraction <= 1.0:
            raise ElementValueError(f"fraction must lie in [0, 1], got {fraction!r}")
        head = URCLine(self.resistance * fraction, self.capacitance * fraction)
        tail = URCLine(self.resistance * (1 - fraction), self.capacitance * (1 - fraction))
        return head, tail

    def segments(self, count: int) -> list["URCLine"]:
        """Divide the line into ``count`` equal uniform segments."""
        if count < 1:
            raise ElementValueError(f"segment count must be >= 1, got {count!r}")
        piece = URCLine(self.resistance / count, self.capacitance / count)
        return [piece] * count


#: Union type of elements that may sit on a tree edge (between two nodes).
BranchElement = (Resistor, URCLine)
