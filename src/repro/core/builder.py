"""Fluent builder for RC trees.

:class:`RCTree` is perfectly usable directly, but chains of wire segments and
taps read more naturally with a cursor-style builder::

    tree = (
        TreeBuilder("driver")
        .resistor(380.0)                    # driver pull-up
        .capacitor(0.04e-12)                # driver output diffusion
        .line(180.0, 0.01e-12)              # first poly segment
        .tap("gate1", 0.013e-12)            # first gate, as a side branch
        .line(180.0, 0.01e-12)
        .tap("gate2", 0.013e-12, output=True)
        .build()
    )

The builder keeps a *cursor* (the node new elements attach to).  ``resistor``
and ``line`` advance the cursor to the newly created node; ``tap`` creates a
side branch without moving the cursor; ``at`` moves the cursor to any
existing node, which is how multi-branch trees are laid out.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.tree import RCTree


class TreeBuilder:
    """Incrementally build an :class:`RCTree` with a movable cursor."""

    def __init__(self, root: str = "in"):
        self._tree = RCTree(root)
        self._cursor = root
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Cursor management
    # ------------------------------------------------------------------
    @property
    def cursor(self) -> str:
        """Name of the node the next series element will attach to."""
        return self._cursor

    def at(self, node: str) -> "TreeBuilder":
        """Move the cursor to an existing node (to start a new branch)."""
        if node not in self._tree:
            raise KeyError(f"unknown node {node!r}")
        self._cursor = node
        return self

    def _next_name(self, name: Optional[str]) -> str:
        if name is not None:
            return name
        while True:
            candidate = f"n{next(self._counter)}"
            if candidate not in self._tree:
                return candidate

    # ------------------------------------------------------------------
    # Elements
    # ------------------------------------------------------------------
    def resistor(self, resistance: float, name: Optional[str] = None, *, output: bool = False) -> "TreeBuilder":
        """Add a series resistor and advance the cursor to its far node."""
        node = self._next_name(name)
        self._tree.add_resistor(self._cursor, node, resistance)
        if output:
            self._tree.mark_output(node)
        self._cursor = node
        return self

    def line(
        self,
        resistance: float,
        capacitance: float,
        name: Optional[str] = None,
        *,
        output: bool = False,
    ) -> "TreeBuilder":
        """Add a series uniform RC line and advance the cursor to its far node."""
        node = self._next_name(name)
        self._tree.add_line(self._cursor, node, resistance, capacitance)
        if output:
            self._tree.mark_output(node)
        self._cursor = node
        return self

    def capacitor(self, capacitance: float) -> "TreeBuilder":
        """Add grounded capacitance at the cursor node (cursor does not move)."""
        self._tree.add_capacitor(self._cursor, capacitance)
        return self

    def tap(
        self,
        name: Optional[str] = None,
        capacitance: float = 0.0,
        resistance: float = 0.0,
        *,
        output: bool = False,
    ) -> "TreeBuilder":
        """Attach a side branch (a load tap) at the cursor without moving it.

        The tap is a series resistance (default 0) into a new node carrying
        ``capacitance``.  This models a gate input hanging off a wire.
        """
        node = self._next_name(name)
        self._tree.add_resistor(self._cursor, node, resistance)
        if capacitance:
            self._tree.add_capacitor(node, capacitance)
        if output:
            self._tree.mark_output(node)
        return self

    def output(self, name: Optional[str] = None) -> "TreeBuilder":
        """Mark a node as an output (the cursor node by default)."""
        self._tree.mark_output(name if name is not None else self._cursor)
        return self

    # ------------------------------------------------------------------
    # Finish
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> RCTree:
        """Return the constructed tree (validated by default)."""
        if validate:
            self._tree.validate()
        return self._tree
