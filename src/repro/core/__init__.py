"""Core RC-tree model and the Penfield-Rubinstein analysis.

This subpackage contains the paper's primary contribution:

* the RC tree network model (:mod:`repro.core.tree`, :mod:`repro.core.elements`),
* path and shared-path resistances (:mod:`repro.core.path`),
* the characteristic times ``T_P``, ``T_De`` (Elmore delay), ``T_Re``
  (:mod:`repro.core.timeconstants`),
* the delay / voltage bounds and their inversions (:mod:`repro.core.bounds`),
* timing certification, the paper's ``OK`` function (:mod:`repro.core.certify`),
* reference networks from the paper's figures (:mod:`repro.core.networks`).
"""

from repro.core.elements import Capacitor, Resistor, URCLine
from repro.core.exceptions import (
    AnalysisError,
    DegenerateNetworkError,
    DuplicateNodeError,
    ElementValueError,
    ParseError,
    RCTreeError,
    TopologyError,
    UnknownNodeError,
)
from repro.core.tree import Edge, Node, RCTree
from repro.core.builder import TreeBuilder
from repro.core.path import (
    all_path_resistances,
    path_resistance,
    resistance_between,
    shared_path_resistance,
    shared_resistances_to_output,
)
from repro.core.timeconstants import (
    CharacteristicTimes,
    characteristic_times,
    characteristic_times_all,
    elmore_delay,
    elmore_delays,
)
from repro.core.bounds import (
    BoundedResponse,
    DelayBounds,
    VoltageBounds,
    delay_bound_table,
    delay_bounds,
    delay_lower_bound,
    delay_upper_bound,
    voltage_bound_table,
    voltage_bounds,
    voltage_lower_bound,
    voltage_upper_bound,
)
from repro.core.certify import Certificate, Verdict, certify, certify_tree, worst_output
from repro.core.excitation import (
    RampResponseBounds,
    ramp_delay_bounds,
    ramp_voltage_bounds,
)
from repro.core.networks import (
    FIGURE7_TWOPORT,
    FIGURE10_DELAY_ROWS,
    FIGURE10_VOLTAGE_ROWS,
    figure3_tree,
    figure7_tree,
    rc_ladder,
    single_line,
    symmetric_fanout,
)

__all__ = [
    # elements / tree
    "Capacitor",
    "Resistor",
    "URCLine",
    "Edge",
    "Node",
    "RCTree",
    "TreeBuilder",
    # exceptions
    "RCTreeError",
    "TopologyError",
    "UnknownNodeError",
    "DuplicateNodeError",
    "ElementValueError",
    "DegenerateNetworkError",
    "AnalysisError",
    "ParseError",
    # path
    "path_resistance",
    "all_path_resistances",
    "shared_path_resistance",
    "shared_resistances_to_output",
    "resistance_between",
    # time constants
    "CharacteristicTimes",
    "characteristic_times",
    "characteristic_times_all",
    "elmore_delay",
    "elmore_delays",
    # bounds
    "BoundedResponse",
    "DelayBounds",
    "VoltageBounds",
    "delay_bounds",
    "delay_lower_bound",
    "delay_upper_bound",
    "voltage_bounds",
    "voltage_lower_bound",
    "voltage_upper_bound",
    "delay_bound_table",
    "voltage_bound_table",
    # certification
    "Certificate",
    "Verdict",
    "certify",
    "certify_tree",
    "worst_output",
    # non-step excitation
    "RampResponseBounds",
    "ramp_delay_bounds",
    "ramp_voltage_bounds",
    # reference networks
    "figure3_tree",
    "figure7_tree",
    "single_line",
    "rc_ladder",
    "symmetric_fanout",
    "FIGURE7_TWOPORT",
    "FIGURE10_DELAY_ROWS",
    "FIGURE10_VOLTAGE_ROWS",
]
