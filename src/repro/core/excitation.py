"""Bounds for non-step excitations via the superposition integral.

The paper notes that "the results can be extended to upper and lower bounds
for arbitrary excitation by use of the superposition integral".  This module
carries that extension out for the most common non-ideal excitation, a
finite-rise-time ramp: the driving source rises linearly from 0 to 1 over
``rise_time`` instead of stepping instantaneously.

For a ramp, superposition gives

.. math::

    v_{ramp}(t) = \\frac{1}{T_r} \\int_{\\max(0, t - T_r)}^{t} v_{step}(\\sigma)\\,d\\sigma ,

an average of the step response over a sliding window of width ``T_r``.
Averaging with a non-negative weight preserves pointwise inequalities, so
integrating the step-response *bounds* of :mod:`repro.core.bounds` over the
same window yields valid bounds on the ramp response; and because the ramp
response is still monotone (its derivative is
``(v_{step}(t) - v_{step}(t - T_r)) / T_r >= 0``), the voltage bounds invert
into delay bounds exactly as in the step case.

The integrals are evaluated numerically (composite Simpson on the window);
the resolution is configurable and the defaults keep the quadrature error
orders of magnitude below the bound widths themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.bounds import DelayBounds, VoltageBounds, voltage_lower_bound, voltage_upper_bound
from repro.core.exceptions import AnalysisError
from repro.core.timeconstants import CharacteristicTimes
from repro.utils.checks import require_in_unit_interval, require_positive

ArrayLike = Union[float, np.ndarray]


def _window_average(bound_function, times: CharacteristicTimes, t: float, rise_time: float, samples: int) -> float:
    """Average ``bound_function`` over the superposition window ending at ``t``."""
    if t <= 0.0:
        return 0.0
    start = max(0.0, t - rise_time)
    window = t - start
    grid = np.linspace(start, t, samples)
    values = np.asarray(bound_function(times, grid), dtype=float)
    integral = float(np.trapezoid(values, grid))
    # For t < rise_time the source has only reached t/rise_time, which the
    # integral over [0, t] (divided by rise_time) captures automatically.
    return integral / rise_time if window > 0 else 0.0


class RampResponseBounds:
    """Upper/lower bounds on the response to a finite-rise-time ramp input.

    Parameters
    ----------
    times:
        Characteristic times of the output (from the step-response analysis).
    rise_time:
        Source rise time ``T_r`` (seconds); the source is 0 before ``t = 0``
        and 1 after ``T_r``.
    samples:
        Quadrature points per window evaluation.
    """

    def __init__(self, times: CharacteristicTimes, rise_time: float, *, samples: int = 129):
        require_positive("rise_time", rise_time)
        if samples < 9:
            raise AnalysisError("samples must be >= 9 for a meaningful quadrature")
        self._times = times
        self._rise_time = float(rise_time)
        self._samples = int(samples)

    @property
    def rise_time(self) -> float:
        """The source rise time (seconds)."""
        return self._rise_time

    @property
    def times(self) -> CharacteristicTimes:
        """The underlying characteristic times."""
        return self._times

    # ------------------------------------------------------------------
    # Voltage bounds
    # ------------------------------------------------------------------
    def vmin(self, time: ArrayLike) -> Union[float, np.ndarray]:
        """Lower bound on the ramp response at ``time``."""
        t = np.asarray(time, dtype=float)
        if t.ndim == 0:
            return _window_average(voltage_lower_bound, self._times, float(t), self._rise_time, self._samples)
        return np.array(
            [_window_average(voltage_lower_bound, self._times, float(x), self._rise_time, self._samples) for x in t]
        )

    def vmax(self, time: ArrayLike) -> Union[float, np.ndarray]:
        """Upper bound on the ramp response at ``time``."""
        t = np.asarray(time, dtype=float)
        if t.ndim == 0:
            return _window_average(voltage_upper_bound, self._times, float(t), self._rise_time, self._samples)
        return np.array(
            [_window_average(voltage_upper_bound, self._times, float(x), self._rise_time, self._samples) for x in t]
        )

    def voltage_bounds(self, time: float) -> VoltageBounds:
        """Both ramp-response bounds at one time."""
        return VoltageBounds(time=float(time), lower=float(self.vmin(time)), upper=float(self.vmax(time)))

    # ------------------------------------------------------------------
    # Delay bounds
    # ------------------------------------------------------------------
    def _invert(self, bound_is_upper: bool, threshold: float) -> float:
        """Find where the chosen envelope crosses ``threshold`` (bisection)."""
        threshold = require_in_unit_interval("threshold", threshold, open_ends=True)
        evaluate = self.vmax if bound_is_upper else self.vmin
        horizon = self._rise_time + 2.0 * max(self._times.tp, self._times.tde, 1e-300)
        lo, hi = 0.0, horizon
        iterations = 0
        while float(evaluate(hi)) < threshold:
            hi *= 2.0
            iterations += 1
            if iterations > 200:  # pragma: no cover - defensive
                raise AnalysisError("ramp bound never reaches the threshold")
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            if float(evaluate(mid)) < threshold:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-12 * max(hi, 1e-300):
                break
        return 0.5 * (lo + hi)

    def tmin(self, threshold: float) -> float:
        """Lower bound on the time at which the ramp response reaches ``threshold``."""
        return self._invert(bound_is_upper=True, threshold=threshold)

    def tmax(self, threshold: float) -> float:
        """Upper bound on the time at which the ramp response reaches ``threshold``."""
        return self._invert(bound_is_upper=False, threshold=threshold)

    def delay_bounds(self, threshold: float) -> DelayBounds:
        """Both ramp-delay bounds at ``threshold``."""
        return DelayBounds(
            threshold=float(threshold), lower=self.tmin(threshold), upper=self.tmax(threshold)
        )


def ramp_delay_bounds(times: CharacteristicTimes, rise_time: float, threshold: float) -> DelayBounds:
    """One-shot helper: delay bounds for a ramp excitation."""
    return RampResponseBounds(times, rise_time).delay_bounds(threshold)


def ramp_voltage_bounds(times: CharacteristicTimes, rise_time: float, time: float) -> VoltageBounds:
    """One-shot helper: voltage bounds for a ramp excitation at one time."""
    return RampResponseBounds(times, rise_time).voltage_bounds(time)
