"""Reference networks used throughout the paper, tests and benchmarks.

Every figure in the paper that defines a concrete circuit is reproduced here
as a constructor returning an :class:`~repro.core.tree.RCTree`:

* :func:`figure3_tree` -- the five-resistor illustration of ``R_ke`` terms.
* :func:`figure7_tree` -- the worked example (15 ohm driver, 2 F, an 8 ohm /
  7 F side branch, a 3 ohm / 4 F distributed line, 9 F load) whose bound
  tables appear in Figs. 10 and 11.
* :func:`single_line` -- one uniform RC line, for which the paper quotes
  ``T_P = T_De = RC/2`` and ``T_Re = RC/3``.
* :func:`rc_ladder` -- an N-section lumped ladder, the classic discretisation
  of a line (useful for convergence studies and scaling benchmarks).
* :func:`symmetric_fanout` -- a driver fanning out to ``k`` identical
  branches, the "inverter driving several gates" motivating Figure 1.

Component values follow the paper exactly; the Figure 7 network is expressed
in the paper's own unit system (ohms and farads), which makes its
characteristic times come out as the familiar ``T_P = 419``, ``T_De = 363``,
``T_Re = 6033/18`` "seconds" used in Fig. 10.
"""

from __future__ import annotations

from repro.core.tree import RCTree
from repro.utils.checks import require_positive


def figure3_tree(
    r1: float = 1.0, r2: float = 2.0, r3: float = 3.0, r4: float = 4.0, r5: float = 5.0
) -> RCTree:
    """The resistor topology of the paper's Figure 3.

    The output ``e`` is reached through ``R1, R2, R5``; node ``k`` through
    ``R1, R2, R3``; a further node through ``R3`` then ``R4``.  With unit
    capacitors everywhere the shared-resistance identities of the figure,
    ``R_ke = R1 + R2``, ``R_kk = R1 + R2 + R3``, ``R_ee = R1 + R2 + R5``,
    can be checked directly.
    """
    tree = RCTree("in")
    tree.add_resistor("in", "n1", r1)
    tree.add_resistor("n1", "n2", r2)
    tree.add_resistor("n2", "k", r3)
    tree.add_resistor("k", "n4", r4)
    tree.add_resistor("n2", "e", r5)
    for name in ("n1", "n2", "k", "n4", "e"):
        tree.add_capacitor(name, 1.0)
    tree.mark_output("e")
    return tree


def figure7_tree() -> RCTree:
    """The paper's Figure 7 example network (values in ohms and farads).

    Topology, following eq. (18)::

        in --R 15-- a (C=2) --[branch: R 8 -- b (C=7)]-- URC(3,4) -- out (C=9)

    ``out`` is the output port used in Fig. 10; the side-branch node ``b``
    is also retained so multi-output analyses can exercise a true branch.
    """
    tree = RCTree("in")
    tree.add_resistor("in", "a", 15.0)
    tree.add_capacitor("a", 2.0)
    tree.add_resistor("a", "b", 8.0)
    tree.add_capacitor("b", 7.0)
    tree.add_line("a", "out", resistance=3.0, capacitance=4.0)
    tree.add_capacitor("out", 9.0)
    tree.mark_output("out")
    return tree


#: The characteristic values of the Figure 7 network, as carried by the
#: paper's APL session (Fig. 10):  ``[C_T, T_P, R_22, T_D2, T_R2*R_22]``.
FIGURE7_TWOPORT = (22.0, 419.0, 18.0, 363.0, 6033.0)

#: Delay-bound rows printed in Fig. 10 (threshold, T_MIN, T_MAX); values as
#: printed by the paper (5 significant digits).  The 0.5-row lower bound is
#: recomputed (184.23) -- the scanned figure is illegible at that digit.
FIGURE10_DELAY_ROWS = [
    (0.1, 0.0, 68.167),
    (0.2, 27.8, 117.22),
    (0.3, 71.46, 173.17),
    (0.4, 123.13, 237.76),
    (0.5, 184.23, 314.15),
    (0.6, 259.02, 407.65),
    (0.7, 355.45, 528.18),
    (0.8, 491.34, 698.07),
    (0.9, 723.66, 988.5),
]

#: Voltage-bound rows printed in Fig. 10 (time, V_MIN, V_MAX).
FIGURE10_VOLTAGE_ROWS = [
    (20.0, 0.0, 0.18138),
    (40.0, 0.03243, 0.22912),
    (60.0, 0.0814, 0.27565),
    (80.0, 0.12565, 0.31761),
    (100.0, 0.16644, 0.35714),
    (200.0, 0.34342, 0.52297),
    (300.0, 0.48283, 0.64603),
    (400.0, 0.59263, 0.73734),
    (500.0, 0.67913, 0.8051),
    (1000.0, 0.90271, 0.95615),
    (2000.0, 0.99105, 0.99778),
]


def single_line(resistance: float, capacitance: float, *, output: str = "out") -> RCTree:
    """A single uniform RC line from the input to ``output``.

    The paper quotes ``T_P = T_De = RC/2`` and ``T_Re = RC/3`` for this case.
    """
    require_positive("resistance", resistance)
    require_positive("capacitance", capacitance)
    tree = RCTree("in")
    tree.add_line("in", output, resistance, capacitance)
    tree.mark_output(output)
    return tree


def rc_ladder(sections: int, resistance_per_section: float, capacitance_per_section: float) -> RCTree:
    """An N-section lumped RC ladder: R-C, R-C, ... from the input to ``out``.

    The far node is named ``out`` and marked as the output; intermediate
    nodes are ``s1 .. s(N-1)``.
    """
    if sections < 1:
        raise ValueError("sections must be >= 1")
    require_positive("resistance_per_section", resistance_per_section)
    require_positive("capacitance_per_section", capacitance_per_section)
    tree = RCTree("in")
    previous = "in"
    for index in range(1, sections + 1):
        name = "out" if index == sections else f"s{index}"
        tree.add_resistor(previous, name, resistance_per_section)
        tree.add_capacitor(name, capacitance_per_section)
        previous = name
    tree.mark_output("out")
    return tree


def symmetric_fanout(
    branches: int,
    driver_resistance: float,
    wire_resistance: float,
    wire_capacitance: float,
    load_capacitance: float,
) -> RCTree:
    """A driver fanning out to ``branches`` identical RC-line loads (Figure 1 shape).

    Each branch is a distributed line of ``wire_resistance`` /
    ``wire_capacitance`` ending in a lumped ``load_capacitance`` (a driven
    gate).  Every branch end ``load<i>`` is marked as an output.
    """
    if branches < 1:
        raise ValueError("branches must be >= 1")
    tree = RCTree("in")
    tree.add_resistor("in", "drv", driver_resistance)
    for index in range(1, branches + 1):
        load = f"load{index}"
        tree.add_line("drv", load, wire_resistance, wire_capacitance)
        tree.add_capacitor(load, load_capacitance)
        tree.mark_output(load)
    return tree
