"""Modified nodal analysis (MNA) assembly for lumped RC trees.

The networks the paper studies contain only grounded capacitors, series
resistors, and one ideal step source at the input, so the full generality of
MNA is not needed: every internal node (everything except the driven input)
gets one row/column, giving

.. math::

    C \\frac{dv}{dt} + G v = b \\, u(t)

where ``C`` is the diagonal matrix of node capacitances, ``G`` the nodal
conductance matrix, and ``b`` the vector of conductances tying each node to
the driven input (``u(t)`` is the source voltage, a unit step here).

Distributed URC lines must be lumped before assembly --
:meth:`repro.core.tree.RCTree.lumped` does that -- and
:func:`build_mna` will lump them automatically when asked.

Zero-capacitance nodes make ``C`` singular; downstream solvers either handle
that directly (the trapezoidal engine) or eliminate those nodes exactly by a
Schur complement (the state-space engine), so no fictitious minimum
capacitance is ever introduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.exceptions import AnalysisError, ElementValueError
from repro.core.tree import RCTree


@dataclass(frozen=True)
class MNASystem:
    """The assembled matrices of a lumped RC tree.

    Attributes
    ----------
    nodes:
        Internal node names, in matrix order (the driven input is excluded).
    index:
        Mapping node name -> row/column index.
    conductance:
        Dense symmetric nodal conductance matrix ``G`` (siemens).
    capacitance:
        Vector of node capacitances (the diagonal of ``C``, farads).
    source:
        Vector ``b``: conductance from each node to the driven input.
    input_node:
        Name of the driven input node.
    """

    nodes: List[str]
    index: Dict[str, int]
    conductance: np.ndarray
    capacitance: np.ndarray
    source: np.ndarray
    input_node: str

    @property
    def size(self) -> int:
        """Number of internal nodes (matrix dimension)."""
        return len(self.nodes)

    def capacitance_matrix(self) -> np.ndarray:
        """The diagonal capacitance matrix ``C`` as a dense array."""
        return np.diag(self.capacitance)

    def dc_solution(self) -> np.ndarray:
        """Steady-state node voltages for a held unit input (should be all ones)."""
        return np.linalg.solve(self.conductance, self.source)


def build_mna(tree: RCTree, *, segments_per_line: int = 20) -> MNASystem:
    """Assemble the MNA matrices of ``tree``.

    Parameters
    ----------
    tree:
        The RC tree to simulate.  Distributed lines are lumped into
        ``segments_per_line`` pi-sections first.
    segments_per_line:
        Lumping granularity for distributed lines (ignored when the tree has
        none).

    Raises
    ------
    AnalysisError
        If any branch has zero resistance.  A zero-ohm branch shorts two
        nodes together; callers should collapse such nodes first (the SPICE
        reader does this automatically).
    """
    has_lines = any(edge.is_distributed for edge in tree.edges)
    working = tree.lumped(segments_per_line) if has_lines else tree

    nodes = [name for name in working.nodes if name != working.root]
    index = {name: position for position, name in enumerate(nodes)}
    size = len(nodes)
    if size == 0:
        raise AnalysisError("the network has no internal nodes to simulate")

    conductance = np.zeros((size, size), dtype=float)
    capacitance = np.zeros(size, dtype=float)
    source = np.zeros(size, dtype=float)

    for name in nodes:
        capacitance[index[name]] = working.node_capacitance(name)

    for edge in working.edges:
        if edge.resistance <= 0.0:
            raise ElementValueError(
                f"branch {edge.parent!r} -> {edge.child!r} has zero resistance; "
                "collapse the two nodes before simulation"
            )
        g = 1.0 / edge.resistance
        child = index[edge.child]
        conductance[child, child] += g
        if edge.parent == working.root:
            source[child] += g
        else:
            parent = index[edge.parent]
            conductance[parent, parent] += g
            conductance[parent, child] -= g
            conductance[child, parent] -= g

    return MNASystem(
        nodes=nodes,
        index=index,
        conductance=conductance,
        capacitance=capacitance,
        source=source,
        input_node=working.root,
    )
