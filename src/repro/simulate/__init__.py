"""Exact circuit simulation substrate.

The paper validates its bounds against "the exact solution, found from
circuit simulation" (Fig. 11).  No external SPICE binary is assumed here;
instead this subpackage provides:

* :mod:`repro.simulate.mna` -- assembly of the conductance and capacitance
  matrices of a lumped RC tree (modified nodal analysis restricted to the
  R + C + single-step-source networks the paper studies);
* :mod:`repro.simulate.state_space` -- the exact step response through a
  symmetric generalized eigendecomposition (a sum of decaying exponentials,
  evaluated at arbitrary time points with no time-stepping error);
* :mod:`repro.simulate.transient` -- a SPICE-like companion-model transient
  engine (backward Euler and trapezoidal), useful as an independent check
  and for non-step excitations;
* :mod:`repro.simulate.waveform` -- a sampled-waveform value type with
  threshold-crossing search and interpolation;
* :mod:`repro.simulate.compare` -- error metrics between waveforms and
  between bounds and exact responses.

Distributed URC lines are handled by lumping them into N sections
(:meth:`repro.core.tree.RCTree.lumped`) before simulation; the segmentation
ablation benchmark quantifies the resulting error.
"""

from repro.simulate.waveform import Waveform
from repro.simulate.mna import MNASystem, build_mna
from repro.simulate.state_space import StepResponse, exact_step_response, simulate_step
from repro.simulate.transient import TransientResult, transient_step_response
from repro.simulate.compare import (
    max_abs_error,
    rms_error,
    threshold_delay_error,
    bounds_violations,
)

__all__ = [
    "Waveform",
    "MNASystem",
    "build_mna",
    "StepResponse",
    "exact_step_response",
    "simulate_step",
    "TransientResult",
    "transient_step_response",
    "max_abs_error",
    "rms_error",
    "threshold_delay_error",
    "bounds_violations",
]
