"""Error metrics between waveforms, and between bounds and exact responses.

These helpers power the experiment harness (EXPERIMENTS.md tables) and the
property-based tests: the single most important invariant of the whole paper
is that the exact response never escapes the bound envelope, and
:func:`bounds_violations` measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.core.bounds import BoundedResponse
from repro.simulate.waveform import Waveform


def max_abs_error(reference: Waveform, candidate: Waveform) -> float:
    """Largest absolute difference, evaluated on the reference's time grid."""
    return float(np.max(np.abs(reference.values - candidate(reference.times))))


def rms_error(reference: Waveform, candidate: Waveform) -> float:
    """Root-mean-square difference, evaluated on the reference's time grid."""
    difference = reference.values - candidate(reference.times)
    return float(np.sqrt(np.mean(difference * difference)))


def threshold_delay_error(
    reference: Waveform, candidate: Waveform, threshold: float
) -> Optional[float]:
    """Difference in threshold-crossing delay (candidate minus reference).

    Returns ``None`` when either waveform never reaches the threshold.
    """
    t_ref = reference.crossing_time(threshold)
    t_cand = candidate.crossing_time(threshold)
    if t_ref is None or t_cand is None:
        return None
    return t_cand - t_ref


@dataclass(frozen=True)
class BoundsCheck:
    """Outcome of checking an exact response against the bound envelope."""

    #: Worst amount by which the exact response fell below the lower bound.
    worst_lower_violation: float
    #: Worst amount by which the exact response rose above the upper bound.
    worst_upper_violation: float
    #: Number of sample points checked.
    samples: int

    @property
    def ok(self) -> bool:
        """True when the exact response stays inside the envelope (to tolerance)."""
        return self.worst_lower_violation <= 0.0 and self.worst_upper_violation <= 0.0

    def within(self, tolerance: float) -> bool:
        """True when any violation is smaller than ``tolerance`` (for lumping error)."""
        return (
            self.worst_lower_violation <= tolerance
            and self.worst_upper_violation <= tolerance
        )


def bounds_violations(response: Waveform, bounded: BoundedResponse) -> BoundsCheck:
    """Check that ``response`` lies between the Penfield-Rubinstein envelopes.

    Positive violation numbers mean the response escaped the envelope by that
    many volts at some sample; for an exact simulation of the same network
    both violations should be ``<= 0`` up to numerical noise (and up to the
    lumping error when distributed lines were discretised).
    """
    times = response.times
    lower = np.asarray(bounded.vmin(times), dtype=float)
    upper = np.asarray(bounded.vmax(times), dtype=float)
    values = response.values
    worst_lower = float(np.max(lower - values))
    worst_upper = float(np.max(values - upper))
    return BoundsCheck(
        worst_lower_violation=worst_lower,
        worst_upper_violation=worst_upper,
        samples=int(times.size),
    )


def bound_tightness(
    bounded: BoundedResponse, thresholds: Iterable[float]
) -> float:
    """Mean relative delay-bound width over a set of thresholds.

    Used by the ablation benchmark that studies how tightness degrades as
    resistance moves from the driver into the wire (the paper notes the
    bounds are "very tight in the case where most of the resistance is in
    the pullup").
    """
    widths = []
    for threshold in thresholds:
        bounds = bounded.delay_bounds(float(threshold))
        widths.append(bounds.relative_width)
    return float(np.mean(widths)) if widths else 0.0
