"""Sampled waveforms and threshold-crossing utilities.

A :class:`Waveform` is a pair of monotone-increasing sample times and the
corresponding signal values.  It supports linear interpolation, threshold
crossing search (the operation that turns a simulated response into a
"delay"), resampling and simple arithmetic, which is all the comparison
machinery the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

from repro.core.exceptions import AnalysisError

ArrayLike = Union[float, Iterable[float], np.ndarray]


@dataclass(frozen=True)
class Waveform:
    """An immutable sampled waveform ``value(time)``.

    Attributes
    ----------
    times:
        Strictly increasing sample times (seconds).
    values:
        Signal values at the sample times (volts, for the unit-step studies).
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        times = np.asarray(self.times, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if times.ndim != 1 or values.ndim != 1:
            raise AnalysisError("waveform times and values must be one-dimensional")
        if times.shape != values.shape:
            raise AnalysisError(
                f"waveform has {times.size} times but {values.size} values"
            )
        if times.size < 2:
            raise AnalysisError("a waveform needs at least two samples")
        if np.any(np.diff(times) <= 0):
            raise AnalysisError("waveform times must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def t_start(self) -> float:
        """First sample time."""
        return float(self.times[0])

    @property
    def t_end(self) -> float:
        """Last sample time."""
        return float(self.times[-1])

    @property
    def final_value(self) -> float:
        """Value at the last sample."""
        return float(self.values[-1])

    def __len__(self) -> int:
        return int(self.times.size)

    def __call__(self, time: ArrayLike) -> Union[float, np.ndarray]:
        """Linearly interpolate the waveform at ``time`` (clamped at the ends)."""
        t = np.asarray(time, dtype=float)
        result = np.interp(t, self.times, self.values)
        return float(result) if t.ndim == 0 else result

    def sample(self, times: ArrayLike) -> "Waveform":
        """Resample onto a new time grid by linear interpolation."""
        t = np.asarray(times, dtype=float)
        return Waveform(t, np.interp(t, self.times, self.values))

    # ------------------------------------------------------------------
    # Delay extraction
    # ------------------------------------------------------------------
    def crossing_time(self, threshold: float, *, rising: bool = True) -> Optional[float]:
        """First time at which the waveform crosses ``threshold``.

        Linear interpolation is used between samples.  Returns ``None`` when
        the waveform never reaches the threshold within its time span.
        """
        values = self.values if rising else -self.values
        level = threshold if rising else -threshold
        above = values >= level
        if above[0]:
            return float(self.times[0])
        indices = np.nonzero(above)[0]
        if indices.size == 0:
            return None
        index = int(indices[0])
        t0, t1 = self.times[index - 1], self.times[index]
        v0, v1 = values[index - 1], values[index]
        if v1 == v0:
            return float(t1)
        fraction = (level - v0) / (v1 - v0)
        return float(t0 + fraction * (t1 - t0))

    def delay_to(self, threshold: float) -> float:
        """Crossing time, raising :class:`AnalysisError` when never reached."""
        crossing = self.crossing_time(threshold)
        if crossing is None:
            raise AnalysisError(
                f"waveform never reaches threshold {threshold!r} within "
                f"[{self.t_start:g}, {self.t_end:g}] s (final value {self.final_value:g})"
            )
        return crossing

    def rise_time(self, low: float = 0.1, high: float = 0.9) -> float:
        """Time between crossing ``low`` and ``high`` thresholds (10-90% by default)."""
        return self.delay_to(high) - self.delay_to(low)

    # ------------------------------------------------------------------
    # Arithmetic / transforms
    # ------------------------------------------------------------------
    def shifted(self, dt: float) -> "Waveform":
        """Return a copy delayed by ``dt`` seconds."""
        return Waveform(self.times + dt, self.values.copy())

    def scaled(self, factor: float) -> "Waveform":
        """Return a copy with values multiplied by ``factor``."""
        return Waveform(self.times.copy(), self.values * factor)

    def clipped(self, lo: float = 0.0, hi: float = 1.0) -> "Waveform":
        """Return a copy with values clipped to ``[lo, hi]``."""
        return Waveform(self.times.copy(), np.clip(self.values, lo, hi))

    def __sub__(self, other: "Waveform") -> "Waveform":
        """Pointwise difference, computed on this waveform's time grid."""
        if not isinstance(other, Waveform):
            return NotImplemented
        return Waveform(self.times.copy(), self.values - other(self.times))

    def is_monotonic(self, tolerance: float = 1e-12) -> bool:
        """True when the waveform never decreases by more than ``tolerance``.

        RC-tree step responses are provably monotonic (the fact the paper
        leans on to turn area arguments into bounds); the simulator tests use
        this check as a sanity invariant.
        """
        return bool(np.all(np.diff(self.values) >= -tolerance))
