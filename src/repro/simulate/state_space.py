"""Exact step response of a lumped RC network via eigendecomposition.

For the MNA system ``C dv/dt + G v = b u(t)`` with a unit step ``u``, the
response from rest is a sum of decaying exponentials

.. math::

    v(t) = v_\\infty + \\sum_m w_m e^{-t/\\tau_m},

with all time constants ``tau_m`` real and positive because ``G`` and ``C``
are symmetric positive (semi)definite.  This module computes that modal form
once and then evaluates it at arbitrary time points, so there is no
time-stepping error at all -- this plays the role of the "circuit
simulation" the paper compares its bounds against in Fig. 11.

Zero-capacitance nodes are eliminated exactly through a Schur complement
(Kron reduction) before the eigendecomposition and recovered algebraically
afterwards, so purely-resistive intermediate nodes (common in extracted
netlists) are handled without fictitious capacitance.

The modal data also exposes the first moment of the impulse response per
node, which equals the Elmore delay ``T_De`` -- a strong cross-check between
the simulator and the analytical engine that the test-suite exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

import numpy as np
import scipy.linalg

from repro.core.exceptions import AnalysisError
from repro.core.tree import RCTree
from repro.simulate.mna import MNASystem, build_mna
from repro.simulate.waveform import Waveform

ArrayLike = Union[float, Iterable[float], np.ndarray]


@dataclass(frozen=True)
class StepResponse:
    """The exact unit-step response of every node of a lumped RC network.

    The response of dynamic (capacitive) nodes is stored in modal form; the
    response of resistive (zero-capacitance) nodes is recovered from the
    dynamic ones through the stored recovery operator.
    """

    #: Node names in MNA order (input excluded).
    nodes: List[str]
    #: name -> index into ``nodes``.
    index: Dict[str, int]
    #: Steady-state voltage of every node (≈ 1 everywhere for a unit step).
    final_values: np.ndarray
    #: Indices of dynamic (capacitive) nodes within ``nodes``.
    dynamic_indices: np.ndarray
    #: Indices of resistive nodes within ``nodes``.
    resistive_indices: np.ndarray
    #: Modal decay rates (1/seconds), one per dynamic node.
    rates: np.ndarray
    #: Modal weight matrix for dynamic nodes: shape (n_dynamic, n_modes).
    weights: np.ndarray
    #: DC term of resistive-node recovery, shape (n_resistive,).
    resistive_offset: np.ndarray
    #: Coupling of resistive nodes to dynamic nodes, shape (n_resistive, n_dynamic).
    resistive_coupling: np.ndarray

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, times: ArrayLike) -> np.ndarray:
        """Node voltages at the requested times.

        Returns an array of shape ``(n_times, n_nodes)`` (or ``(n_nodes,)``
        for a scalar ``times``), in the order of :attr:`nodes`.
        """
        t = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(t < 0):
            raise AnalysisError("the step is applied at t = 0; times must be >= 0")
        decay = np.exp(-np.outer(t, self.rates))  # (n_times, n_modes)
        dynamic = self.final_values[self.dynamic_indices] + decay @ self.weights.T
        result = np.empty((t.size, len(self.nodes)), dtype=float)
        result[:, self.dynamic_indices] = dynamic
        if self.resistive_indices.size:
            resistive = self.resistive_offset + dynamic @ self.resistive_coupling.T
            result[:, self.resistive_indices] = resistive
        if np.isscalar(times) or np.asarray(times).ndim == 0:
            return result[0]
        return result

    def voltage(self, node: str, times: ArrayLike) -> Union[float, np.ndarray]:
        """Voltage of one node at the requested times."""
        column = self.index[node]
        values = self.evaluate(times)
        if values.ndim == 1:
            return float(values[column])
        return values[:, column]

    def waveform(self, node: str, t_end: float, points: int = 400) -> Waveform:
        """Sampled waveform of one node over ``[0, t_end]``."""
        if t_end <= 0:
            raise AnalysisError("t_end must be positive")
        times = np.linspace(0.0, float(t_end), int(points))
        return Waveform(times, np.asarray(self.voltage(node, times), dtype=float))

    def delay(self, node: str, threshold: float, *, horizon_factor: float = 50.0) -> float:
        """Exact time for ``node`` to reach ``threshold`` of its final value.

        The crossing is bracketed using the slowest mode and then refined by
        bisection on the closed-form modal expression, so the result carries
        no sampling error.
        """
        if not 0.0 < threshold < 1.0:
            raise AnalysisError("threshold must be strictly between 0 and 1")
        final = self.final_values[self.index[node]]
        target = threshold * final
        slowest = 1.0 / float(np.min(self.rates))
        lo, hi = 0.0, slowest
        limit = horizon_factor * slowest
        while float(self.voltage(node, hi)) < target:
            hi *= 2.0
            if hi > limit:
                raise AnalysisError(
                    f"node {node!r} does not reach {threshold:g} of its final value "
                    f"within {limit:g} s"
                )
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if float(self.voltage(node, mid)) < target:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-15 * max(hi, 1e-300):
                break
        return 0.5 * (lo + hi)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def time_constants(self) -> np.ndarray:
        """The modal time constants ``tau_m = 1/rate_m``, slowest first."""
        return np.sort(1.0 / self.rates)[::-1]

    def elmore_delay(self, node: str) -> float:
        """First moment of the impulse response at ``node``.

        Equals ``sum_m w_m tau_m`` (the area above the step response), which
        the analytical engine computes as ``T_De``; agreement between the two
        is asserted in the integration tests.
        """
        column = self.index[node]
        position = np.nonzero(self.dynamic_indices == column)[0]
        if position.size:
            weights = self.weights[int(position[0])]
            return float(-np.sum(weights / self.rates))
        # Resistive node: combine the recovery operator with the dynamic modal data.
        row = np.nonzero(self.resistive_indices == column)[0]
        if row.size == 0:
            raise AnalysisError(f"unknown node {node!r}")
        coupling = self.resistive_coupling[int(row[0])]
        modal = coupling @ self.weights  # weights of the recovered response
        return float(-np.sum(modal / self.rates))


def exact_step_response(
    tree_or_system: Union[RCTree, MNASystem], *, segments_per_line: int = 20
) -> StepResponse:
    """Compute the exact unit-step response of an RC tree (or a prebuilt MNA system)."""
    if isinstance(tree_or_system, MNASystem):
        system = tree_or_system
    else:
        system = build_mna(tree_or_system, segments_per_line=segments_per_line)

    conductance = system.conductance
    capacitance = system.capacitance
    source = system.source

    dynamic = np.nonzero(capacitance > 0.0)[0]
    resistive = np.nonzero(capacitance <= 0.0)[0]
    if dynamic.size == 0:
        raise AnalysisError(
            "the network has no capacitance; its step response is instantaneous "
            "and there is nothing to simulate"
        )

    final_values = np.linalg.solve(conductance, source)

    g_dd = conductance[np.ix_(dynamic, dynamic)]
    b_d = source[dynamic]
    if resistive.size:
        g_dz = conductance[np.ix_(dynamic, resistive)]
        g_zz = conductance[np.ix_(resistive, resistive)]
        g_zd = conductance[np.ix_(resistive, dynamic)]
        b_z = source[resistive]
        zz_solve_zd = np.linalg.solve(g_zz, g_zd)
        zz_solve_bz = np.linalg.solve(g_zz, b_z)
        g_eff = g_dd - g_dz @ zz_solve_zd
        b_eff = b_d - g_dz @ zz_solve_bz
        resistive_offset = zz_solve_bz
        resistive_coupling = -zz_solve_zd
    else:
        g_eff = g_dd
        b_eff = b_d
        resistive_offset = np.zeros(0)
        resistive_coupling = np.zeros((0, dynamic.size))

    # Symmetrize with C^(1/2): S = C^(-1/2) G_eff C^(-1/2) is symmetric PD.
    c_dynamic = capacitance[dynamic]
    inv_sqrt_c = 1.0 / np.sqrt(c_dynamic)
    symmetric = (g_eff * inv_sqrt_c[np.newaxis, :]) * inv_sqrt_c[:, np.newaxis]
    symmetric = 0.5 * (symmetric + symmetric.T)
    rates, modes = scipy.linalg.eigh(symmetric)
    if np.any(rates <= 0.0):
        # G_eff is positive definite for any network tied to the source, so
        # non-positive eigenvalues can only come from rounding; clamp them.
        smallest_ok = np.min(rates[rates > 0.0]) if np.any(rates > 0.0) else 1.0
        rates = np.clip(rates, smallest_ok * 1e-12, None)

    v_inf_dynamic = np.linalg.solve(g_eff, b_eff)
    # v_D(t) = v_inf + C^(-1/2) Q exp(-Lambda t) Q^T C^(1/2) (v0 - v_inf), v0 = 0.
    initial_gap = -v_inf_dynamic
    modal_coefficients = modes.T @ (np.sqrt(c_dynamic) * initial_gap)
    weights = (inv_sqrt_c[:, np.newaxis] * modes) * modal_coefficients[np.newaxis, :]

    return StepResponse(
        nodes=system.nodes,
        index=dict(system.index),
        final_values=final_values,
        dynamic_indices=dynamic,
        resistive_indices=resistive,
        rates=rates,
        weights=weights,
        resistive_offset=resistive_offset,
        resistive_coupling=resistive_coupling,
    )


def simulate_step(
    tree: RCTree,
    output: str,
    t_end: float,
    *,
    points: int = 400,
    segments_per_line: int = 20,
) -> Waveform:
    """One-call helper: exact step-response waveform of ``output`` over ``[0, t_end]``."""
    response = exact_step_response(tree, segments_per_line=segments_per_line)
    if output not in response.index:
        raise AnalysisError(
            f"node {output!r} is not an internal node of the simulated network"
        )
    return response.waveform(output, t_end, points)
