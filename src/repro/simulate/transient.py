"""Companion-model transient simulation (backward Euler / trapezoidal).

This is the SPICE-style time-stepping engine: at each step the capacitors are
replaced by their companion conductance + current source and the resulting
resistive network is solved.  It is strictly less accurate than the modal
solution of :mod:`repro.simulate.state_space` for the pure step responses the
paper studies, but it

* provides an *independent* numerical check of the exact engine (two
  different algorithms agreeing is a much stronger test than one algorithm
  agreeing with itself), and
* supports arbitrary piecewise-linear input waveforms (finite rise times,
  ramps), which the paper mentions as the superposition-integral extension.

The LU factorisation of the companion matrix is reused across steps (the
step size is fixed), so the cost is one factorisation plus one
back-substitution per time point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

import numpy as np
import scipy.linalg

from repro.core.exceptions import AnalysisError
from repro.core.tree import RCTree
from repro.simulate.mna import MNASystem, build_mna
from repro.simulate.waveform import Waveform

InputFunction = Callable[[float], float]


@dataclass(frozen=True)
class TransientResult:
    """Result of a transient run: the time grid and every node's samples."""

    times: np.ndarray
    nodes: List[str]
    index: Dict[str, int]
    voltages: np.ndarray  # shape (n_times, n_nodes)
    method: str

    def waveform(self, node: str) -> Waveform:
        """The sampled waveform of one node."""
        if node not in self.index:
            raise AnalysisError(f"unknown node {node!r}")
        return Waveform(self.times, self.voltages[:, self.index[node]])

    def delay(self, node: str, threshold: float) -> float:
        """Threshold-crossing delay of ``node`` (interpolated between samples)."""
        return self.waveform(node).delay_to(threshold)


def _unit_step(_: float) -> float:
    return 1.0


def transient_step_response(
    tree_or_system: Union[RCTree, MNASystem],
    t_end: float,
    *,
    steps: int = 2000,
    method: str = "trapezoidal",
    segments_per_line: int = 20,
    input_function: Optional[InputFunction] = None,
) -> TransientResult:
    """Run a fixed-step transient analysis from rest.

    Parameters
    ----------
    tree_or_system:
        The RC tree (or a prebuilt :class:`MNASystem`).
    t_end:
        End of the simulated interval (seconds); the grid is uniform over
        ``[0, t_end]``.
    steps:
        Number of time steps.
    method:
        ``"trapezoidal"`` (second order, SPICE's default) or
        ``"backward-euler"`` (first order, more damped).
    input_function:
        Source voltage as a function of time, evaluated at ``t > 0``.
        Defaults to a unit step.  The source is assumed to be 0 at ``t <= 0``.
    """
    if t_end <= 0:
        raise AnalysisError("t_end must be positive")
    if steps < 1:
        raise AnalysisError("steps must be >= 1")
    if method not in ("trapezoidal", "backward-euler"):
        raise AnalysisError(f"unknown integration method {method!r}")

    if isinstance(tree_or_system, MNASystem):
        system = tree_or_system
    else:
        system = build_mna(tree_or_system, segments_per_line=segments_per_line)

    source_voltage = input_function or _unit_step
    conductance = system.conductance
    cap = system.capacitance
    b = system.source

    dt = float(t_end) / steps
    times = np.linspace(0.0, float(t_end), steps + 1)
    voltages = np.zeros((steps + 1, system.size), dtype=float)

    if method == "backward-euler":
        # (C/dt + G) v_{n+1} = (C/dt) v_n + b u_{n+1}
        lhs = np.diag(cap / dt) + conductance
        lu, piv = scipy.linalg.lu_factor(lhs)
        for n in range(steps):
            u_next = source_voltage(times[n + 1])
            rhs = (cap / dt) * voltages[n] + b * u_next
            voltages[n + 1] = scipy.linalg.lu_solve((lu, piv), rhs)
    else:
        # Capacitive rows: (2C/dt + G) v_{n+1} = (2C/dt - G) v_n + b (u_{n+1} + u_n).
        # Zero-capacitance rows are purely algebraic (G v = b u); they are
        # enforced at t_{n+1} directly (the standard semi-explicit DAE
        # treatment), otherwise the companion model would average a constraint
        # across the input step and corrupt the resistive node voltages.
        capacitive = cap > 0.0
        lhs = np.diag(2.0 * cap / dt) + conductance
        rhs_matrix = np.diag(2.0 * cap / dt) - conductance
        rhs_matrix[~capacitive, :] = 0.0
        lu, piv = scipy.linalg.lu_factor(lhs)
        # The source value "just after" t = 0: a step source is already at its
        # final value, so the first trapezoidal interval integrates the
        # post-step system from rest (second-order accurate); ramp sources
        # start at 0 here.
        u_previous = source_voltage(times[0])
        for n in range(steps):
            u_next = source_voltage(times[n + 1])
            source_factor = np.where(capacitive, u_next + u_previous, u_next)
            rhs = rhs_matrix @ voltages[n] + b * source_factor
            voltages[n + 1] = scipy.linalg.lu_solve((lu, piv), rhs)
            u_previous = u_next

    return TransientResult(
        times=times,
        nodes=system.nodes,
        index=dict(system.index),
        voltages=voltages,
        method=method,
    )


def ramp_input(rise_time: float, amplitude: float = 1.0) -> InputFunction:
    """A finite-rise-time source: linear ramp from 0 to ``amplitude`` over ``rise_time``."""
    if rise_time <= 0:
        raise AnalysisError("rise_time must be positive")

    def source(t: float) -> float:
        if t <= 0.0:
            return 0.0
        if t >= rise_time:
            return amplitude
        return amplitude * t / rise_time

    return source
