"""Command-line interface: ``rctree-bounds``.

Subcommands
-----------

``analyze DECK.sp``
    Read a SPICE deck (R/C/V subset), compute the characteristic times and
    delay bounds of every output, and print a report.  ``--threshold`` sets
    the voltage threshold, ``--deadline`` additionally certifies each output
    (the paper's ``OK`` function).

``expression "EXPR"``
    Evaluate a paper-style tree expression (``(URC 15 0) WC (URC 0 2) ...``)
    and print its two-port summary and delay bounds.

``experiments [names...]``
    Regenerate the paper's figures and tables (Fig. 5, 10, 11, 13).

``pla N``
    Print the delay bounds of an N-minterm PLA line (Section V model).

``timing --netlist DESIGN.json [--spef FILE.spef] --period SECONDS``
    Design-level static timing through the array-native
    :class:`~repro.graph.TimingGraph`: reads a JSON netlist (and optionally a
    SPEF file streamed straight into the flat engine), propagates all three
    delay models at once, and emits a JSON report with the worst slack per
    model, the paper's ternary PASS/FAIL/INDETERMINATE verdict and the
    critical path (under ``--model``, the sign-off upper bound by default).
    ``--corners FILE.json`` additionally analyses a whole
    :class:`~repro.scenarios.ScenarioSet` (named corners with R/C/drive
    derates, per-net scales, threshold/period overrides) in one batched pass
    and reports per-scenario results; ``--jobs N`` runs that sweep on the
    sharded multi-core engine (:mod:`repro.parallel`) with ``N`` worker
    processes (``--jobs 1`` forces the serial backend; the default
    auto-selects by sweep size), and ``--engine NAME`` pins a registered
    kernel backend outright (``auto``, ``numpy``, ``process``,
    ``contract``, ``native`` -- the last is the Numba JIT-compiled kernel
    path, degrading to ``numpy`` where Numba is unavailable), overriding
    the ``--jobs``-derived choice.  ``--store DIR`` streams the stage
    forest into a memory-mapped shard store (:mod:`repro.store`) and
    solves out of core, bounding resident memory by one shard instead of
    the design.  Exit status 1 when the (overall) verdict is FAIL, 2 when
    it is INDETERMINATE.

``serve [--host H] [--port P] [--tick SECONDS]``
    Run the timing-as-a-service HTTP/JSON server (:mod:`repro.serve`):
    clients load designs into named warm sessions and issue ECO edits,
    slack/corner queries and coalesced what-if scoring over keep-alive
    connections.  ``--tick`` sets the what-if coalescing window,
    ``--engine``/``--jobs`` the default kernel backend for session solves
    (overridable per session at creation).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.algebra.expression import parse_expression
from repro.core.bounds import delay_bounds
from repro.core.certify import Verdict, certify
from repro.core.timeconstants import characteristic_times_all
from repro.experiments.runner import run_all
from repro.spicefmt.reader import read_spice
from repro.utils.units import format_engineering


def _cmd_analyze(args: argparse.Namespace) -> int:
    tree = read_spice(args.deck)
    outputs = args.output or tree.outputs or tree.leaves()
    all_times = characteristic_times_all(tree, outputs)
    print(f"network: {len(tree)} nodes, {len(tree.edges)} branches, "
          f"total C = {format_engineering(tree.total_capacitance, 'F')}, "
          f"total R = {format_engineering(tree.total_resistance, 'ohm')}")
    status = 0
    for name, times in all_times.items():
        bounds = delay_bounds(times, args.threshold)
        print(f"\noutput {name}:")
        print(f"  T_P  = {format_engineering(times.tp, 's')}")
        print(f"  T_De = {format_engineering(times.tde, 's')} (Elmore delay)")
        print(f"  T_Re = {format_engineering(times.tre, 's')}")
        print(f"  delay to {args.threshold:g}: "
              f"[{format_engineering(bounds.lower, 's')}, {format_engineering(bounds.upper, 's')}]")
        if args.deadline is not None:
            certificate = certify(times, args.threshold, args.deadline)
            print(f"  certification against {format_engineering(args.deadline, 's')}: "
                  f"{certificate.verdict.name} "
                  f"(guaranteed slack {format_engineering(certificate.guaranteed_slack, 's')})")
            if certificate.verdict is Verdict.FAIL:
                status = 1
    return status


def _cmd_expression(args: argparse.Namespace) -> int:
    expression = parse_expression(args.expression)
    twoport = expression.to_twoport()
    times = twoport.characteristic_times("port2")
    print(f"expression : {expression.to_text()}")
    print(f"two-port   : CT={twoport.ct:g}, TP={twoport.tp:g}, R22={twoport.r22:g}, "
          f"TD2={twoport.td2:g}, TR2*R22={twoport.tr2_r22:g}")
    for threshold in args.threshold:
        bounds = delay_bounds(times, threshold)
        print(f"delay to {threshold:g}: [{bounds.lower:.6g}, {bounds.upper:.6g}]")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    results = run_all(tuple(args.names))
    failures = 0
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        print(f"=== {result.experiment}: {result.description} [{status}] ===")
        print(result.report)
        print()
        failures += 0 if result.passed else 1
    return 1 if failures else 0


def _verdict_status(verdict: str) -> int:
    """Exit status for a ternary verdict: FAIL -> 1, INDETERMINATE -> 2."""
    if verdict == Verdict.FAIL.name:
        return 1
    if verdict == Verdict.INDETERMINATE.name:
        return 2
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    from repro.graph import DesignDB, TimingGraph
    from repro.sta.delaycalc import DelayModel
    from repro.sta.netlist import load_design

    design = load_design(args.netlist)
    if args.spef is not None:
        db = DesignDB.from_spef(
            design,
            args.spef,
            is_path=True,
            input_drive_resistance=args.input_drive,
            default_wire_capacitance=args.wire_cap,
            store_dir=args.store,
        )
    else:
        db = DesignDB(
            design,
            input_drive_resistance=args.input_drive,
            default_wire_capacitance=args.wire_cap,
            store_dir=args.store,
        )
    graph = TimingGraph(db, clock_period=args.period, threshold=args.threshold)
    model = DelayModel(args.model)
    summary = graph.summary(path_model=model)
    report = summary.to_dict()
    report["model"] = model.value
    verdict = summary.verdict
    if args.corners is not None:
        from repro.scenarios import ScenarioSet

        with open(args.corners, "r", encoding="utf-8") as handle:
            scenarios = ScenarioSet.from_dict(json.load(handle))
        # --engine pins a backend outright; --jobs alone pins the parallel
        # backend; the default leaves engine auto-selection (by sweep size
        # and depth pathology) to repro.parallel.
        engine = None
        if args.engine is not None and args.engine != "auto":
            engine = args.engine
        elif args.jobs is not None:
            engine = "numpy" if args.jobs == 1 else "process"
        scenario_report = graph.analyze_scenarios(
            scenarios, path_model=model, engine=engine, jobs=args.jobs
        )
        report["scenarios"] = scenario_report.to_dict()["scenarios"]
        verdict = scenario_report.overall_verdict
        report["verdict"] = verdict
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    print(payload)
    return _verdict_status(verdict)


def _cmd_pla(args: argparse.Namespace) -> int:
    from repro.apps.pla import pla_delay_sweep

    rows = pla_delay_sweep([args.minterms], args.threshold)
    row = rows[0]
    print(f"PLA line with {row.minterms} minterms, threshold {row.threshold:g}:")
    print(f"  guaranteed delay <= {row.t_upper_ns:.3f} ns")
    print(f"  delay           >= {row.t_lower_ns:.3f} ns")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_server

    run_server(
        args.host,
        args.port,
        tick=args.tick,
        engine=None if args.engine in (None, "auto") else args.engine,
        jobs=args.jobs,
        executor_workers=args.executor_workers,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="rctree-bounds",
        description="RC-tree signal delay bounds (Penfield & Rubinstein, 1981).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="analyze a SPICE deck")
    analyze.add_argument("deck", help="path to the SPICE netlist")
    analyze.add_argument("--threshold", type=float, default=0.5, help="voltage threshold (0-1)")
    analyze.add_argument("--deadline", type=float, default=None, help="certify against this delay (seconds)")
    analyze.add_argument("--output", action="append", help="restrict the report to these nodes")
    analyze.set_defaults(func=_cmd_analyze)

    expression = subparsers.add_parser("expression", help="evaluate a tree expression")
    expression.add_argument("expression", help="paper-style expression, e.g. '(URC 15 0) WC URC 0 9'")
    expression.add_argument(
        "--threshold", type=float, action="append", default=None,
        help="thresholds to report (repeatable; default 0.5 and 0.9)",
    )
    expression.set_defaults(func=_cmd_expression)

    experiments = subparsers.add_parser("experiments", help="reproduce the paper's figures")
    experiments.add_argument("names", nargs="*", help="experiment ids (default: all)")
    experiments.set_defaults(func=_cmd_experiments)

    pla = subparsers.add_parser("pla", help="delay bounds of a PLA AND-plane line")
    pla.add_argument("minterms", type=int, help="number of minterms on the line")
    pla.add_argument("--threshold", type=float, default=0.7, help="voltage threshold (default 0.7)")
    pla.set_defaults(func=_cmd_pla)

    timing = subparsers.add_parser(
        "timing", help="design-level STA through the TimingGraph engine"
    )
    timing.add_argument("--netlist", required=True, help="JSON netlist file")
    timing.add_argument("--spef", default=None, help="SPEF parasitics file")
    timing.add_argument(
        "--period", type=float, required=True, help="clock period (seconds)"
    )
    timing.add_argument(
        "--threshold", type=float, default=0.5, help="voltage threshold (0-1)"
    )
    timing.add_argument(
        "--input-drive", type=float, default=0.0,
        help="drive resistance assumed for primary inputs (ohms)",
    )
    timing.add_argument(
        "--wire-cap", type=float, default=0.0,
        help="default lumped wire capacitance for nets without parasitics (farads)",
    )
    timing.add_argument(
        "--store", default=None, metavar="DIR",
        help="solve out of core: stream the stage forest into a "
        "memory-mapped shard store at DIR (created or overwritten) and "
        "solve shard-by-shard, bounding resident memory by one shard "
        "instead of the design",
    )
    timing.add_argument(
        "--corners", default=None,
        help="JSON scenario-set file; analyse every corner in one batched pass",
    )
    timing.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the corner-sweep solve; requires "
        "--corners (1 = serial; default: auto-select the sharded engine "
        "by sweep size)",
    )
    timing.add_argument(
        "--engine", default=None,
        choices=["auto", "numpy", "process", "contract", "native"],
        help="kernel backend for the corner-sweep solve; requires --corners "
        "(default: auto-select by sweep size and depth; overrides the "
        "--jobs-derived choice; 'native' runs the JIT-compiled kernels and "
        "falls back to 'numpy' without Numba)",
    )
    timing.add_argument(
        "--model", default="upper_bound",
        choices=["elmore", "upper_bound", "lower_bound"],
        help="delay model the critical path is traced under",
    )
    timing.add_argument(
        "--output", default=None, help="also write the JSON report to this file"
    )
    timing.set_defaults(func=_cmd_timing)

    serve = subparsers.add_parser(
        "serve",
        help="run the timing-as-a-service HTTP/JSON server (repro.serve)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8787,
        help="bind port (default 8787; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--tick", type=float, default=0.002,
        help="what-if coalescing window in seconds (default 2 ms; 0 still "
        "coalesces requests that pile up during a solve but adds no latency)",
    )
    serve.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for session corner sweeps (default: "
        "auto-select by sweep size)",
    )
    serve.add_argument(
        "--engine", default=None,
        choices=["auto", "numpy", "process", "contract", "native"],
        help="default kernel backend for session solves (sessions may "
        "override at creation; 'native' falls back to 'numpy' without Numba)",
    )
    serve.add_argument(
        "--executor-workers", type=int, default=4,
        help="threads in the solve executor (default 4)",
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) == "expression" and args.threshold is None:
        args.threshold = [0.5, 0.9]
    if getattr(args, "command", None) == "timing":
        if args.jobs is not None and args.corners is None:
            # Silently running serial after the user asked for workers would be
            # worse than refusing: --jobs parallelizes the corner sweep only.
            parser.error("timing: --jobs requires --corners (it parallelizes the corner sweep)")
        if args.engine is not None and args.corners is None:
            parser.error("timing: --engine requires --corners (it selects the corner-sweep kernel)")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
