"""Process technology descriptions used for parasitic extraction.

A :class:`Technology` converts drawn geometry (lengths, widths, areas) into
electrical parasitics (ohms, farads) using sheet resistances and oxide
capacitances.  Two ready-made processes are provided:

* :data:`PAPER_NMOS_4UM` -- the 4-micron NMOS process of the paper's
  Section V (30 ohm/sq polysilicon, 400 A gate oxide, 3000 A field oxide).
  From these numbers the class derives the paper's own element values:
  roughly 180 ohm and 0.01 pF per 24-micron poly segment, 30 ohm and
  0.013 pF per 4x4 micron gate.
* :data:`GENERIC_1UM_CMOS` -- a generic scaled process useful for the
  clock-tree and bus examples (values are representative, not tied to any
  foundry).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.core.exceptions import ElementValueError
from repro.utils.checks import require_positive

#: Permittivity of free space, F/m.
EPSILON_0 = 8.854e-12
#: Relative permittivity of silicon dioxide.
EPSILON_SIO2 = 3.9


class Layer(enum.Enum):
    """Interconnect layers distinguished by the extractor."""

    POLY = "poly"
    METAL = "metal"
    DIFFUSION = "diffusion"


@dataclass(frozen=True)
class Technology:
    """Electrical description of a fabrication process.

    All geometric quantities are in metres, resistances in ohm/square and
    capacitances derived from oxide thicknesses in farads.

    Attributes
    ----------
    name:
        Human-readable process name.
    feature_size:
        Minimum drawn feature (transistor length, minimum wire width), metres.
    sheet_resistance:
        Ohm/square per :class:`Layer`.
    gate_oxide_thickness:
        Thin (gate) oxide thickness, metres.
    field_oxide_thickness:
        Thick (field) oxide under routing, metres.
    fringe_capacitance_per_length:
        Extra sidewall/fringe capacitance per metre of wire edge (F/m); kept
        at 0 for the paper's process, which used pure parallel-plate numbers.
    contact_capacitance:
        Capacitance added per contact cut, farads.
    """

    name: str
    feature_size: float
    sheet_resistance: Dict[Layer, float]
    gate_oxide_thickness: float
    field_oxide_thickness: float
    fringe_capacitance_per_length: float = 0.0
    contact_capacitance: float = 0.0

    def __post_init__(self):
        require_positive("feature_size", self.feature_size)
        require_positive("gate_oxide_thickness", self.gate_oxide_thickness)
        require_positive("field_oxide_thickness", self.field_oxide_thickness)
        for layer in Layer:
            if layer not in self.sheet_resistance:
                raise ElementValueError(f"sheet_resistance missing for layer {layer.value!r}")

    # ------------------------------------------------------------------
    # Areal capacitances
    # ------------------------------------------------------------------
    @property
    def gate_capacitance_per_area(self) -> float:
        """Thin-oxide (gate) capacitance per unit area, F/m^2."""
        return EPSILON_0 * EPSILON_SIO2 / self.gate_oxide_thickness

    @property
    def field_capacitance_per_area(self) -> float:
        """Field-oxide (routing) capacitance per unit area, F/m^2."""
        return EPSILON_0 * EPSILON_SIO2 / self.field_oxide_thickness

    # ------------------------------------------------------------------
    # Wires
    # ------------------------------------------------------------------
    def wire_resistance(self, layer: Layer, length: float, width: float) -> float:
        """Series resistance of a wire segment: ``rho_sheet * length / width``."""
        require_positive("length", length)
        require_positive("width", width)
        return self.sheet_resistance[layer] * length / width

    def wire_capacitance(self, layer: Layer, length: float, width: float) -> float:
        """Ground capacitance of a wire segment over field oxide.

        Metal and poly routing both sit on field oxide; diffusion capacitance
        is dominated by the junction, approximated here with the same areal
        value (adequate for delay estimation, and the paper does the same).
        """
        require_positive("length", length)
        require_positive("width", width)
        area = length * width
        plate = self.field_capacitance_per_area * area
        fringe = self.fringe_capacitance_per_length * 2.0 * length
        return plate + fringe

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------
    def gate_capacitance(self, width: float, length: float) -> float:
        """Input capacitance of an MOS gate of drawn ``width`` x ``length``."""
        require_positive("width", width)
        require_positive("length", length)
        return self.gate_capacitance_per_area * width * length

    def gate_resistance(self, width: float, length: float) -> float:
        """Series resistance of the poly gate finger itself (ohm)."""
        require_positive("width", width)
        require_positive("length", length)
        return self.sheet_resistance[Layer.POLY] * width / length

    def minimum_gate_capacitance(self) -> float:
        """Capacitance of a minimum-size (feature x feature) gate."""
        return self.gate_capacitance(self.feature_size, self.feature_size)

    def describe(self) -> str:
        """Multi-line summary of the derived electrical constants."""
        micron = 1e-6
        seg = 24 * micron
        lines = [
            f"Technology {self.name!r}: feature size {self.feature_size / micron:g} um",
            f"  poly sheet resistance : {self.sheet_resistance[Layer.POLY]:g} ohm/sq",
            f"  metal sheet resistance: {self.sheet_resistance[Layer.METAL]:g} ohm/sq",
            f"  gate oxide capacitance: {self.gate_capacitance_per_area * 1e3:.3g} fF/um^2",
            f"  field oxide capacitance: {self.field_capacitance_per_area * 1e3:.3g} fF/um^2",
            f"  (poly wire, {seg / micron:g} um x {self.feature_size / micron:g} um: "
            f"{self.wire_resistance(Layer.POLY, seg, self.feature_size):.3g} ohm, "
            f"{self.wire_capacitance(Layer.POLY, seg, self.feature_size) * 1e12:.3g} pF)",
        ]
        return "\n".join(lines)


#: The 4-micron NMOS process of the paper's Section V.
PAPER_NMOS_4UM = Technology(
    name="paper-nmos-4um",
    feature_size=4e-6,
    sheet_resistance={
        Layer.POLY: 30.0,
        Layer.METAL: 0.05,
        Layer.DIFFUSION: 10.0,
    },
    gate_oxide_thickness=400e-10,
    field_oxide_thickness=3000e-10,
)

#: A representative 1-micron CMOS process for the non-paper examples.
GENERIC_1UM_CMOS = Technology(
    name="generic-1um-cmos",
    feature_size=1e-6,
    sheet_resistance={
        Layer.POLY: 20.0,
        Layer.METAL: 0.07,
        Layer.DIFFUSION: 25.0,
    },
    gate_oxide_thickness=200e-10,
    field_oxide_thickness=6000e-10,
    fringe_capacitance_per_length=0.04e-15 / 1e-6,  # 0.04 fF per micron of edge
    contact_capacitance=0.5e-15,
)
