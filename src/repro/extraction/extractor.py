"""Turn routed-net geometry into an RC tree (the Figure 1 -> Figure 2 step).

Rules applied, matching the modelling choices spelled out in the paper's
introduction:

* every wire segment becomes a distributed URC line with resistance and
  capacitance from the :class:`~repro.extraction.technology.Technology`
  (metal segments have so little resistance that they may optionally be
  collapsed to pure capacitance, which is exactly what the paper does for
  its metal line -- "the resistance of the metal line is neglected, but its
  parasitic capacitance remains");
* every contact cut adds lumped capacitance at its point;
* every gate load becomes a (possibly zero-ohm) series resistor into a node
  carrying the thin-oxide gate capacitance, and that node is marked as an
  output (gates are what the signal ultimately has to reach);
* a driver model, when given, prepends the pull-up resistance and the driver
  output capacitance in front of the whole net.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tree import RCTree
from repro.extraction.geometry import RoutedNet
from repro.extraction.technology import Layer, Technology
from repro.mos.drivers import DriverModel


def extract_net(
    net: RoutedNet,
    technology: Technology,
    *,
    driver: Optional[DriverModel] = None,
    neglect_metal_resistance: bool = True,
    input_node: str = "in",
) -> RCTree:
    """Extract ``net`` into an :class:`RCTree` using ``technology``.

    Parameters
    ----------
    net:
        The routed-net geometry.
    technology:
        Process description supplying sheet resistances and oxide capacitances.
    driver:
        Optional driver model; when given, the tree's input is the ideal
        source behind the driver's pull-up resistance, and the driver's
        output capacitance is placed at the net's driver point.
    neglect_metal_resistance:
        Follow the paper and keep only the capacitance of metal segments.
    input_node:
        Name of the tree's input node.
    """
    net.validate()
    tree = RCTree(input_node)

    # Map net points onto tree nodes.  The driver point either *is* the input
    # (no driver model) or hangs behind the pull-up resistance.
    if driver is None:
        point_node = {net.driver_point: input_node}
    else:
        driver_node = f"{net.name}.{net.driver_point}"
        tree.add_resistor(input_node, driver_node, driver.effective_resistance)
        if driver.output_capacitance:
            tree.add_capacitor(driver_node, driver.output_capacitance)
        point_node = {net.driver_point: driver_node}

    for segment in net.segments:
        parent = point_node[segment.start]
        child = f"{net.name}.{segment.end}"
        capacitance = technology.wire_capacitance(segment.layer, segment.length, segment.width)
        if segment.layer is Layer.METAL and neglect_metal_resistance:
            # Zero-resistance wire: same electrical node, capacitance folded in.
            tree.add_capacitor(parent, capacitance)
            point_node[segment.end] = parent
            continue
        resistance = technology.wire_resistance(segment.layer, segment.length, segment.width)
        tree.add_line(parent, child, resistance, capacitance)
        point_node[segment.end] = child

    for contact in net.contacts:
        node = point_node[contact.point]
        tree.add_capacitor(node, contact.count * technology.contact_capacitance)

    for position, load in enumerate(net.loads, start=1):
        node = point_node[load.point]
        gate_name = load.name or f"{net.name}.{load.point}_gate{position}"
        gate_cap = technology.gate_capacitance(load.width, load.length)
        if load.series_resistance > 0.0:
            tree.add_resistor(node, gate_name, load.series_resistance)
            tree.add_capacitor(gate_name, gate_cap)
            tree.mark_output(gate_name)
        else:
            # Zero series resistance: the gate sits directly on the wire node.
            tree.add_capacitor(node, gate_cap)
            tree.mark_output(node)

    return tree


def extract_wire_chain(
    name: str,
    technology: Technology,
    layer: Layer,
    segment_lengths,
    width: float,
    *,
    driver: Optional[DriverModel] = None,
    load_capacitance: float = 0.0,
) -> RCTree:
    """Convenience extractor: a straight multi-segment wire with one far-end load.

    Builds a :class:`RoutedNet` that is a simple chain of segments of the
    given lengths and extracts it.  Useful for quick what-if estimates
    ("how slow is 2 mm of poly?") without writing out geometry objects.
    """
    net = RoutedNet(name)
    previous = net.driver_point
    for index, length in enumerate(segment_lengths, start=1):
        point = f"p{index}"
        net.add_wire(previous, point, layer, length, width)
        previous = point
    tree = extract_net(net, technology, driver=driver)
    far_node = f"{name}.{previous}" if previous != net.driver_point else tree.root
    if load_capacitance:
        tree.add_capacitor(far_node, load_capacitance)
    tree.mark_output(far_node)
    return tree
