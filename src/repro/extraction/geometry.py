"""Geometric description of a routed net.

A :class:`RoutedNet` is a tree of named electrical points connected by
:class:`WireSegment` pieces, decorated with :class:`Contact` cuts and
:class:`GateLoad` transistor gates.  It is a deliberately small layout
abstraction -- just enough to express the MOS signal-distribution networks of
the paper's Figure 1 and the PLA lines of Section V -- that the extractor
turns into an :class:`~repro.core.tree.RCTree`.

The driver point of the net is its root; like the RC tree itself, the routing
must be a tree (each point is reached by exactly one wire).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.exceptions import DuplicateNodeError, TopologyError, UnknownNodeError
from repro.extraction.technology import Layer
from repro.utils.checks import require_non_negative, require_positive


@dataclass(frozen=True)
class WireSegment:
    """A straight piece of routing between two named points.

    Attributes
    ----------
    start, end:
        Names of the electrical points the segment connects.
    layer:
        Routing layer (determines sheet resistance and oxide capacitance).
    length, width:
        Drawn dimensions in metres.
    """

    start: str
    end: str
    layer: Layer
    length: float
    width: float

    def __post_init__(self):
        require_positive("length", self.length)
        require_positive("width", self.width)


@dataclass(frozen=True)
class Contact:
    """A contact cut / via at a point (adds lumped capacitance)."""

    point: str
    count: int = 1

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("contact count must be >= 1")


@dataclass(frozen=True)
class GateLoad:
    """An MOS gate input attached at a point.

    Attributes
    ----------
    point:
        Electrical point the gate hangs from.
    width, length:
        Drawn gate dimensions in metres.
    series_resistance:
        Resistance between the routing point and the gate proper (the poly
        finger); the paper's PLA model uses 30 ohm here.
    name:
        Optional instance name; defaults to ``"<point>_gate<i>"`` when the
        net is extracted.
    """

    point: str
    width: float
    length: float
    series_resistance: float = 0.0
    name: Optional[str] = None

    def __post_init__(self):
        require_positive("width", self.width)
        require_positive("length", self.length)
        require_non_negative("series_resistance", self.series_resistance)


class RoutedNet:
    """A routed signal net: a driver point, wires, contacts and gate loads."""

    def __init__(self, name: str, driver_point: str = "drv"):
        self.name = name
        self.driver_point = driver_point
        self._points: List[str] = [driver_point]
        self._segments: List[WireSegment] = []
        self._contacts: List[Contact] = []
        self._loads: List[GateLoad] = []
        self._parent: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def points(self) -> List[str]:
        """All electrical point names, driver first."""
        return list(self._points)

    @property
    def segments(self) -> List[WireSegment]:
        """All wire segments, in insertion order."""
        return list(self._segments)

    @property
    def contacts(self) -> List[Contact]:
        """All contact cuts."""
        return list(self._contacts)

    @property
    def loads(self) -> List[GateLoad]:
        """All gate loads."""
        return list(self._loads)

    def add_wire(
        self, start: str, end: str, layer: Layer, length: float, width: float
    ) -> WireSegment:
        """Route a wire from an existing point ``start`` to a new point ``end``."""
        if start not in self._points:
            raise UnknownNodeError(start)
        if end in self._points:
            raise DuplicateNodeError(end)
        segment = WireSegment(start, end, layer, length, width)
        self._segments.append(segment)
        self._points.append(end)
        self._parent[end] = start
        return segment

    def add_contact(self, point: str, count: int = 1) -> Contact:
        """Add ``count`` contact cuts at ``point``."""
        if point not in self._points:
            raise UnknownNodeError(point)
        contact = Contact(point, count)
        self._contacts.append(contact)
        return contact

    def add_gate(
        self,
        point: str,
        width: float,
        length: float,
        *,
        series_resistance: float = 0.0,
        name: Optional[str] = None,
    ) -> GateLoad:
        """Attach an MOS gate load at ``point``."""
        if point not in self._points:
            raise UnknownNodeError(point)
        load = GateLoad(point, width, length, series_resistance, name)
        self._loads.append(load)
        return load

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that the routing forms a tree rooted at the driver point."""
        reachable = {self.driver_point}
        for segment in self._segments:
            if segment.start not in reachable:
                raise TopologyError(
                    f"wire {segment.start!r} -> {segment.end!r} starts at an unrouted point"
                )
            reachable.add(segment.end)
        missing = [p for p in self._points if p not in reachable]
        if missing:
            raise TopologyError(f"points {missing!r} are not connected to the driver")

    def total_wire_length(self) -> float:
        """Total routed length (metres), a common congestion metric."""
        return sum(segment.length for segment in self._segments)

    def fanout(self) -> int:
        """Number of gate loads on the net."""
        return len(self._loads)
