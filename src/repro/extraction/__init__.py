"""Parasitic-extraction substrate: from wire geometry to an RC tree.

The paper's Figure 1 -> Figure 2 step -- replacing an MOS signal-distribution
network by a linear RC model -- is performed by hand in the paper.  This
subpackage automates it:

* :mod:`repro.extraction.technology` describes a fabrication process (sheet
  resistances, oxide thicknesses, feature size) and converts geometry into
  ohms and farads.  The 4-micron NMOS process of Section V ships as
  :data:`repro.extraction.technology.PAPER_NMOS_4UM`.
* :mod:`repro.extraction.geometry` describes routing as wire segments, vias /
  contacts and gate loads attached to named points.
* :mod:`repro.extraction.extractor` walks a routed net and emits the
  corresponding :class:`~repro.core.tree.RCTree`.
"""

from repro.extraction.technology import (
    Technology,
    Layer,
    PAPER_NMOS_4UM,
    GENERIC_1UM_CMOS,
)
from repro.extraction.geometry import WireSegment, Contact, GateLoad, RoutedNet
from repro.extraction.extractor import extract_net, extract_wire_chain

__all__ = [
    "Technology",
    "Layer",
    "PAPER_NMOS_4UM",
    "GENERIC_1UM_CMOS",
    "WireSegment",
    "Contact",
    "GateLoad",
    "RoutedNet",
    "extract_net",
    "extract_wire_chain",
]
