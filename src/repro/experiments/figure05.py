"""Reproduce Figure 5: the qualitative form of the bounds.

Figure 5 of the paper is a sketch: the exact step response, sandwiched by the
upper and lower envelopes, with the gap exaggerated for clarity.  The
quantitative content behind the sketch is a set of structural facts that this
module checks and reports for any network:

* both envelopes start at the exact value (0) at ``t = 0`` -- more precisely
  the lower bound is 0 there and the upper bound equals ``1 - T_De/T_P``;
* both envelopes approach 1 as ``t`` grows;
* the envelopes never cross (``v_min(t) <= v_max(t)`` everywhere);
* the exact response lies between them at every sampled time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bounds import BoundedResponse
from repro.core.networks import figure7_tree
from repro.core.timeconstants import characteristic_times
from repro.core.tree import RCTree
from repro.simulate.state_space import exact_step_response


@dataclass(frozen=True)
class Figure05Envelope:
    """Sampled envelope data plus the structural checks behind Fig. 5."""

    times: np.ndarray
    vmin: np.ndarray
    vmax: np.ndarray
    exact: Optional[np.ndarray]

    @property
    def envelopes_ordered(self) -> bool:
        """True when ``v_min <= v_max`` at every sample."""
        return bool(np.all(self.vmin <= self.vmax + 1e-12))

    @property
    def exact_inside(self) -> bool:
        """True when the exact response stays inside the envelope (when available)."""
        if self.exact is None:
            return True
        return bool(
            np.all(self.exact >= self.vmin - 1e-9) and np.all(self.exact <= self.vmax + 1e-9)
        )

    @property
    def upper_start(self) -> float:
        """Value of the upper envelope at ``t = 0`` (should be ``1 - T_De/T_P``)."""
        return float(self.vmax[0])

    @property
    def approaches_one(self) -> bool:
        """True when both envelopes are within 2% of 1 at the last sample."""
        return bool(self.vmin[-1] > 0.98 and self.vmax[-1] > 0.98)


def figure05_envelope(
    tree: Optional[RCTree] = None,
    output: Optional[str] = None,
    *,
    points: int = 300,
    horizon_in_tp: float = 12.0,
    include_exact: bool = True,
    segments_per_line: int = 30,
) -> Figure05Envelope:
    """Sample the bound envelopes (and optionally the exact response) of a network.

    Defaults to the paper's Figure 7 network and its ``out`` node.
    """
    tree = tree if tree is not None else figure7_tree()
    output = output or (tree.outputs[0] if tree.outputs else tree.leaves()[-1])
    times = characteristic_times(tree, output)
    bounded = BoundedResponse(times)
    grid = np.linspace(0.0, horizon_in_tp * times.tp, int(points))
    vmin = np.asarray(bounded.vmin(grid), dtype=float)
    vmax = np.asarray(bounded.vmax(grid), dtype=float)
    exact = None
    if include_exact:
        response = exact_step_response(tree, segments_per_line=segments_per_line)
        exact = np.asarray(response.voltage(output, grid), dtype=float)
    return Figure05Envelope(times=grid, vmin=vmin, vmax=vmax, exact=exact)
