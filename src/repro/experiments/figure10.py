"""Reproduce Figure 10: the numeric bound tables for the Figure 7 network.

The paper's APL session defines the example network of Figure 7, then prints

* ``TMIN`` / ``TMAX`` for thresholds 0.1 ... 0.9, and
* ``VMIN`` / ``VMAX`` for times 20 ... 2000,

and the same numbers are produced here from the expression of eq. (18),
through the two-port algebra, through the bound formulas -- the full pipeline
of Section IV.  The reference values printed in the paper are stored in
:mod:`repro.core.networks` and compared against by the tests; the benchmark
``bench_fig10_delay_table.py`` regenerates the rows and reports agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.algebra.expression import figure7_expression
from repro.core.bounds import delay_bound_table, voltage_bound_table
from repro.core.networks import FIGURE10_DELAY_ROWS, FIGURE10_VOLTAGE_ROWS
from repro.core.timeconstants import CharacteristicTimes
from repro.utils.tables import Table

#: Threshold sweep used by the paper's delay table.
PAPER_THRESHOLDS = tuple(round(0.1 * i, 1) for i in range(1, 10))
#: Time sweep used by the paper's voltage table (the paper's units).
PAPER_TIMES = (20.0, 40.0, 60.0, 80.0, 100.0, 200.0, 300.0, 400.0, 500.0, 1000.0, 2000.0)


def figure7_times() -> CharacteristicTimes:
    """Characteristic times of the Figure 7 network, via the eq. (18) expression."""
    return figure7_expression().to_twoport().characteristic_times("out")


def figure10_delay_table(
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
) -> List[Tuple[float, float, float]]:
    """Rows ``(threshold, t_min, t_max)`` of the Fig. 10 delay table."""
    return delay_bound_table(figure7_times(), thresholds)


def figure10_voltage_table(
    times: Sequence[float] = PAPER_TIMES,
) -> List[Tuple[float, float, float]]:
    """Rows ``(time, v_min, v_max)`` of the Fig. 10 voltage table."""
    return voltage_bound_table(figure7_times(), times)


@dataclass(frozen=True)
class Figure10Report:
    """Both regenerated tables plus the paper's printed values for comparison."""

    delay_rows: List[Tuple[float, float, float]]
    voltage_rows: List[Tuple[float, float, float]]
    paper_delay_rows: List[Tuple[float, float, float]]
    paper_voltage_rows: List[Tuple[float, float, float]]

    def max_relative_error(self) -> float:
        """Largest relative deviation from the paper's printed numbers."""
        worst = 0.0
        for ours, paper in zip(self.delay_rows + self.voltage_rows,
                               self.paper_delay_rows + self.paper_voltage_rows):
            for mine, reference in zip(ours[1:], paper[1:]):
                if reference == 0.0:
                    worst = max(worst, abs(mine))
                else:
                    worst = max(worst, abs(mine - reference) / abs(reference))
        return worst

    def render(self) -> str:
        """Both tables formatted side by side with the paper's numbers."""
        delay = Table(
            headers=["V", "TMIN (ours)", "TMAX (ours)", "TMIN (paper)", "TMAX (paper)"],
            precision=5,
            title="Figure 10 -- delay bounds for the Figure 7 network",
        )
        for ours, paper in zip(self.delay_rows, self.paper_delay_rows):
            delay.add_row([ours[0], ours[1], ours[2], paper[1], paper[2]])
        voltage = Table(
            headers=["T", "VMIN (ours)", "VMAX (ours)", "VMIN (paper)", "VMAX (paper)"],
            precision=5,
            title="Figure 10 -- voltage bounds for the Figure 7 network",
        )
        for ours, paper in zip(self.voltage_rows, self.paper_voltage_rows):
            voltage.add_row([ours[0], ours[1], ours[2], paper[1], paper[2]])
        return delay.render() + "\n\n" + voltage.render()


def figure10_report() -> Figure10Report:
    """Regenerate both Fig. 10 tables and pair them with the paper's values."""
    return Figure10Report(
        delay_rows=figure10_delay_table(),
        voltage_rows=figure10_voltage_table(),
        paper_delay_rows=list(FIGURE10_DELAY_ROWS),
        paper_voltage_rows=list(FIGURE10_VOLTAGE_ROWS),
    )
