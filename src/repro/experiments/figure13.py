"""Reproduce Figure 13: PLA line delay bounds versus minterm count.

The paper sweeps the number of minterms from 2 to 100, evaluates the bounds
at a 0.7 threshold and plots both bounds on a log-log scale; the visible
conclusions are (a) delay grows quadratically with line length and (b) even
at 100 minterms the guaranteed delay is about 10 ns, so the PLA's dominant
delay is elsewhere.  This module regenerates the sweep and quantifies both
conclusions: the fitted log-log slope (should approach 2 for long lines) and
the 100-minterm upper bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.apps.pla import PLASweepRow, pla_delay_sweep
from repro.utils.tables import Table

#: Minterm counts sampled in the regenerated sweep (the paper's axis runs 2..100).
PAPER_MINTERM_COUNTS = (2, 4, 6, 10, 16, 20, 30, 40, 60, 80, 100)


@dataclass(frozen=True)
class Figure13Sweep:
    """The regenerated Fig. 13 data and its headline statistics."""

    rows: List[PLASweepRow]
    threshold: float

    @property
    def upper_bound_at_100_ns(self) -> float:
        """Guaranteed delay (ns) of the 100-minterm line -- the paper's '10 ns' claim."""
        for row in self.rows:
            if row.minterms == 100:
                return row.t_upper_ns
        raise ValueError("the sweep does not include 100 minterms")

    def loglog_slope(self, *, bound: str = "upper", tail: int = 4) -> float:
        """Least-squares slope of log(delay) vs log(minterms) over the last ``tail`` points.

        The paper highlights the quadratic dependence of delay on line length;
        for large minterm counts the slope approaches 2.
        """
        if bound not in ("upper", "lower"):
            raise ValueError("bound must be 'upper' or 'lower'")
        rows = self.rows[-tail:]
        xs = [math.log(row.minterms) for row in rows]
        ys = [
            math.log(row.t_upper if bound == "upper" else row.t_lower) for row in rows
        ]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        denominator = sum((x - mean_x) ** 2 for x in xs)
        return numerator / denominator

    def render(self) -> str:
        """Text table standing in for the log-log plot."""
        table = Table(
            headers=["minterms", "t_min (ns)", "t_max (ns)"],
            precision=4,
            title=f"Figure 13 -- PLA line delay bounds at threshold {self.threshold:g}",
        )
        for row in self.rows:
            table.add_row([row.minterms, row.t_lower_ns, row.t_upper_ns])
        extra = [
            table.render(),
            "",
            f"upper bound at 100 minterms : {self.upper_bound_at_100_ns:.2f} ns "
            "(paper: guaranteed no worse than ~10 ns)",
            f"log-log slope (upper bound) : {self.loglog_slope():.2f} "
            "(paper: quadratic dependence, slope -> 2)",
        ]
        return "\n".join(extra)


def figure13_sweep(
    minterm_counts: Sequence[int] = PAPER_MINTERM_COUNTS, threshold: float = 0.7
) -> Figure13Sweep:
    """Regenerate the Fig. 13 sweep."""
    rows = pla_delay_sweep(minterm_counts, threshold)
    return Figure13Sweep(rows=rows, threshold=threshold)
