"""Reproduce Figure 11: bound envelopes versus the exact simulated response.

The paper overlays the VMIN/VMAX envelopes of Figure 10 with "the exact
solution, found from circuit simulation" over roughly 0-600 time units.  Here
the exact solution comes from the internal state-space simulator (the Figure
7 network's distributed line lumped into many sections), and the comparison
reports

* the largest bound violation (should be none, up to lumping error),
* the exact 0.5 / 0.9 crossing times next to the delay bounds, and
* the average envelope width (how tight the bounds are for this network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.bounds import BoundedResponse
from repro.core.networks import figure7_tree
from repro.experiments.figure10 import figure7_times
from repro.simulate.compare import BoundsCheck, bounds_violations
from repro.simulate.state_space import exact_step_response
from repro.simulate.waveform import Waveform
from repro.utils.tables import Table


@dataclass(frozen=True)
class Figure11Comparison:
    """The regenerated Fig. 11 data."""

    times: np.ndarray
    vmin: np.ndarray
    vmax: np.ndarray
    exact: np.ndarray
    check: BoundsCheck
    crossings: List[Tuple[float, float, float, float]]  # threshold, tmin, exact, tmax

    @property
    def mean_envelope_width(self) -> float:
        """Average ``v_max - v_min`` over the sampled window."""
        return float(np.mean(self.vmax - self.vmin))

    def render(self) -> str:
        """Text summary standing in for the Fig. 11 plot."""
        table = Table(
            headers=["threshold", "t_min (bound)", "t_exact (sim)", "t_max (bound)"],
            precision=5,
            title="Figure 11 -- exact crossings versus delay bounds",
        )
        for row in self.crossings:
            table.add_row(row)
        summary = [
            table.render(),
            "",
            f"samples checked          : {self.check.samples}",
            f"worst lower-bound escape : {self.check.worst_lower_violation:.3e}",
            f"worst upper-bound escape : {self.check.worst_upper_violation:.3e}",
            f"mean envelope width      : {self.mean_envelope_width:.4f}",
        ]
        return "\n".join(summary)


def figure11_comparison(
    t_end: float = 600.0,
    points: int = 400,
    thresholds: Sequence[float] = (0.2, 0.5, 0.7, 0.9),
    *,
    segments_per_line: int = 50,
) -> Figure11Comparison:
    """Regenerate the Fig. 11 comparison for the Figure 7 network."""
    tree = figure7_tree()
    times = figure7_times()
    bounded = BoundedResponse(times)
    response = exact_step_response(tree, segments_per_line=segments_per_line)

    grid = np.linspace(0.0, float(t_end), int(points))
    exact = np.asarray(response.voltage("out", grid), dtype=float)
    vmin = np.asarray(bounded.vmin(grid), dtype=float)
    vmax = np.asarray(bounded.vmax(grid), dtype=float)
    check = bounds_violations(Waveform(grid, exact), bounded)

    crossings = []
    for threshold in thresholds:
        crossings.append(
            (
                float(threshold),
                float(bounded.tmin(threshold)),
                response.delay("out", float(threshold)),
                float(bounded.tmax(threshold)),
            )
        )

    return Figure11Comparison(
        times=grid, vmin=vmin, vmax=vmax, exact=exact, check=check, crossings=crossings
    )
