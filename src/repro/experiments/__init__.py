"""Experiment harness: regenerate every table and figure of the paper.

Each module reproduces one artefact of the paper's evaluation and returns
both machine-readable rows and a formatted text table:

* :mod:`repro.experiments.figure05` -- the qualitative bound-envelope plot
  (Fig. 5): envelopes sandwiching the exact response;
* :mod:`repro.experiments.figure10` -- the numeric delay-bound and
  voltage-bound tables for the Figure 7 network (Fig. 10);
* :mod:`repro.experiments.figure11` -- bounds versus the exact simulated
  response over 0-600 s (Fig. 11);
* :mod:`repro.experiments.figure13` -- PLA delay bounds versus minterm count
  (Figs. 12-13);
* :mod:`repro.experiments.runner` -- run everything and print a summary
  (also exposed as ``python -m repro.experiments``).
"""

from repro.experiments.figure05 import figure05_envelope
from repro.experiments.figure10 import (
    figure10_delay_table,
    figure10_voltage_table,
    figure10_report,
)
from repro.experiments.figure11 import figure11_comparison
from repro.experiments.figure13 import figure13_sweep
from repro.experiments.runner import run_all

__all__ = [
    "figure05_envelope",
    "figure10_delay_table",
    "figure10_voltage_table",
    "figure10_report",
    "figure11_comparison",
    "figure13_sweep",
    "run_all",
]
