"""Run every experiment and print the regenerated tables.

``python -m repro.experiments`` (or :func:`run_all` from code) reproduces the
paper's Figures 5, 10, 11 and 13 in sequence and prints the comparison
against the paper's published numbers.  The same entry point backs the
``rctree-bounds experiments`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.experiments.figure05 import figure05_envelope
from repro.experiments.figure10 import figure10_report
from repro.experiments.figure11 import figure11_comparison
from repro.experiments.figure13 import figure13_sweep


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's identifier, rendered report, and pass/fail status."""

    experiment: str
    description: str
    passed: bool
    report: str


def _run_figure05() -> ExperimentResult:
    envelope = figure05_envelope()
    passed = (
        envelope.envelopes_ordered and envelope.exact_inside and envelope.approaches_one
    )
    report = (
        f"envelopes ordered: {envelope.envelopes_ordered}; "
        f"exact inside envelope: {envelope.exact_inside}; "
        f"upper bound at t=0: {envelope.upper_start:.4f}; "
        f"both envelopes -> 1: {envelope.approaches_one}"
    )
    return ExperimentResult(
        experiment="figure05",
        description="qualitative form of the bounds (Fig. 5)",
        passed=passed,
        report=report,
    )


def _run_figure10() -> ExperimentResult:
    report = figure10_report()
    error = report.max_relative_error()
    return ExperimentResult(
        experiment="figure10",
        description="delay and voltage bound tables (Fig. 10)",
        passed=error < 5e-4,
        report=report.render() + f"\n\nmax relative deviation from the paper: {error:.2e}",
    )


def _run_figure11() -> ExperimentResult:
    comparison = figure11_comparison()
    passed = comparison.check.within(5e-3)
    return ExperimentResult(
        experiment="figure11",
        description="bounds versus exact simulation (Fig. 11)",
        passed=passed,
        report=comparison.render(),
    )


def _run_figure13() -> ExperimentResult:
    sweep = figure13_sweep()
    slope = sweep.loglog_slope()
    at_100 = sweep.upper_bound_at_100_ns
    passed = 1.5 <= slope <= 2.2 and 8.0 <= at_100 <= 12.0
    return ExperimentResult(
        experiment="figure13",
        description="PLA delay versus minterm count (Fig. 13)",
        passed=passed,
        report=sweep.render(),
    )


#: Registry of experiment runners, keyed by experiment id.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "figure05": _run_figure05,
    "figure10": _run_figure10,
    "figure11": _run_figure11,
    "figure13": _run_figure13,
}


def run_all(names: Tuple[str, ...] = ()) -> List[ExperimentResult]:
    """Run the selected experiments (all of them by default)."""
    selected = names or tuple(EXPERIMENTS)
    results = []
    for name in selected:
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
        results.append(EXPERIMENTS[name]())
    return results


def main(argv=None) -> int:
    """Command-line entry point: run and print every experiment."""
    import argparse

    parser = argparse.ArgumentParser(description="Reproduce the paper's figures and tables.")
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    args = parser.parse_args(argv)
    results = run_all(tuple(args.experiments))
    failures = 0
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        print(f"=== {result.experiment}: {result.description} [{status}] ===")
        print(result.report)
        print()
        if not result.passed:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
