"""Named analysis scenarios: corners, derates and what-if parameterizations.

The paper's bounds are sold on being cheap enough to re-evaluate under every
process/environment assumption a designer cares about.  This module is the
vocabulary for those assumptions:

* :class:`Scenario` -- one named parameterization: multiplicative derates on
  wire resistance (``r_derate``), on every capacitance (``c_derate``) and on
  driver resistances (``drive_derate``); optional absolute overrides for the
  clock period and the bound threshold; and per-net parasitic scale factors
  for localized extraction uncertainty.
* :class:`ScenarioSet` -- an ordered batch of scenarios that **compiles to
  broadcastable numpy arrays**, which is what the scenario-batched solvers
  consume: :meth:`repro.flat.FlatTree.solve_scenarios`,
  :meth:`repro.graph.DesignDB.solve_scenarios` and
  :meth:`repro.graph.TimingGraph.analyze_scenarios` all evaluate every
  scenario in the *same* vectorized level sweeps, adding a leading ``(S,)``
  axis instead of re-running the pipeline per scenario.
* :class:`ParameterPlane` -- the low-level ``(S,)``-broadcastable scale plane
  a bare :class:`~repro.flat.FlatTree` understands (no net/driver concepts).
* :func:`scaled_cell` / :func:`scaled_parasitics` / :func:`scaled_design` --
  materialize *one* scenario as concrete scaled inputs for the
  single-scenario engine.  This is both a user-facing escape hatch and the
  reference loop the parity tests and ``benchmarks/bench_scenarios.py``
  compare the batched axis against (rtol 1e-12).

Semantics, precisely:

* ``r_derate`` multiplies every **wire** resistance; ``drive_derate``
  multiplies every **driver** resistance (cell drive resistance and the
  primary-input drive), including the engine's 1e-6 ohm placeholder for
  zero-resistance drivers;
* ``c_derate`` multiplies every capacitance -- wire (lumped and distributed)
  and sink-pin loads alike;
* a per-net ``net_scale`` factor additionally multiplies that net's *wire*
  parasitics (R and C) but **not** the pin loads attached to it, modelling a
  net-specific extraction uncertainty;
* ``clock_period`` / ``threshold``, when set, replace the analysis defaults
  for that scenario only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.exceptions import AnalysisError
from repro.core.tree import RCTree
from repro.sta.cells import Cell
from repro.sta.netlist import Design
from repro.sta.parasitics import NetParasitics, lumped, rc_tree_parasitics

__all__ = [
    "Scenario",
    "ScenarioSet",
    "ParameterPlane",
    "scaled_cell",
    "scaled_tree",
    "scaled_parasitics",
    "scaled_design",
]


def _require_factor(name: str, value: float) -> float:
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise AnalysisError(f"{name} must be a finite positive factor, got {value!r}")
    return value


@dataclass(frozen=True)
class Scenario:
    """One named analysis parameterization (see the module docstring)."""

    name: str
    r_derate: float = 1.0
    c_derate: float = 1.0
    drive_derate: float = 1.0
    clock_period: Optional[float] = None
    threshold: Optional[float] = None
    net_scale: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_factor("r_derate", self.r_derate)
        _require_factor("c_derate", self.c_derate)
        _require_factor("drive_derate", self.drive_derate)
        if self.clock_period is not None and not self.clock_period > 0.0:
            raise AnalysisError("clock_period override must be positive")
        if self.threshold is not None and not 0.0 <= self.threshold < 1.0:
            raise AnalysisError("threshold override must lie in [0, 1)")
        frozen = {net: _require_factor(f"net_scale[{net}]", s) for net, s in self.net_scale.items()}
        object.__setattr__(self, "net_scale", frozen)

    def to_dict(self) -> dict:
        """Plain-dict form (the CLI's ``--corners`` JSON schema)."""
        payload: dict = {
            "name": self.name,
            "r_derate": self.r_derate,
            "c_derate": self.c_derate,
            "drive_derate": self.drive_derate,
        }
        if self.clock_period is not None:
            payload["clock_period"] = self.clock_period
        if self.threshold is not None:
            payload["threshold"] = self.threshold
        if self.net_scale:
            payload["net_scale"] = dict(self.net_scale)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Scenario":
        """Parse one scenario object of the CLI's ``--corners`` JSON schema."""
        known = {
            "name", "r_derate", "c_derate", "drive_derate",
            "clock_period", "threshold", "net_scale",
        }
        unknown = set(payload) - known
        if unknown:
            raise AnalysisError(f"unknown scenario keys {sorted(unknown)!r}")
        if "name" not in payload:
            raise AnalysisError("a scenario needs a name")
        return cls(**dict(payload))


@dataclass(frozen=True)
class ParameterPlane:
    """``(S,)``-broadcastable element scales for a bare flat tree.

    ``r_scale`` multiplies edge resistances, ``c_scale`` every capacitance
    (edge and node).  Shapes may be ``(S,)`` (one factor per scenario) or
    ``(S, N)`` (a per-node plane).
    """

    r_scale: np.ndarray
    c_scale: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "r_scale", np.atleast_1d(np.asarray(self.r_scale, dtype=float)))
        object.__setattr__(self, "c_scale", np.atleast_1d(np.asarray(self.c_scale, dtype=float)))
        if len(self.r_scale) != len(self.c_scale):
            raise AnalysisError("r_scale and c_scale must agree on the scenario count")

    @property
    def count(self) -> int:
        """Number of scenarios ``S``."""
        return self.r_scale.shape[0]


class ScenarioSet(Sequence):
    """An ordered, named batch of scenarios compiled to broadcast arrays."""

    def __init__(self, scenarios: Sequence[Scenario]) -> None:
        self._scenarios: List[Scenario] = list(scenarios)
        if not self._scenarios:
            raise AnalysisError("a scenario set needs at least one scenario")
        names = [s.name for s in self._scenarios]
        if len(set(names)) != len(names):
            raise AnalysisError("scenario names must be unique")
        self._r = np.asarray([s.r_derate for s in self._scenarios])
        self._c = np.asarray([s.c_derate for s in self._scenarios])
        self._drive = np.asarray([s.drive_derate for s in self._scenarios])

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios)

    def __getitem__(self, index: Union[int, slice]) -> Union[Scenario, "ScenarioSet"]:
        if isinstance(index, slice):
            return ScenarioSet(self._scenarios[index])
        return self._scenarios[index]

    @property
    def names(self) -> List[str]:
        """Scenario names, in batch order."""
        return [s.name for s in self._scenarios]

    # ------------------------------------------------------------------
    # Compiled broadcast arrays
    # ------------------------------------------------------------------
    @property
    def r_derates(self) -> np.ndarray:
        """Wire-resistance derate per scenario, shape ``(S,)``."""
        return self._r

    @property
    def c_derates(self) -> np.ndarray:
        """Capacitance derate per scenario, shape ``(S,)``."""
        return self._c

    @property
    def drive_derates(self) -> np.ndarray:
        """Driver-resistance derate per scenario, shape ``(S,)``."""
        return self._drive

    def thresholds(self, default: float) -> np.ndarray:
        """Per-scenario bound threshold, overrides applied, shape ``(S,)``."""
        return np.asarray(
            [default if s.threshold is None else s.threshold for s in self._scenarios]
        )

    def clock_periods(self, default: float) -> np.ndarray:
        """Per-scenario clock period, overrides applied, shape ``(S,)``."""
        return np.asarray(
            [default if s.clock_period is None else s.clock_period for s in self._scenarios]
        )

    def net_scales(self, nets: Sequence[str]) -> np.ndarray:
        """Per-net wire-parasitic scale matrix, shape ``(S, len(nets))``."""
        matrix = np.ones((len(self._scenarios), len(nets)))
        column = {net: j for j, net in enumerate(nets)}
        for i, scenario in enumerate(self._scenarios):
            for net, factor in scenario.net_scale.items():
                j = column.get(net)
                if j is not None:
                    matrix[i, j] = factor
        return matrix

    def tree_plane(self) -> ParameterPlane:
        """The bare-tree scale plane (net/driver/period knobs do not apply)."""
        return ParameterPlane(r_scale=self._r, c_scale=self._c)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def corners(
        cls,
        *,
        slow: float = 1.15,
        fast: float = 0.9,
        drive_spread: float = 1.2,
    ) -> "ScenarioSet":
        """The classic three-corner set: typical, slow (derated up), fast."""
        return cls(
            [
                Scenario("typical"),
                Scenario(
                    "slow", r_derate=slow, c_derate=slow, drive_derate=drive_spread
                ),
                Scenario(
                    "fast", r_derate=fast, c_derate=fast, drive_derate=1.0 / drive_spread
                ),
            ]
        )

    @classmethod
    def monte_carlo(
        cls,
        count: int,
        seed: int = 0,
        *,
        r_sigma: float = 0.08,
        c_sigma: float = 0.08,
        drive_sigma: float = 0.06,
        prefix: str = "mc",
    ) -> "ScenarioSet":
        """``count`` seeded lognormal perturbation scenarios (seed-stable)."""
        if count < 1:
            raise AnalysisError("count must be >= 1")
        rng = random.Random(seed)
        scenarios = []
        for index in range(count):
            scenarios.append(
                Scenario(
                    f"{prefix}{index}",
                    r_derate=float(np.exp(rng.gauss(0.0, r_sigma))),
                    c_derate=float(np.exp(rng.gauss(0.0, c_sigma))),
                    drive_derate=float(np.exp(rng.gauss(0.0, drive_sigma))),
                )
            )
        return cls(scenarios)

    @classmethod
    def from_dict(cls, payload: Any) -> "ScenarioSet":
        """Parse the CLI's ``--corners`` JSON: a list, or ``{"scenarios": [...]}``."""
        if isinstance(payload, Mapping):
            payload = payload.get("scenarios")
        if not isinstance(payload, Sequence) or isinstance(payload, (str, bytes)):
            raise AnalysisError(
                'a scenario spec is a list of scenario objects or {"scenarios": [...]}'
            )
        return cls([Scenario.from_dict(record) for record in payload])

    def to_dict(self) -> dict:
        """Round-trippable plain-dict form."""
        return {"scenarios": [s.to_dict() for s in self._scenarios]}

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ScenarioSet({self.names!r})"


# ----------------------------------------------------------------------
# Materializing one scenario for the single-scenario engine
# ----------------------------------------------------------------------
def scaled_cell(cell: Cell, scenario: Scenario) -> Cell:
    """``cell`` with the scenario's capacitance and drive derates applied."""
    return Cell(
        name=cell.name,
        inputs=cell.inputs,
        output=cell.output,
        input_capacitance=cell.input_capacitance * scenario.c_derate,
        drive_resistance=cell.drive_resistance * scenario.drive_derate,
        intrinsic_delay=cell.intrinsic_delay,
        is_sequential=cell.is_sequential,
        clock_pin=cell.clock_pin,
    )


def scaled_tree(tree: RCTree, r_factor: float, c_factor: float) -> RCTree:
    """A copy of ``tree`` with every R multiplied by ``r_factor``, every C by ``c_factor``."""
    out = RCTree(tree.root)
    root_cap = tree.node_capacitance(tree.root)
    if root_cap:
        out.add_capacitor(tree.root, root_cap * c_factor)
    for name in tree.nodes:
        edge = tree.parent_edge(name)
        if edge is None:
            continue
        if edge.is_distributed:
            out.add_line(
                edge.parent, name, edge.resistance * r_factor, edge.capacitance * c_factor
            )
        else:
            out.add_resistor(edge.parent, name, edge.resistance * r_factor)
        cap = tree.node_capacitance(name)
        if cap:
            out.add_capacitor(name, cap * c_factor)
    for output in tree.outputs:
        out.mark_output(output)
    return out


def scaled_parasitics(record: NetParasitics, scenario: Scenario) -> NetParasitics:
    """``record`` with the scenario's wire derates (including its per-net scale)."""
    net_factor = scenario.net_scale.get(record.net, 1.0)
    r_factor = scenario.r_derate * net_factor
    c_factor = scenario.c_derate * net_factor
    if record.tree is None:
        return lumped(record.net, record.lumped_capacitance * c_factor)
    return rc_tree_parasitics(
        record.net, scaled_tree(record.tree, r_factor, c_factor), dict(record.pin_nodes)
    )


def scaled_design(design: Design, scenario: Scenario) -> Design:
    """A copy of ``design`` whose cells carry the scenario's derates.

    Together with :func:`scaled_parasitics` (applied per net) this
    materializes one scenario as plain single-scenario inputs: analysing the
    scaled design with the clock period and threshold overrides must agree
    with the batched scenario axis at 1e-12 relative tolerance -- that parity
    is pinned by ``tests/properties/test_scenario_parity.py``.
    """
    out = Design(design.name)
    for net in design.primary_inputs:
        out.add_primary_input(net)
    for net in design.clocks:
        out.add_clock(net)
    cache: Dict[str, Cell] = {}
    for instance in design.instances.values():
        cell = cache.get(instance.cell.name)
        if cell is None:
            cell = cache[instance.cell.name] = scaled_cell(instance.cell, scenario)
        out.add_instance(instance.name, cell, **instance.connections)
    for net in design.primary_outputs:
        out.add_primary_output(net)
    return out
