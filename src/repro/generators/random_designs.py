"""Seed-stable random gate-level designs with per-net parasitics.

The design-scale engine (:mod:`repro.graph`) and its benchmarks need whole
netlists, not just single RC trees: :func:`random_design` builds a
`Design` of ``n_instances`` library cells wired into a guaranteed-acyclic
graph (every gate's inputs come from already-created nets, so combinational
depth grows like ``log n``), declares an ideal clock for its flip-flops,
marks every sink-less net as a primary output (so every gate lies on a path
to a timing endpoint), and attaches random parasitics to every timed net --
a mix of lumped caps and small RC trees whose load pins sit on leaf nodes
named ``instance/pin``, the convention the SPEF writer/reader round-trips.

Everything is driven by one ``random.Random(seed)``: the same
``(n_instances, seed, knobs)`` always produces the identical design and
parasitics, which is what lets property tests shrink failures and benchmarks
compare engines on the same workload.

For out-of-core workloads the object graph above is the wrong shape: a
million-instance benchmark must never hold a million ``Design`` objects.
:func:`stream_random_nets` is the streaming twin -- it fabricates the *net
parasitics only*, as pre-concatenated numpy blocks (:class:`NetBlock`)
sized for :meth:`repro.store.ShardStoreWriter.add_block`, one
``numpy.random.default_rng(seed)`` driving every draw so the stream is
seed-stable block for block.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.tree import RCTree
from repro.sta.cells import Cell, standard_cell_library
from repro.sta.netlist import Design
from repro.sta.parasitics import NetParasitics, lumped, rc_tree_parasitics
from repro.utils.checks import require_in_unit_interval

__all__ = ["NetBlock", "random_design", "stream_random_nets"]


def _random_net_tree(
    rng: random.Random,
    loads: List[str],
    *,
    resistance_range: Tuple[float, float],
    capacitance_range: Tuple[float, float],
    distributed_edge_fraction: float = 0.4,
) -> Tuple[RCTree, Dict[str, str]]:
    """A small random wire tree with one leaf per load pin, named after it."""
    tree = RCTree("root")
    attachable = ["root"]
    for index in range(rng.randint(1, 4)):
        name = f"w{index}"
        parent = rng.choice(attachable)
        resistance = rng.uniform(*resistance_range)
        if rng.random() < distributed_edge_fraction:
            tree.add_line(parent, name, resistance, rng.uniform(*capacitance_range))
        else:
            tree.add_resistor(parent, name, resistance)
        if rng.random() < 0.7:
            tree.add_capacitor(name, rng.uniform(*capacitance_range))
        attachable.append(name)
    pin_nodes: Dict[str, str] = {}
    for load in loads:
        tree.add_resistor(rng.choice(attachable), load, rng.uniform(*resistance_range))
        tree.mark_output(load)
        pin_nodes[load] = load
    return tree, pin_nodes


def random_design(
    n_instances: int,
    seed: int = 0,
    *,
    sequential_fraction: float = 0.12,
    distributed_fraction: float = 0.5,
    primary_input_count: Optional[int] = None,
    resistance_range: Tuple[float, float] = (20.0, 400.0),
    capacitance_range: Tuple[float, float] = (1e-15, 1.2e-14),
    library: Optional[Dict[str, Cell]] = None,
) -> Tuple[Design, Dict[str, NetParasitics]]:
    """Generate a seed-stable random design plus per-net parasitics.

    Parameters
    ----------
    n_instances:
        Number of cell instances to place (>= 1).
    seed:
        Seed for the single ``random.Random`` driving every choice.
    sequential_fraction:
        Probability that an instance is a flip-flop (its D input becomes a
        timing endpoint and its Q launches new paths).
    distributed_fraction:
        Probability that a timed net carries a small RC tree rather than a
        lumped capacitance.
    primary_input_count:
        Number of primary inputs (default scales as ``max(2, n/64)``).
    resistance_range, capacitance_range:
        Uniform value ranges for wire elements (ohms / farads).
    library:
        Cell library to draw from (default
        :func:`~repro.sta.cells.standard_cell_library`).

    Returns ``(design, parasitics)`` ready for
    :class:`~repro.graph.TimingGraph`, :class:`~repro.sta.analysis.TimingAnalyzer`
    or :class:`~repro.graph.DesignDB`.
    """
    if n_instances < 1:
        raise ValueError("n_instances must be >= 1")
    require_in_unit_interval("sequential_fraction", sequential_fraction)
    require_in_unit_interval("distributed_fraction", distributed_fraction)
    rng = random.Random(seed)
    library = library or standard_cell_library()
    sequential = sorted(name for name, cell in library.items() if cell.is_sequential)
    combinational = sorted(
        name for name, cell in library.items() if not cell.is_sequential
    )

    design = Design(f"random{n_instances}_s{seed}")
    if primary_input_count is None:
        primary_input_count = max(2, n_instances // 64)
    data_nets: List[str] = []
    for index in range(primary_input_count):
        name = f"pi{index}"
        design.add_primary_input(name)
        data_nets.append(name)

    uses_clock = sequential_fraction > 0.0 and bool(sequential)
    if uses_clock:
        design.add_clock("clk")

    for index in range(n_instances):
        output = f"n{index}"
        if uses_clock and rng.random() < sequential_fraction:
            cell = library[rng.choice(sequential)]
            design.add_instance(
                f"u{index}", cell, D=rng.choice(data_nets), CK="clk", **{cell.output: output}
            )
        else:
            cell = library[rng.choice(combinational)]
            connections = {pin: rng.choice(data_nets) for pin in cell.inputs}
            connections[cell.output] = output
            design.add_instance(f"u{index}", cell, **connections)
        data_nets.append(output)

    connectivity = design.connectivity()
    for net in connectivity.values():
        if net.driver is not None and not net.driver.is_port and not net.loads:
            design.add_primary_output(net.name)

    parasitics: Dict[str, NetParasitics] = {}
    clock_nets = set(design.clocks)
    for name, net in design.connectivity().items():
        if net.driver is None or not net.loads or name in clock_nets:
            continue
        if rng.random() < distributed_fraction:
            tree, pin_nodes = _random_net_tree(
                rng,
                [str(load) for load in net.loads],
                resistance_range=resistance_range,
                capacitance_range=capacitance_range,
            )
            parasitics[name] = rc_tree_parasitics(name, tree, pin_nodes)
        else:
            parasitics[name] = lumped(name, rng.uniform(*capacitance_range))
    return design, parasitics


@dataclass(frozen=True)
class NetBlock:
    """A batch of random RC trees in block-concatenated flat-array form.

    ``starts`` holds each tree's first block-local node index plus the
    node-count sentinel (length ``tree_count + 1``); ``parent`` is
    block-local and topological with ``-1`` at every tree root.  The field
    set matches :meth:`repro.store.ShardStoreWriter.add_block` exactly, so
    a block streams into a shard store with zero reshaping.
    """

    starts: np.ndarray
    parent: np.ndarray
    edge_r: np.ndarray
    edge_c: np.ndarray
    node_c: np.ndarray

    @property
    def tree_count(self) -> int:
        return int(self.starts.shape[0]) - 1

    @property
    def node_count(self) -> int:
        return int(self.parent.shape[0])


def stream_random_nets(
    n_nets: int,
    seed: int = 0,
    *,
    nodes_range: Tuple[int, int] = (2, 24),
    resistance_range: Tuple[float, float] = (20.0, 400.0),
    capacitance_range: Tuple[float, float] = (1e-15, 1.2e-14),
    distributed_edge_fraction: float = 0.4,
    block_nets: int = 4096,
) -> Iterator[NetBlock]:
    """Stream ``n_nets`` random RC nets as :class:`NetBlock` batches.

    The streaming twin of the parasitics half of :func:`random_design`:
    every net is a random-attachment tree (node ``i`` hangs off a uniform
    earlier node of its own tree, giving shallow ``O(log n)``-depth nets
    like real signal routing) with uniform element values from the given
    ranges; a ``distributed_edge_fraction`` slice of edges carries wire
    capacitance (URC-style), the rest are pure resistors with node caps.
    Everything is drawn from one ``numpy.random.default_rng(seed)`` and
    vectorized per block, so fabricating a million nets takes seconds and
    never holds more than ``block_nets`` nets in memory.  Identical
    ``(n_nets, seed, knobs)`` replay the identical stream.
    """
    if n_nets < 1:
        raise ValueError("n_nets must be >= 1")
    if block_nets < 1:
        raise ValueError("block_nets must be >= 1")
    lo, hi = int(nodes_range[0]), int(nodes_range[1])
    if lo < 2 or hi < lo:
        raise ValueError("nodes_range must satisfy 2 <= lo <= hi")
    require_in_unit_interval("distributed_edge_fraction", distributed_edge_fraction)
    rng = np.random.default_rng(seed)
    emitted = 0
    while emitted < n_nets:
        trees = min(block_nets, n_nets - emitted)
        sizes = rng.integers(lo, hi + 1, size=trees)
        starts = np.zeros(trees + 1, dtype=np.int64)
        np.cumsum(sizes, out=starts[1:])
        nodes = int(starts[-1])
        tree_of = np.repeat(np.arange(trees, dtype=np.int64), sizes)
        lower = starts[tree_of]
        index = np.arange(nodes, dtype=np.int64)
        local = index - lower
        # Node i attaches to a uniform earlier node of its own tree:
        # floor(u * local) is in [0, local) for local >= 1.
        attach = (rng.random(nodes) * local).astype(np.int64)
        parent = np.where(local == 0, -1, lower + attach)
        edge_r = rng.uniform(*resistance_range, size=nodes)
        wire_c = rng.uniform(*capacitance_range, size=nodes)
        node_c = rng.uniform(*capacitance_range, size=nodes)
        distributed = rng.random(nodes) < distributed_edge_fraction
        edge_c = np.where(distributed, wire_c, 0.0)
        roots = local == 0
        edge_r[roots] = 0.0
        edge_c[roots] = 0.0
        yield NetBlock(
            starts=starts,
            parent=parent,
            edge_r=edge_r,
            edge_c=edge_c,
            node_c=node_c,
        )
        emitted += trees
