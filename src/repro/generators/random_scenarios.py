"""Seed-stable random scenario sets for benchmarks and property tests.

:func:`random_scenarios` mixes the deterministic three-corner envelope
(typical / slow / fast derates) with seeded Monte-Carlo perturbations, the
same way the scaling benchmarks mix deterministic and random workloads: the
corners pin the envelope every run, the Monte-Carlo tail exercises the
scenario axis at width.  Everything is driven by one ``random.Random(seed)``
so the same ``(n, seed, knobs)`` always produces the identical
:class:`~repro.scenarios.ScenarioSet` -- which is what lets the parity
property tests shrink failures and ``benchmarks/bench_scenarios.py`` compare
engines on the same sweep.
"""

from __future__ import annotations

import math
import random

from repro.scenarios import Scenario, ScenarioSet

__all__ = ["random_scenarios"]


def random_scenarios(
    n: int,
    seed: int = 0,
    *,
    corner_spread: float = 0.15,
    r_sigma: float = 0.08,
    c_sigma: float = 0.08,
    drive_sigma: float = 0.06,
) -> ScenarioSet:
    """``n`` scenarios: the three-corner envelope plus Monte-Carlo fill.

    The first ``min(n, 3)`` scenarios are the deterministic typical / slow /
    fast corners (derated by ``1 +- corner_spread``); the remainder are
    seeded lognormal perturbations around nominal.  No threshold or
    clock-period overrides are emitted -- sweeps inherit the analysis
    defaults, keeping the set applicable to any design.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = random.Random(seed)
    slow = 1.0 + corner_spread
    fast = 1.0 / slow
    corners = [
        Scenario("typical"),
        Scenario("slow", r_derate=slow, c_derate=slow, drive_derate=slow),
        Scenario("fast", r_derate=fast, c_derate=fast, drive_derate=fast),
    ]
    scenarios = corners[:n]
    for index in range(len(scenarios), n):
        scenarios.append(
            Scenario(
                f"mc{index}",
                r_derate=_lognormal(rng, r_sigma),
                c_derate=_lognormal(rng, c_sigma),
                drive_derate=_lognormal(rng, drive_sigma),
            )
        )
    return ScenarioSet(scenarios)


def _lognormal(rng: random.Random, sigma: float) -> float:
    return math.exp(rng.gauss(0.0, sigma))
