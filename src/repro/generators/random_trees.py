"""Random RC-tree generation.

Property-based tests and scaling benchmarks need a supply of RC trees with
controllable size, shape (chain-like versus bushy), element value ranges and
distributed-line content.  Everything here is driven by an explicit
``random.Random`` seed so failures are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.tree import RCTree
from repro.flat import FlatForest, FlatTree
from repro.utils.checks import require_non_negative, require_positive


@dataclass(frozen=True)
class RandomTreeConfig:
    """Knobs controlling :func:`random_tree`.

    Attributes
    ----------
    nodes:
        Number of nodes to create in addition to the input.
    branching_bias:
        0 gives a pure chain (every new node attaches to the previous one);
        1 attaches every new node to a uniformly random existing node
        (bushy, shallow trees); intermediate values interpolate.
    distributed_fraction:
        Probability that an edge is a distributed URC line rather than a
        lumped resistor.
    capacitor_fraction:
        Probability that a node carries lumped capacitance.
    resistance_range, capacitance_range:
        Value ranges (uniform) for element values.
    mark_leaves_as_outputs:
        Mark every leaf as an output (the common situation: loads are leaves).
    """

    nodes: int = 30
    branching_bias: float = 0.5
    distributed_fraction: float = 0.3
    capacitor_fraction: float = 0.8
    resistance_range: tuple = (1.0, 1000.0)
    capacitance_range: tuple = (1e-15, 1e-12)
    mark_leaves_as_outputs: bool = True

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        require_non_negative("branching_bias", self.branching_bias)
        require_non_negative("distributed_fraction", self.distributed_fraction)
        require_non_negative("capacitor_fraction", self.capacitor_fraction)
        require_positive("resistance_range lower bound", self.resistance_range[0])
        require_positive("capacitance_range lower bound", self.capacitance_range[0])


def random_tree(seed: int = 0, config: Optional[RandomTreeConfig] = None) -> RCTree:
    """Generate one random RC tree.

    The tree always has at least one capacitor (so the bound formulas are
    well defined) and every edge has positive resistance (so the tree can be
    simulated directly).
    """
    config = config or RandomTreeConfig()
    rng = random.Random(seed)
    tree = RCTree("in")
    attachable: List[str] = ["in"]

    for index in range(1, config.nodes + 1):
        name = f"n{index}"
        if rng.random() < config.branching_bias:
            parent = rng.choice(attachable)
        else:
            parent = attachable[-1]
        resistance = rng.uniform(*config.resistance_range)
        if rng.random() < config.distributed_fraction:
            capacitance = rng.uniform(*config.capacitance_range)
            tree.add_line(parent, name, resistance, capacitance)
        else:
            tree.add_resistor(parent, name, resistance)
        if rng.random() < config.capacitor_fraction:
            tree.add_capacitor(name, rng.uniform(*config.capacitance_range))
        attachable.append(name)

    if tree.total_capacitance <= 0.0:
        # Guarantee at least one capacitor so analyses are well defined.
        tree.add_capacitor(attachable[-1], rng.uniform(*config.capacitance_range))

    if config.mark_leaves_as_outputs:
        for leaf in tree.leaves():
            tree.mark_output(leaf)
    else:
        tree.mark_output(attachable[-1])
    return tree


def random_trees(count: int, seed: int = 0, config: Optional[RandomTreeConfig] = None) -> Iterator[RCTree]:
    """Yield ``count`` random trees with consecutive seeds."""
    for offset in range(count):
        yield random_tree(seed + offset, config)


def random_chain(nodes: int, seed: int = 0) -> RCTree:
    """A random RC chain (no branching) of ``nodes`` sections."""
    config = RandomTreeConfig(nodes=nodes, branching_bias=0.0)
    return random_tree(seed, config)


def random_flat_tree(seed: int = 0, config: Optional[RandomTreeConfig] = None) -> FlatTree:
    """Generate one random tree directly as a compiled :class:`~repro.flat.FlatTree`.

    Array-native fast path for large benchmark workloads: the same
    distribution as :func:`random_tree` (same seed gives the *same network*)
    but built straight into parent-index arrays, skipping the dict-based
    :class:`~repro.core.tree.RCTree` construction entirely.
    """
    config = config or RandomTreeConfig()
    rng = random.Random(seed)
    n = config.nodes + 1
    parent: List[int] = [-1]
    edge_r: List[float] = [0.0]
    edge_c: List[float] = [0.0]
    node_c: List[float] = [0.0]
    r_lo, r_hi = config.resistance_range
    c_lo, c_hi = config.capacitance_range
    for index in range(1, n):
        if rng.random() < config.branching_bias:
            # rng.choice over the attachable list == randrange over [0, index).
            parent.append(rng.randrange(index))
        else:
            parent.append(index - 1)
        edge_r.append(rng.uniform(r_lo, r_hi))
        if rng.random() < config.distributed_fraction:
            edge_c.append(rng.uniform(c_lo, c_hi))
        else:
            edge_c.append(0.0)
        if rng.random() < config.capacitor_fraction:
            node_c.append(rng.uniform(c_lo, c_hi))
        else:
            node_c.append(0.0)
    if sum(node_c) + sum(edge_c) <= 0.0:
        node_c[-1] = rng.uniform(c_lo, c_hi)
    outputs = None  # leaves, matching mark_leaves_as_outputs=True
    if not config.mark_leaves_as_outputs:
        outputs = [n - 1]
    return FlatTree.from_arrays(
        parent,
        edge_r,
        edge_c,
        node_c,
        names=["in"] + [f"n{i}" for i in range(1, n)],
        outputs=outputs,
    )


def random_forest(
    count: int, seed: int = 0, config: Optional[RandomTreeConfig] = None
) -> FlatForest:
    """A batch of random trees compiled into one :class:`~repro.flat.FlatForest`.

    The member trees are exactly ``random_tree(seed) .. random_tree(seed +
    count - 1)``; the forest solves all of their outputs with one set of
    vectorized passes, which is the intended supply for sweep-style
    benchmarks and property tests.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    return FlatForest(
        [random_flat_tree(seed + offset, config) for offset in range(count)]
    )


def random_balanced_tree(depth: int, seed: int = 0, *, fanout: int = 2) -> RCTree:
    """A complete ``fanout``-ary tree of the given depth with random element values.

    Unlike :func:`random_tree` the *topology* is deterministic (a complete
    tree); only element values are random.  Useful for clock-tree-shaped
    benchmarks of a known size.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    rng = random.Random(seed)
    tree = RCTree("in")
    frontier = ["in"]
    counter = 0
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                counter += 1
                name = f"n{counter}"
                tree.add_line(parent, name, rng.uniform(10.0, 500.0), rng.uniform(1e-15, 5e-13))
                next_frontier.append(name)
        frontier = next_frontier
    for leaf in frontier:
        tree.add_capacitor(leaf, rng.uniform(1e-15, 5e-14))
        tree.mark_output(leaf)
    return tree
