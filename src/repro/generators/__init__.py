"""Synthetic RC-tree generators for tests and benchmarks.

Property-based tests, scaling studies and the flat-engine benchmarks all
need a controllable supply of RC trees: size, shape (chain-like versus
bushy, via ``branching_bias``), element-value ranges, and the fraction of
distributed URC edges are the knobs of :class:`RandomTreeConfig`.  Every
generator is driven by an explicit seed so failures reproduce exactly.

Two output forms are offered:

* :func:`random_tree` / :func:`random_trees` / :func:`random_chain` /
  :func:`random_balanced_tree` build dict-based
  :class:`~repro.core.tree.RCTree` objects -- the reference representation
  every analysis accepts;
* :func:`random_flat_tree` / :func:`random_forest` build the *same networks*
  (same seed, same values) directly as compiled
  :class:`~repro.flat.FlatTree` / :class:`~repro.flat.FlatForest` arrays,
  skipping dict construction -- the fast path for 10k-node-plus workloads;
* :func:`random_design` builds whole seed-stable gate-level designs (netlist
  plus per-net parasitics) for the design-scale engine in
  :mod:`repro.graph` and its benchmarks;
* :func:`stream_random_nets` is its out-of-core twin: seed-stable random
  nets emitted as pre-concatenated :class:`NetBlock` numpy batches sized
  for :meth:`repro.store.ShardStoreWriter.add_block`, so million-instance
  benchmarks fabricate a shard store without ever materializing a design;
* :func:`random_scenarios` builds seed-stable corner + Monte-Carlo
  :class:`~repro.scenarios.ScenarioSet` batches for the scenario-sweep
  benchmarks and parity property tests.
"""

from repro.generators.random_designs import (
    NetBlock,
    random_design,
    stream_random_nets,
)
from repro.generators.random_scenarios import random_scenarios
from repro.generators.random_trees import (
    RandomTreeConfig,
    random_tree,
    random_trees,
    random_chain,
    random_balanced_tree,
    random_flat_tree,
    random_forest,
)

__all__ = [
    "NetBlock",
    "RandomTreeConfig",
    "random_design",
    "stream_random_nets",
    "random_scenarios",
    "random_tree",
    "random_trees",
    "random_chain",
    "random_balanced_tree",
    "random_flat_tree",
    "random_forest",
]
