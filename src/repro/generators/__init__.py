"""Synthetic RC-tree generators for tests and benchmarks."""

from repro.generators.random_trees import (
    RandomTreeConfig,
    random_tree,
    random_trees,
    random_chain,
    random_balanced_tree,
)

__all__ = [
    "RandomTreeConfig",
    "random_tree",
    "random_trees",
    "random_chain",
    "random_balanced_tree",
]
