"""Impulse-response moments of every node of an RC tree.

Write the voltage transfer to node ``e`` as a power series in ``s``:

.. math::

    H_e(s) = \\frac{V_e(s)}{V_{in}(s)} = \\sum_{k \\ge 0} \\mu_k(e)\\, s^k,
    \\qquad \\mu_0 = 1,\\; \\mu_1 = -T_{De}.

The coefficients obey the classic tree recurrence

.. math::

    \\mu_k(e) = -\\sum_j R_{je} C_j\\, \\mu_{k-1}(j),

i.e. each order is an "Elmore computation" whose capacitor weights are the
previous order's moments.  One postorder + one preorder traversal therefore
produce order ``k`` for *every* node in O(N), and ``order`` orders cost
O(N * order) -- the same path-tracing scheme used by RICE-class moment
engines.

Distributed URC lines are lumped into pi sections before the recurrence (the
first moment is preserved exactly by pi lumping; higher moments converge as
the section count grows).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

from repro.core.exceptions import UnknownNodeError
from repro.core.tree import RCTree


def transfer_moments(
    tree: RCTree,
    outputs: Optional[Iterable[str]] = None,
    *,
    order: int = 3,
    segments_per_line: int = 20,
) -> Dict[str, List[float]]:
    """Series coefficients ``mu_0 .. mu_order`` of every requested output.

    Parameters
    ----------
    outputs:
        Nodes to report (defaults to the tree's marked outputs, or all nodes).
    order:
        Highest power of ``s`` to compute (``order >= 1``).
    segments_per_line:
        Pi-section count used to lump distributed lines first.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    if outputs is None:
        outputs = tree.outputs or tree.nodes
    outputs = list(outputs)
    for name in outputs:
        if name not in tree:
            raise UnknownNodeError(name)

    has_lines = any(edge.is_distributed for edge in tree.edges)
    working = tree.lumped(segments_per_line) if has_lines else tree

    nodes = working.nodes
    capacitance = {name: working.node_capacitance(name) for name in nodes}

    # mu[k][node]; order 0 is identically 1.
    mu: List[Dict[str, float]] = [{name: 1.0 for name in nodes}]

    postorder = list(working.postorder())
    preorder = list(working.preorder())

    for k in range(1, order + 1):
        previous = mu[k - 1]
        weights = {name: capacitance[name] * previous[name] for name in nodes}

        # Downstream weighted-capacitance sums (postorder accumulation).
        downstream: Dict[str, float] = {}
        for name in postorder:
            total = weights[name]
            for child in working.children_of(name):
                total += downstream[child]
            downstream[name] = total

        # A(node) = sum_j R_{j,node} * w_j via the path recurrence (preorder).
        accumulated: Dict[str, float] = {working.root: 0.0}
        for name in preorder:
            if name == working.root:
                continue
            edge = working.parent_edge(name)
            accumulated[name] = accumulated[edge.parent] + edge.resistance * downstream[name]

        mu.append({name: -accumulated[name] for name in nodes})

    return {name: [mu[k][name] for k in range(order + 1)] for name in outputs}


def impulse_moments(
    tree: RCTree,
    outputs: Optional[Iterable[str]] = None,
    *,
    order: int = 3,
    segments_per_line: int = 20,
) -> Dict[str, List[float]]:
    """Raw impulse-response moments ``M_k = integral t^k h(t) dt`` per output.

    Related to the series coefficients by ``M_k = (-1)^k k! mu_k``; in
    particular ``M_0 = 1`` and ``M_1 = T_De`` (the Elmore delay).
    """
    series = transfer_moments(
        tree, outputs, order=order, segments_per_line=segments_per_line
    )
    result = {}
    for name, coefficients in series.items():
        result[name] = [
            ((-1) ** k) * math.factorial(k) * value for k, value in enumerate(coefficients)
        ]
    return result
