"""Moment-based delay metrics (estimates, not bounds).

Four estimators of the threshold-crossing delay are provided, in increasing
order of information used:

* :func:`delay_elmore_metric` -- the Elmore delay itself (threshold-blind);
* :func:`delay_single_pole` -- a single pole at ``1/T_De``:
  ``T_De ln(1/(1-v))``;
* :func:`delay_d2m` -- the D2M metric, ``ln(1/(1-v)) mu_1^2 / sqrt(mu_2)``,
  which uses the second moment to correct the single-pole optimism on
  resistive (far-from-driver) nodes;
* :func:`delay_two_pole` -- an order-2 moment-matched (AWE-style) fit of the
  transfer function, evaluated exactly and searched for the crossing.

None of these are guaranteed to bracket the true delay -- that is what the
Penfield-Rubinstein bounds are for -- but on typical nets they are markedly
closer to the exact answer than the raw Elmore delay.  The ablation
benchmark quantifies exactly that trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.bounds import delay_bounds
from repro.core.exceptions import AnalysisError
from repro.core.timeconstants import characteristic_times
from repro.core.tree import RCTree
from repro.moments.moments import transfer_moments
from repro.utils.checks import require_in_unit_interval


def _log_factor(threshold: float) -> float:
    threshold = require_in_unit_interval("threshold", threshold, open_ends=True)
    return math.log(1.0 / (1.0 - threshold))


def delay_elmore_metric(moments, threshold: float = 0.5) -> float:
    """The Elmore delay ``T_De = -mu_1`` (ignores the threshold)."""
    require_in_unit_interval("threshold", threshold, open_ends=True)
    return -moments[1]


def delay_single_pole(moments, threshold: float = 0.5) -> float:
    """Single dominant pole at ``1/T_De``: ``T_De ln(1/(1-v))``."""
    return -moments[1] * _log_factor(threshold)


def delay_d2m(moments, threshold: float = 0.5) -> float:
    """The D2M delay metric: ``ln(1/(1-v)) mu_1^2 / sqrt(mu_2)``.

    Requires at least two moments (``mu_2 > 0``, which always holds for RC
    trees).
    """
    if len(moments) < 3:
        raise AnalysisError("delay_d2m needs moments up to order 2")
    mu1, mu2 = moments[1], moments[2]
    if mu2 <= 0.0:
        raise AnalysisError("mu_2 must be positive for an RC tree")
    return _log_factor(threshold) * (mu1 * mu1) / math.sqrt(mu2)


@dataclass(frozen=True)
class TwoPoleFit:
    """An order-2 moment-matched approximation of a transfer function.

    ``H(s) = 1 / (1 + b1 s + b2 s^2)`` with both poles real and negative;
    when the moments do not admit such a fit the second pole collapses and
    the model degenerates to the single dominant pole.
    """

    poles: tuple            # (p1, p2), negative reals; p2 may equal p1
    residues: tuple         # step-response residues matching the poles
    degenerate: bool        # True when the single-pole fallback was used

    def step_response(self, time: float) -> float:
        """Unit-step response of the fitted model at ``time`` (>= 0)."""
        if time < 0:
            raise AnalysisError("time must be >= 0")
        value = 1.0
        for pole, residue in zip(self.poles, self.residues):
            value += residue * math.exp(pole * time)
        return value

    def delay(self, threshold: float = 0.5) -> float:
        """Crossing time of the fitted response (bisection on the closed form)."""
        threshold = require_in_unit_interval("threshold", threshold, open_ends=True)
        slowest = -1.0 / max(self.poles)  # largest time constant
        lo, hi = 0.0, slowest
        while self.step_response(hi) < threshold:
            hi *= 2.0
            if hi > 1e6 * slowest:  # pragma: no cover - defensive
                raise AnalysisError("two-pole crossing search did not converge")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.step_response(mid) < threshold:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-15 * max(hi, 1e-300):
                break
        return 0.5 * (lo + hi)


def fit_two_pole(moments) -> TwoPoleFit:
    """Fit the order-2 Pade approximant (AWE-2) to the first three transfer moments.

    The model is ``H(s) = (1 + a1 s) / (1 + b1 s + b2 s^2)``; matching the
    series through ``s^3`` gives the linear system

    .. math::

        \\mu_1 b_2 + b_1 = -\\mu_2, \\qquad \\mu_2 b_2 + \\mu_1 b_1 = -\\mu_3,

    then ``a1 = mu_1 + b1``.  When the resulting poles are not both real and
    negative (which can only happen through lumping/rounding noise on an RC
    tree) the fit falls back to the single dominant pole at ``1/T_De``.
    """
    if len(moments) < 4:
        raise AnalysisError("fit_two_pole needs moments up to order 3")
    mu1, mu2, mu3 = moments[1], moments[2], moments[3]
    if mu1 >= 0.0:
        raise AnalysisError("mu_1 must be negative (T_De positive) for an RC tree")

    def dominant_pole() -> TwoPoleFit:
        pole = 1.0 / mu1  # = -1 / T_De
        return TwoPoleFit(poles=(pole, pole), residues=(-1.0, 0.0), degenerate=True)

    # Cross-multiplying H(s) (1 + b1 s + b2 s^2) = 1 + a1 s and matching the
    # s^2 and s^3 coefficients gives [mu1 1; mu2 mu1] [b1 b2]^T = [-mu2 -mu3]^T.
    system_det = mu1 * mu1 - mu2
    if abs(system_det) < 1e-300:
        return dominant_pole()
    b1 = (mu3 - mu1 * mu2) / system_det
    b2 = (mu2 * mu2 - mu1 * mu3) / system_det
    a1 = mu1 + b1

    if b2 <= 0.0 or b1 <= 0.0:
        return dominant_pole()
    if b2 < 1e-9 * b1 * b1:
        # The second pole sits many orders of magnitude beyond the first; it
        # is an artefact of cancellation in the moment arithmetic rather than
        # a resolvable time constant, and its residue formula is hopelessly
        # ill-conditioned.  A single pole already tells the whole story.
        return dominant_pole()
    discriminant = b1 * b1 - 4.0 * b2
    # Nearly coincident poles make the partial-fraction residues blow up
    # (catastrophic cancellation); a single pole describes such a response
    # just as well, so fall back well before that happens.
    if discriminant < 1e-12 * b1 * b1:
        return dominant_pole()
    root = math.sqrt(discriminant)
    # Roots of b2 s^2 + b1 s + 1 = 0; both negative real when b1, b2 > 0.
    p1 = (-b1 + root) / (2.0 * b2)
    p2 = (-b1 - root) / (2.0 * b2)
    if p1 >= 0.0 or p2 >= 0.0 or p1 == p2:
        return dominant_pole()
    # Step response V(s) = H(s)/s: residue at p_i is (1 + a1 p_i) / (b2 p_i (p_i - p_j)).
    r1 = (1.0 + a1 * p1) / (b2 * p1 * (p1 - p2))
    r2 = (1.0 + a1 * p2) / (b2 * p2 * (p2 - p1))
    return TwoPoleFit(poles=(p1, p2), residues=(r1, r2), degenerate=False)


def two_pole_step_response(tree: RCTree, output: str, *, segments_per_line: int = 20) -> TwoPoleFit:
    """Convenience wrapper: moments of ``output`` -> two-pole fit."""
    moments = transfer_moments(tree, [output], order=3, segments_per_line=segments_per_line)[output]
    return fit_two_pole(moments)


def delay_two_pole(moments, threshold: float = 0.5) -> float:
    """Crossing-time estimate from the order-2 moment-matched model."""
    return fit_two_pole(moments).delay(threshold)


@dataclass(frozen=True)
class DelayEstimates:
    """All delay estimates (and the guaranteed bounds) for one output."""

    output: str
    threshold: float
    elmore: float
    single_pole: float
    d2m: float
    two_pole: float
    bound_lower: float
    bound_upper: float
    exact: Optional[float] = None

    def errors_vs_exact(self) -> Dict[str, float]:
        """Relative error of each estimate against the exact delay (if known)."""
        if self.exact is None or self.exact == 0.0:
            return {}
        return {
            "elmore": (self.elmore - self.exact) / self.exact,
            "single_pole": (self.single_pole - self.exact) / self.exact,
            "d2m": (self.d2m - self.exact) / self.exact,
            "two_pole": (self.two_pole - self.exact) / self.exact,
        }


def estimate_all(
    tree: RCTree,
    output: str,
    threshold: float = 0.5,
    *,
    segments_per_line: int = 20,
    exact: Optional[float] = None,
) -> DelayEstimates:
    """Compute every delay estimate plus the PR bounds for one output."""
    moments = transfer_moments(tree, [output], order=3, segments_per_line=segments_per_line)[output]
    times = characteristic_times(tree, output)
    bounds = delay_bounds(times, threshold)
    return DelayEstimates(
        output=output,
        threshold=threshold,
        elmore=delay_elmore_metric(moments, threshold),
        single_pole=delay_single_pole(moments, threshold),
        d2m=delay_d2m(moments, threshold),
        two_pole=delay_two_pole(moments, threshold),
        bound_lower=bounds.lower,
        bound_upper=bounds.upper,
        exact=exact,
    )
