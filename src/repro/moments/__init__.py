"""Higher-order moment analysis of RC trees.

The paper's ``T_De`` is the *first* moment of the impulse response (Elmore's
delay), and its closing section notes that "tighter bounds are also being
looked for".  The direction the field actually took -- AWE, PRIMA and every
moment-matching delay metric since -- starts from the higher-order moments of
the same impulse response.  This subpackage provides:

* :mod:`repro.moments.moments` -- all impulse-response moments of every node
  up to a requested order, via the same O(N)-per-order tree recurrences used
  by path-tracing moment engines (RICE-style);
* :mod:`repro.moments.metrics` -- closed-form delay *estimates* built from
  two or three moments (single dominant pole, the D2M metric, and a
  two-pole / AWE-2 fit), together with helpers comparing them against the
  exact response and against the paper's guaranteed bounds.

Estimates are not bounds: they can err on either side.  The accompanying
benchmark (``bench_ablation_delay_metrics.py``) quantifies how much accuracy
each metric buys over the plain Elmore delay and what it gives up in
guarantees relative to the Penfield-Rubinstein bounds.
"""

from repro.moments.moments import impulse_moments, transfer_moments
from repro.moments.metrics import (
    DelayEstimates,
    delay_elmore_metric,
    delay_single_pole,
    delay_d2m,
    delay_two_pole,
    two_pole_step_response,
    estimate_all,
)

__all__ = [
    "impulse_moments",
    "transfer_moments",
    "DelayEstimates",
    "delay_elmore_metric",
    "delay_single_pole",
    "delay_d2m",
    "delay_two_pole",
    "two_pole_step_response",
    "estimate_all",
]
