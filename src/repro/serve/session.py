"""Warm timing sessions: the state the server keeps between requests.

A :class:`Session` owns one loaded design -- a
:class:`~repro.graph.DesignDB` (in RAM or out-of-core via ``store_dir``)
wrapped by a :class:`~repro.graph.TimingGraph` -- plus the two things that
make it safe to share across an event loop: a per-session
:class:`asyncio.Lock` serializing *all* state access, and a monotonically
increasing ``version`` counter stamped on every operation so concurrent
clients (and the linearizability test oracle) can reconstruct the serial
order the lock imposed.

The compute methods here are plain synchronous functions: the server's
handler coroutines hand them to a thread-pool executor while holding the
session lock, so the event loop keeps accepting traffic during a solve but
no two operations ever interleave on the same graph.  Because the lock is
held across the executor hop, a session behaves exactly like a
single-threaded :class:`~repro.graph.TimingGraph` -- which is what the
serial-replay oracle in ``tests/properties/test_serve_linearizability.py``
checks.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.graph import DesignDB, TimingGraph
from repro.serve.schema import ServeError
from repro.sta.cells import Cell, standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import Design
from repro.sta.parasitics import NetParasitics

__all__ = ["Session", "SessionRegistry"]


class Session:
    """One warm design: database, graph, lock, and operation counter."""

    def __init__(
        self,
        name: str,
        design: Design,
        parasitics: Dict[str, NetParasitics],
        *,
        clock_period: float = 1e-9,
        threshold: float = 0.5,
        input_drive_resistance: float = 0.0,
        default_wire_capacitance: float = 0.0,
        store_dir: Optional[str] = None,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
    ):
        self.name = name
        self.db = DesignDB(
            design,
            parasitics,
            input_drive_resistance=input_drive_resistance,
            default_wire_capacitance=default_wire_capacitance,
            store_dir=store_dir,
        )
        self.graph = TimingGraph(
            self.db, clock_period=clock_period, threshold=threshold
        )
        #: Serializes every read and write; the executor hop happens under it.
        self.lock = asyncio.Lock()
        #: Stamped on each completed operation -- the session's serial order.
        self._versions = itertools.count(1)
        self.version = 0
        self.engine = engine
        self.jobs = jobs
        self.store_backed = store_dir is not None
        self.library = standard_cell_library()
        self.closed = False

    def bump(self) -> int:
        """Advance and return the session version (call with the lock held)."""
        self.version = next(self._versions)
        return self.version

    # -- synchronous compute, run in the executor under ``self.lock`` -------

    def summary_payload(self, model: DelayModel) -> Dict[str, Any]:
        """Full design summary (per-endpoint slacks, worst path) as JSON."""
        return self.graph.summary(path_model=model).to_dict()

    def slack_payload(
        self, model: DelayModel, pins: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        """Worst slack plus endpoint (or requested pin) slacks."""
        payload: Dict[str, Any] = {
            "model": model.value,
            "worst_slack": self.graph.worst_slack(model),
        }
        if pins is None:
            payload["endpoint_slacks"] = self.graph.endpoint_slacks(model)
        else:
            slacks = self.graph.pin_slacks(model)
            missing = [pin for pin in pins if pin not in slacks]
            if missing:
                raise ServeError(
                    f"unknown pins {missing!r}", status=404, code="unknown_pin"
                )
            payload["pin_slacks"] = {pin: slacks[pin] for pin in pins}
        return payload

    def corners_payload(
        self, scenarios, model: DelayModel, with_paths: bool
    ) -> Dict[str, Any]:
        """Multi-corner analysis through the session's pinned backend."""
        report = self.graph.analyze_scenarios(
            scenarios,
            path_model=model,
            with_critical_paths=with_paths,
            engine=self.engine,
            jobs=self.jobs,
        )
        return report.to_dict()

    def whatif_scores(
        self, swaps: Sequence[Tuple[str, Cell]], model: DelayModel
    ) -> List[float]:
        """Batched what-if worst slacks -- the coalescer's solve kernel."""
        scores = self.graph.whatif_resize_worst_slack(
            swaps, model, engine=self.engine, jobs=self.jobs
        )
        return [float(score) for score in scores]

    def apply_update_net(self, net: str, parasitics: NetParasitics) -> int:
        """ECO: replace one net's parasitics; returns the re-timed cone size."""
        return self.graph.update_net(net, parasitics)

    def apply_resize_instance(self, instance: str, cell: Cell) -> int:
        """ECO: swap one instance's cell; returns the re-timed cone size."""
        return self.graph.resize_instance(instance, cell)

    def close(self) -> None:
        """Release the underlying database (a no-op for in-RAM sessions)."""
        self.closed = True
        owners = [self.db]
        if self.store_backed:
            owners.append(self.db.store)
        for owner in owners:
            close = getattr(owner, "close", None)
            if callable(close):
                close()


class SessionRegistry:
    """Named sessions with an async-safe create/get/close surface."""

    def __init__(self) -> None:
        self._sessions: Dict[str, Session] = {}
        self._lock = asyncio.Lock()

    async def add(self, session: Session) -> None:
        """Register a session; 409 ``session_exists`` on a duplicate name."""
        async with self._lock:
            if session.name in self._sessions:
                raise ServeError(
                    f"session {session.name!r} already exists",
                    status=409,
                    code="session_exists",
                )
            self._sessions[session.name] = session

    async def get(self, name: str) -> Session:
        """Look up a session; 404 ``unknown_session`` when absent."""
        async with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise ServeError(
                f"no session named {name!r}", status=404, code="unknown_session"
            )
        return session

    async def close(self, name: str) -> Session:
        """Unregister and return a session; 404 ``unknown_session`` when absent."""
        async with self._lock:
            session = self._sessions.pop(name, None)
        if session is None:
            raise ServeError(
                f"no session named {name!r}", status=404, code="unknown_session"
            )
        return session

    async def names(self) -> List[str]:
        """The sorted names of every open session."""
        async with self._lock:
            return sorted(self._sessions)

    async def drain(self) -> List[Session]:
        """Remove and return every session (server shutdown)."""
        async with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        return sessions
