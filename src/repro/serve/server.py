"""The asyncio HTTP/JSON timing server.

:class:`TimingServer` is a hand-rolled HTTP/1.1 keep-alive server on
:func:`asyncio.start_server` -- stdlib only, no framework.  Handler
coroutines are traffic plumbing: they parse payloads through
:mod:`repro.serve.schema`, take the session lock, and hand the actual
compute (a synchronous :class:`~repro.serve.session.Session` method) to a
thread-pool executor.  No handler coroutine calls a solve/sweep kernel or
ECO hook directly -- reprolint RL009 rejects the module if one does -- so
the event loop never blocks on a forest sweep and stays responsive to
other clients while one is solving.

Routes (all bodies JSON)::

    GET    /healthz                              liveness + session count
    GET    /sessions                             list session names
    POST   /sessions                             load a design (in-RAM or store)
    GET    /sessions/{name}                      version + coalescing stats
    DELETE /sessions/{name}                      close and drop the session
    POST   /sessions/{name}/close                alias for DELETE
    POST   /sessions/{name}/eco/update_net       {"net", "lumped_capacitance"|"tree"}
    POST   /sessions/{name}/eco/resize_instance  {"instance", "cell"}
    POST   /sessions/{name}/query/slack          {"model"?, "pins"?}
    POST   /sessions/{name}/query/summary        {"model"?}
    POST   /sessions/{name}/query/corners        {"scenarios", "model"?, "paths"?}
    POST   /sessions/{name}/query/whatif         {"swaps", "model"?}

Every mutating response carries the session ``version`` stamped under the
lock; what-if responses carry the version the scores were computed
against.  That version order *is* the linearization the property tests
replay.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

from repro.core.exceptions import RCTreeError
from repro.scenarios import ScenarioSet
from repro.serve.batcher import WhatIfBatcher
from repro.serve.schema import (
    ServeError,
    cell_from_payload,
    design_from_payload,
    model_from_payload,
    parasitics_from_payload,
    parse_json_body,
    swaps_from_payload,
)
from repro.serve.session import Session, SessionRegistry
from repro.sta.delaycalc import DelayModel

__all__ = ["TimingServer", "run_server"]

_MAX_BODY = 64 * 1024 * 1024
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


def _method_not_allowed(method: str) -> ServeError:
    return ServeError(
        f"method {method} not allowed here", status=405, code="method_not_allowed"
    )


class TimingServer:
    """One server process: a session registry behind an asyncio listener."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tick: float = 0.002,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
        executor_workers: int = 4,
    ):
        self._host = host
        self._port = port
        self._tick = tick
        self._engine = engine
        self._jobs = jobs
        self.registry = SessionRegistry()
        self._batchers: Dict[str, WhatIfBatcher] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-serve"
        )
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 picks an ephemeral one)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def port(self) -> int:
        """The bound port (resolves 0 to the ephemeral port after start)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, flush batchers, close every session, free the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for batcher in list(self._batchers.values()):
            await batcher.close()
        self._batchers.clear()
        for session in await self.registry.drain():
            session.close()
        self._executor.shutdown(wait=True)

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point); starts if needed."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive = request
                status, payload = await self._dispatch(method, path, body)
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, target, protocol = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" and protocol.upper() != "HTTP/1.0"
        return method.upper(), target.split("?", 1)[0], body, keep_alive

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing ------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            return 200, await self._route(method, path, body)
        except ServeError as error:
            return error.status, error.to_payload()
        except RCTreeError as error:
            # Engine-level refusals (bad net, incompatible swap, ...) are
            # client errors: the session state is untouched.
            return 400, {
                "ok": False,
                "error": {"code": "analysis_error", "message": str(error)},
            }
        except Exception as error:  # noqa: BLE001 - last-resort boundary
            return 500, {
                "ok": False,
                "error": {"code": "internal_error", "message": repr(error)},
            }

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Dict[str, Any]:
        segments = [part for part in path.split("/") if part]
        if segments == ["healthz"]:
            if method != "GET":
                raise _method_not_allowed(method)
            return {
                "ok": True,
                "sessions": len(await self.registry.names()),
            }
        if segments == ["sessions"]:
            if method == "GET":
                return {"ok": True, "sessions": await self.registry.names()}
            if method == "POST":
                return await self._create_session(parse_json_body(body))
            raise _method_not_allowed(method)
        if len(segments) >= 2 and segments[0] == "sessions":
            name = segments[1]
            rest = segments[2:]
            if not rest:
                if method == "GET":
                    return await self._session_info(name)
                if method == "DELETE":
                    return await self._close_session(name)
                raise _method_not_allowed(method)
            if rest == ["close"] and method == "POST":
                return await self._close_session(name)
            if len(rest) == 2 and method == "POST":
                group, action = rest
                payload = parse_json_body(body)
                if group == "eco" and action == "update_net":
                    return await self._eco_update_net(name, payload)
                if group == "eco" and action == "resize_instance":
                    return await self._eco_resize_instance(name, payload)
                if group == "query" and action == "slack":
                    return await self._query_slack(name, payload)
                if group == "query" and action == "summary":
                    return await self._query_summary(name, payload)
                if group == "query" and action == "corners":
                    return await self._query_corners(name, payload)
                if group == "query" and action == "whatif":
                    return await self._query_whatif(name, payload)
        raise ServeError(f"no route for {path!r}", status=404, code="unknown_route")

    # -- session lifecycle handlers -----------------------------------------

    async def _create_session(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServeError("payload field 'name' must be a non-empty string")
        design = design_from_payload(payload)
        raw_parasitics = payload.get("parasitics", [])
        if not isinstance(raw_parasitics, list):
            raise ServeError("'parasitics' must be a list of per-net objects")
        parasitics = {}
        for item in raw_parasitics:
            if not isinstance(item, dict):
                raise ServeError("each parasitics entry must be a JSON object")
            parsed = parasitics_from_payload(item)
            parasitics[parsed.net] = parsed
        store_dir = payload.get("store_dir")
        if store_dir is not None and not isinstance(store_dir, str):
            raise ServeError("'store_dir' must be a directory path string")
        engine = payload.get("engine", self._engine)
        jobs = payload.get("jobs", self._jobs)

        def build() -> Session:
            return Session(
                name,
                design,
                parasitics,
                clock_period=float(payload.get("clock_period", 1e-9)),
                threshold=float(payload.get("threshold", 0.5)),
                input_drive_resistance=float(
                    payload.get("input_drive_resistance", 0.0)
                ),
                default_wire_capacitance=float(
                    payload.get("default_wire_capacitance", 0.0)
                ),
                store_dir=store_dir,
                engine=engine,
                jobs=jobs,
            )

        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(self._executor, build)
        try:
            await self.registry.add(session)
        except ServeError:
            session.close()
            raise
        self._batchers[name] = WhatIfBatcher(
            session, tick=self._tick, executor=self._executor
        )
        return {
            "ok": True,
            "session": name,
            "nets": len(list(session.db.timed_nets())),
            "store_backed": session.store_backed,
            "version": session.version,
        }

    async def _session_info(self, name: str) -> Dict[str, Any]:
        session = await self.registry.get(name)
        batcher = self._batchers.get(name)
        return {
            "ok": True,
            "session": name,
            "version": session.version,
            "store_backed": session.store_backed,
            "engine": session.engine,
            "jobs": session.jobs,
            "batching": batcher.stats.to_payload() if batcher else None,
        }

    async def _close_session(self, name: str) -> Dict[str, Any]:
        session = await self.registry.close(name)
        batcher = self._batchers.pop(name, None)
        if batcher is not None:
            await batcher.close()
        async with session.lock:
            session.close()
        return {"ok": True, "session": name, "closed": True}

    # -- ECO handlers (serialized writers) ----------------------------------

    async def _eco_update_net(
        self, name: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        session = await self.registry.get(name)
        parasitics = parasitics_from_payload(payload)
        loop = asyncio.get_running_loop()
        async with session.lock:
            cone = await loop.run_in_executor(
                self._executor, session.apply_update_net, parasitics.net, parasitics
            )
            version = session.bump()
        return {
            "ok": True,
            "net": parasitics.net,
            "cone_vertices": cone,
            "version": version,
        }

    async def _eco_resize_instance(
        self, name: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        session = await self.registry.get(name)
        instance = payload.get("instance")
        if not isinstance(instance, str) or not instance:
            raise ServeError("payload field 'instance' must be a non-empty string")
        cell = cell_from_payload(payload.get("cell"), session.library)
        loop = asyncio.get_running_loop()
        async with session.lock:
            cone = await loop.run_in_executor(
                self._executor, session.apply_resize_instance, instance, cell
            )
            version = session.bump()
        return {
            "ok": True,
            "instance": instance,
            "cell": cell.name,
            "cone_vertices": cone,
            "version": version,
        }

    # -- query handlers ------------------------------------------------------

    async def _query_slack(
        self, name: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        session = await self.registry.get(name)
        model = model_from_payload(payload, DelayModel.UPPER_BOUND)
        pins = payload.get("pins")
        if pins is not None and (
            not isinstance(pins, list)
            or not all(isinstance(pin, str) for pin in pins)
        ):
            raise ServeError("'pins' must be a list of pin-name strings")
        loop = asyncio.get_running_loop()
        async with session.lock:
            version = session.version
            result = await loop.run_in_executor(
                self._executor, session.slack_payload, model, pins
            )
        result.update({"ok": True, "version": version})
        return result

    async def _query_summary(
        self, name: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        session = await self.registry.get(name)
        model = model_from_payload(payload, DelayModel.UPPER_BOUND)
        loop = asyncio.get_running_loop()
        async with session.lock:
            version = session.version
            summary = await loop.run_in_executor(
                self._executor, session.summary_payload, model
            )
        return {"ok": True, "version": version, "summary": summary}

    async def _query_corners(
        self, name: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        session = await self.registry.get(name)
        model = model_from_payload(payload, DelayModel.UPPER_BOUND)
        spec = payload.get("scenarios")
        if spec is None:
            raise ServeError("payload field 'scenarios' is required")
        try:
            scenarios = ScenarioSet.from_dict(spec)
        except RCTreeError as error:
            raise ServeError(f"bad scenario spec: {error}") from None
        with_paths = bool(payload.get("paths", False))
        loop = asyncio.get_running_loop()
        async with session.lock:
            version = session.version
            report = await loop.run_in_executor(
                self._executor,
                session.corners_payload,
                scenarios,
                model,
                with_paths,
            )
        return {"ok": True, "version": version, "report": report}

    async def _query_whatif(
        self, name: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        session = await self.registry.get(name)
        batcher = self._batchers.get(name)
        if batcher is None:
            raise ServeError(
                f"no session named {name!r}", status=404, code="unknown_session"
            )
        model = model_from_payload(payload, DelayModel.UPPER_BOUND)
        swaps = swaps_from_payload(payload, session.library)
        scores, version = await batcher.submit(swaps, model)
        return {
            "ok": True,
            "version": version,
            "model": model.value,
            "scores": scores,
        }


def run_server(
    host: str = "127.0.0.1",
    port: int = 8787,
    *,
    tick: float = 0.002,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
    executor_workers: int = 4,
) -> None:
    """Blocking entry point: start a :class:`TimingServer` and serve forever."""
    server = TimingServer(
        host,
        port,
        tick=tick,
        engine=engine,
        jobs=jobs,
        executor_workers=executor_workers,
    )

    async def main() -> None:
        await server.start()
        print(f"repro serve: listening on {host}:{server.port}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
