"""Wire schema of the timing service: JSON payload parsing and validation.

Every request body is a JSON object; this module turns the documented
payload shapes into engine objects (:class:`~repro.sta.netlist.Design`,
:class:`~repro.sta.parasitics.NetParasitics`, :class:`~repro.sta.cells.Cell`,
swap lists, :class:`~repro.sta.delaycalc.DelayModel`) and raises
:class:`ServeError` -- which carries the HTTP status the server should
answer with -- for anything malformed.  Keeping the parsing here, out of
the handler coroutines, means the handlers stay pure traffic plumbing and
the schema is unit-testable without a socket.

Payload shapes
--------------

``update_net`` parasitics (exactly one of the two forms)::

    {"net": "n3", "lumped_capacitance": 2.5e-14}
    {"net": "n3",
     "tree": {"root": "root",
              "branches": [{"parent": "root", "node": "a",
                            "resistance": 120.0,
                            "wire_capacitance": 1e-15}],   # optional per branch
              "caps": {"a": 2e-15}},                        # optional node caps
     "pin_nodes": {"u7/A": "a"}}

Cells (``resize_instance`` / what-if swaps) are referenced by library name
(``"INV_X2"``) or spelled out inline with the five linear-model fields::

    {"name": "CUSTOM", "inputs": ["A"], "output": "Y",
     "input_capacitance": 6e-15, "drive_resistance": 3e3,
     "intrinsic_delay": 4e-11}
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.tree import RCTree
from repro.sta.cells import Cell, standard_cell_library
from repro.sta.delaycalc import DelayModel
from repro.sta.netlist import Design, design_from_dict
from repro.sta.parasitics import NetParasitics, lumped, rc_tree_parasitics

__all__ = [
    "ServeError",
    "cell_from_payload",
    "design_from_payload",
    "model_from_payload",
    "parasitics_from_payload",
    "parasitics_to_payload",
    "parse_json_body",
    "require_mapping",
    "swaps_from_payload",
]


class ServeError(Exception):
    """A request the service must refuse, with the HTTP status to answer.

    ``status`` is the HTTP response code (400 for malformed payloads, 404
    for unknown sessions/routes, 409 for conflicts such as a duplicate
    session name); ``code`` is a stable machine-readable token clients can
    branch on without parsing the human message.
    """

    def __init__(self, message: str, *, status: int = 400, code: str = "bad_request"):
        super().__init__(message)
        self.status = status
        self.code = code

    def to_payload(self) -> Dict[str, Any]:
        """The JSON error envelope the server writes back."""
        return {"ok": False, "error": {"code": self.code, "message": str(self)}}


def parse_json_body(body: bytes) -> Dict[str, Any]:
    """Decode a request body into a JSON object (empty body -> ``{}``)."""
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeError(f"request body is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ServeError("request body must be a JSON object")
    return payload


def require_mapping(payload: Mapping, key: str) -> Mapping:
    """Fetch a mandatory object-valued field from ``payload``."""
    value = payload.get(key)
    if not isinstance(value, Mapping):
        raise ServeError(f"payload field {key!r} must be a JSON object")
    return value


def _require_number(payload: Mapping, key: str) -> float:
    value = payload.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ServeError(f"payload field {key!r} must be a number")
    return float(value)


def design_from_payload(payload: Mapping) -> Design:
    """The ``netlist`` field of a session-creation payload, as a Design.

    The shape is exactly the CLI's JSON netlist form
    (:func:`repro.sta.netlist.design_from_dict`); parse failures surface as
    400-level :class:`ServeError` with the underlying message.
    """
    netlist = require_mapping(payload, "netlist")
    try:
        return design_from_dict(netlist)
    except Exception as error:
        raise ServeError(f"malformed netlist: {error}") from None


def parasitics_from_payload(payload: Mapping) -> NetParasitics:
    """An ``update_net`` body as :class:`NetParasitics` (lumped or tree form)."""
    net = payload.get("net")
    if not isinstance(net, str) or not net:
        raise ServeError("payload field 'net' must be a non-empty string")
    has_tree = "tree" in payload
    has_lumped = "lumped_capacitance" in payload
    if has_tree == has_lumped:
        raise ServeError(
            "update_net takes exactly one of 'lumped_capacitance' or 'tree'"
        )
    if has_lumped:
        value = _require_number(payload, "lumped_capacitance")
        try:
            return lumped(net, value)
        except Exception as error:
            raise ServeError(f"bad lumped parasitics: {error}") from None
    spec = require_mapping(payload, "tree")
    root = spec.get("root", "root")
    if not isinstance(root, str) or not root:
        raise ServeError("tree field 'root' must be a non-empty string")
    branches = spec.get("branches")
    if not isinstance(branches, Sequence) or isinstance(branches, (str, bytes)):
        raise ServeError("tree field 'branches' must be a list of branch objects")
    caps = spec.get("caps", {})
    if not isinstance(caps, Mapping):
        raise ServeError("tree field 'caps' must be an object of node -> farads")
    pin_nodes = payload.get("pin_nodes", {})
    if not isinstance(pin_nodes, Mapping):
        raise ServeError("'pin_nodes' must be an object of pin -> tree node")
    try:
        tree = RCTree(root)
        for branch in branches:
            if not isinstance(branch, Mapping):
                raise ServeError("each branch must be a JSON object")
            parent = branch.get("parent")
            node = branch.get("node")
            if not isinstance(parent, str) or not isinstance(node, str):
                raise ServeError("branch 'parent' and 'node' must be strings")
            resistance = _require_number(branch, "resistance")
            if "wire_capacitance" in branch:
                tree.add_line(
                    parent, node, resistance, _require_number(branch, "wire_capacitance")
                )
            else:
                tree.add_resistor(parent, node, resistance)
        for node, value in caps.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ServeError(f"cap at node {node!r} must be a number")
            tree.add_capacitor(str(node), float(value))
        return rc_tree_parasitics(
            net, tree, {str(pin): str(node) for pin, node in pin_nodes.items()}
        )
    except ServeError:
        raise
    except Exception as error:
        raise ServeError(f"bad tree parasitics: {error}") from None


def parasitics_to_payload(parasitics: NetParasitics) -> Dict[str, Any]:
    """Serialize :class:`NetParasitics` into the ``update_net`` wire shape.

    The inverse of :func:`parasitics_from_payload`: lumped nets become the
    ``lumped_capacitance`` form, tree nets the ``tree``/``pin_nodes`` form
    with branches in child-creation order and distributed lines carrying
    their ``wire_capacitance``.  Round-tripping reproduces the same
    characteristic times bit for bit, which is what lets the test harness
    load generated designs over the wire.
    """
    if parasitics.tree is None:
        return {
            "net": parasitics.net,
            "lumped_capacitance": parasitics.lumped_capacitance,
        }
    tree = parasitics.tree
    branches: List[Dict[str, Any]] = []
    for edge in tree.edges:
        branch: Dict[str, Any] = {
            "parent": edge.parent,
            "node": edge.child,
            "resistance": edge.resistance,
        }
        if edge.capacitance:
            branch["wire_capacitance"] = edge.capacitance
        branches.append(branch)
    caps = {
        name: tree.node_capacitance(name)
        for name in tree.nodes
        if tree.node_capacitance(name)
    }
    return {
        "net": parasitics.net,
        "tree": {"root": tree.root, "branches": branches, "caps": caps},
        "pin_nodes": dict(parasitics.pin_nodes),
    }


_CELL_FIELDS = (
    "name",
    "inputs",
    "output",
    "input_capacitance",
    "drive_resistance",
    "intrinsic_delay",
)


def cell_from_payload(
    spec: Any, library: Optional[Dict[str, Cell]] = None
) -> Cell:
    """A cell reference: a library name string or an inline cell object."""
    library = library if library is not None else standard_cell_library()
    if isinstance(spec, str):
        cell = library.get(spec)
        if cell is None:
            raise ServeError(
                f"unknown cell {spec!r}; not in the session's library",
                code="unknown_cell",
            )
        return cell
    if not isinstance(spec, Mapping):
        raise ServeError("a cell must be a library name or an inline cell object")
    missing = [key for key in _CELL_FIELDS if key not in spec]
    if missing:
        raise ServeError(f"inline cell is missing fields {missing!r}")
    inputs = spec["inputs"]
    if not isinstance(inputs, Sequence) or isinstance(inputs, (str, bytes)):
        raise ServeError("inline cell 'inputs' must be a list of pin names")
    try:
        return Cell(
            name=str(spec["name"]),
            inputs=tuple(str(pin) for pin in inputs),
            output=str(spec["output"]),
            input_capacitance=_require_number(spec, "input_capacitance"),
            drive_resistance=_require_number(spec, "drive_resistance"),
            intrinsic_delay=_require_number(spec, "intrinsic_delay"),
            is_sequential=bool(spec.get("is_sequential", False)),
            clock_pin=str(spec.get("clock_pin", "")),
        )
    except ServeError:
        raise
    except Exception as error:
        raise ServeError(f"bad inline cell: {error}") from None


def swaps_from_payload(
    payload: Mapping, library: Optional[Dict[str, Cell]] = None
) -> List[Tuple[str, Cell]]:
    """The ``swaps`` list of a what-if body: ``[[instance, cell], ...]``."""
    raw = payload.get("swaps")
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)) or not raw:
        raise ServeError("'swaps' must be a non-empty list of [instance, cell] pairs")
    swaps: List[Tuple[str, Cell]] = []
    for item in raw:
        if (
            not isinstance(item, Sequence)
            or isinstance(item, (str, bytes))
            or len(item) != 2
        ):
            raise ServeError("each swap must be an [instance, cell] pair")
        instance, spec = item
        if not isinstance(instance, str) or not instance:
            raise ServeError("swap instance must be a non-empty string")
        swaps.append((instance, cell_from_payload(spec, library)))
    return swaps


def model_from_payload(payload: Mapping, default: DelayModel) -> DelayModel:
    """The optional ``model`` field as a :class:`DelayModel`."""
    value = payload.get("model")
    if value is None:
        return default
    try:
        return DelayModel(value)
    except ValueError:
        choices = ", ".join(model.value for model in DelayModel)
        raise ServeError(
            f"unknown delay model {value!r}; choose one of: {choices}",
            code="unknown_model",
        ) from None
