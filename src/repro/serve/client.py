"""A minimal asyncio HTTP/JSON client for the timing service.

:class:`ServeClient` keeps one persistent HTTP/1.1 connection (the server
speaks keep-alive) and exposes the routes as coroutine methods returning
decoded JSON payloads.  It exists so the tests, the engine-matrix arms,
and the benchmark load generator all talk to the server the way a real
client would -- through the socket, not through Python internals -- while
staying stdlib-only.

Server-side refusals (4xx/5xx) raise :class:`~repro.serve.schema.ServeError`
with the envelope's ``code``/``message``, so test assertions on failure
modes read the same as the server's own error mapping.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.schema import ServeError

__all__ = ["ServeClient"]


class ServeClient:
    """One keep-alive connection to a :class:`~repro.serve.TimingServer`."""

    def __init__(self, host: str, port: int):
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServeClient":
        """Open the persistent connection; returns ``self`` for chaining."""
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        return self

    async def close(self) -> None:
        """Close the connection (idempotent; swallows teardown races)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "ServeClient":
        """``async with ServeClient(...)`` connects on entry."""
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        """Close the connection on ``async with`` exit."""
        await self.close()

    async def request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One round trip; raises :class:`ServeError` on a non-200 response."""
        if self._reader is None or self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()
        status, response = await self._read_response()
        if status != 200:
            error = response.get("error", {}) if isinstance(response, dict) else {}
            raise ServeError(
                error.get("message", f"HTTP {status}"),
                status=status,
                code=error.get("code", "http_error"),
            )
        return response

    async def _read_response(self) -> "tuple[int, Dict[str, Any]]":
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await self._reader.readexactly(length) if length else b""
        return status, json.loads(body.decode("utf-8")) if body else {}

    # -- convenience wrappers over the routes --------------------------------

    async def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` -- liveness probe."""
        return await self.request("GET", "/healthz")

    async def create_session(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /sessions`` -- load a design into a named session."""
        return await self.request("POST", "/sessions", payload)

    async def sessions(self) -> List[str]:
        """``GET /sessions`` -- the sorted open session names."""
        return (await self.request("GET", "/sessions"))["sessions"]

    async def session_info(self, name: str) -> Dict[str, Any]:
        """``GET /sessions/{name}`` -- session metadata + batching stats."""
        return await self.request("GET", f"/sessions/{name}")

    async def close_session(self, name: str) -> Dict[str, Any]:
        """``POST /sessions/{name}/close`` -- close and free the session."""
        return await self.request("POST", f"/sessions/{name}/close", {})

    async def update_net(self, name: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """ECO: replace one net's parasitics; commits one session version."""
        return await self.request(
            "POST", f"/sessions/{name}/eco/update_net", payload
        )

    async def resize_instance(
        self, name: str, instance: str, cell: Any
    ) -> Dict[str, Any]:
        """ECO: swap one instance's cell; commits one session version."""
        return await self.request(
            "POST",
            f"/sessions/{name}/eco/resize_instance",
            {"instance": instance, "cell": cell},
        )

    async def slack(
        self,
        name: str,
        *,
        model: Optional[str] = None,
        pins: Optional[Sequence[str]] = None,
    ) -> Dict[str, Any]:
        """Query worst/endpoint slack (optionally per-pin) under ``model``."""
        payload: Dict[str, Any] = {}
        if model is not None:
            payload["model"] = model
        if pins is not None:
            payload["pins"] = list(pins)
        return await self.request("POST", f"/sessions/{name}/query/slack", payload)

    async def summary(
        self, name: str, *, model: Optional[str] = None
    ) -> Dict[str, Any]:
        """Query the design-wide timing summary (verdict, worst slack)."""
        payload: Dict[str, Any] = {}
        if model is not None:
            payload["model"] = model
        return await self.request("POST", f"/sessions/{name}/query/summary", payload)

    async def corners(
        self,
        name: str,
        scenarios: Any,
        *,
        model: Optional[str] = None,
        paths: bool = False,
    ) -> Dict[str, Any]:
        """Run a scenario/corner sweep; ``paths=True`` adds critical paths."""
        payload: Dict[str, Any] = {"scenarios": scenarios, "paths": paths}
        if model is not None:
            payload["model"] = model
        return await self.request("POST", f"/sessions/{name}/query/corners", payload)

    async def whatif(
        self, name: str, swaps: Sequence[Sequence[Any]], *, model: Optional[str] = None
    ) -> Dict[str, Any]:
        """Score what-if cell swaps (coalesced server-side into one solve)."""
        payload: Dict[str, Any] = {"swaps": [list(swap) for swap in swaps]}
        if model is not None:
            payload["model"] = model
        return await self.request("POST", f"/sessions/{name}/query/whatif", payload)
