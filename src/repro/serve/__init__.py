"""Timing-as-a-service: a persistent asyncio server over warm timing state.

The batch engines make a *cold* analysis fast; this package makes a *warm*
design queryable at interactive rates.  A :class:`TimingServer` loads each
design once into a :class:`~repro.graph.DesignDB` /
:class:`~repro.graph.TimingGraph` session (in RAM or out-of-core via
``store_dir``) and then serves concurrent HTTP/JSON clients: ECO edits
(``update_net`` / ``resize_instance``) funnelled through a per-session
serialized writer, slack and corner queries, and what-if resize scoring.

The piece that makes throughput *rise* under load is request coalescing
(:class:`~repro.serve.batcher.WhatIfBatcher`): what-if queries arriving
within a configurable tick are merged into one candidates-as-scenarios
solve through :meth:`~repro.graph.TimingGraph.whatif_resize_worst_slack`,
so sixty-four concurrent clients cost one batched forest sweep instead of
sixty-four serial ones.  All solve work runs in a thread-pool executor --
handler coroutines never touch a kernel directly (enforced by reprolint
RL009) -- and engine/jobs selection flows through the
:mod:`repro.parallel` backend registry unchanged.

Everything is stdlib (``asyncio`` + hand-rolled HTTP/1.1): the server adds
no dependency.
"""

from repro.serve.batcher import BatchStats, WhatIfBatcher
from repro.serve.client import ServeClient
from repro.serve.schema import ServeError
from repro.serve.server import TimingServer, run_server
from repro.serve.session import Session, SessionRegistry

__all__ = [
    "BatchStats",
    "ServeClient",
    "ServeError",
    "Session",
    "SessionRegistry",
    "TimingServer",
    "WhatIfBatcher",
    "run_server",
]
