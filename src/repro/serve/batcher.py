"""Request coalescing: many concurrent what-if queries, one batched solve.

The paper's candidates-as-scenarios kernel
(:meth:`~repro.graph.TimingGraph.whatif_resize_worst_slack`) prices ``S``
cell swaps at a single forest sweep, so a server that solves each client's
what-if alone is leaving its best asymptotics on the table.  The
:class:`WhatIfBatcher` closes that gap: ``submit()`` parks each request's
swaps in a pending list and resolves a future later; a flush task fires
one *tick* (default a couple of milliseconds) after the first request of a
round, drains everything that accumulated, groups it by delay model,
concatenates the swap lists, and runs one batched solve per model in the
executor -- then slices the score vector back out to each caller's future.

Two properties make this correct and live:

* The event loop is single-threaded, so "check pending / schedule flush"
  and "drain pending / clear task" are atomic -- no request can fall
  between a drain and the task teardown.
* The solve runs under the session lock, so batched what-ifs serialize
  with ECO writes exactly like every other operation; and because scenario
  columns are computed independently in the vectorized kernels, a swap
  scored in a 64-wide batch is bitwise identical to the same swap scored
  alone against the same state.

While one batch is solving, new arrivals open the next round and
accumulate behind the lock -- under load the batch size grows naturally
with concurrency, which is why throughput *rises* instead of collapsing.
A tick of ``0`` still coalesces whatever piles up during a solve, but adds
no artificial latency (the benchmark's serialized baseline).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sta.cells import Cell
from repro.sta.delaycalc import DelayModel

from repro.serve.session import Session

__all__ = ["BatchStats", "WhatIfBatcher"]


@dataclass
class BatchStats:
    """Coalescing counters, exposed in ``GET /sessions/{name}`` responses."""

    requests: int = 0
    batches: int = 0
    solved_swaps: int = 0
    max_batch_requests: int = 0

    def to_payload(self) -> Dict[str, float]:
        """JSON form, with the derived ``mean_batch_requests`` included."""
        mean = self.requests / self.batches if self.batches else 0.0
        return {
            "requests": self.requests,
            "batches": self.batches,
            "solved_swaps": self.solved_swaps,
            "max_batch_requests": self.max_batch_requests,
            "mean_batch_requests": mean,
        }


@dataclass
class _Pending:
    """One parked ``submit()`` call awaiting its slice of a batch solve."""

    swaps: List[Tuple[str, Cell]]
    model: DelayModel
    future: "asyncio.Future" = field(default_factory=asyncio.Future)


class WhatIfBatcher:
    """Tick-coalesced front end to one session's what-if kernel."""

    def __init__(self, session: Session, *, tick: float = 0.002, executor=None):
        self._session = session
        self._tick = tick
        self._executor = executor
        self._pending: List[_Pending] = []
        self._flush_task: Optional[asyncio.Task] = None
        self._closed = False
        self.stats = BatchStats()

    async def submit(
        self, swaps: Sequence[Tuple[str, Cell]], model: DelayModel
    ) -> Tuple[List[float], int]:
        """Score ``swaps``; returns ``(scores, session_version)``.

        The call coalesces with every other ``submit`` that lands within
        the same tick (or while a previous batch is still solving).  The
        returned version is the session version the scores were computed
        against, for clients correlating what-ifs with ECO history.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        entry = _Pending(list(swaps), model)
        self._pending.append(entry)
        self.stats.requests += 1
        if self._flush_task is None:
            self._flush_task = asyncio.ensure_future(self._flush_after_tick())
        return await entry.future

    async def _flush_after_tick(self) -> None:
        try:
            if self._tick > 0:
                await asyncio.sleep(self._tick)
            while self._pending:
                batch = self._pending
                self._pending = []
                await self._solve_batch(batch)
        finally:
            # No await between the last pending-check and this clear: the
            # next submit() sees task=None and opens a fresh round.
            self._flush_task = None
            if self._pending and not self._closed:
                self._flush_task = asyncio.ensure_future(self._flush_after_tick())

    async def _solve_batch(self, batch: List[_Pending]) -> None:
        """One coalesced round: group by model, solve, slice, resolve."""
        self.stats.batches += 1
        self.stats.max_batch_requests = max(
            self.stats.max_batch_requests, len(batch)
        )
        by_model: Dict[DelayModel, List[_Pending]] = {}
        for entry in batch:
            by_model.setdefault(entry.model, []).append(entry)
        loop = asyncio.get_running_loop()
        session = self._session
        for model, entries in by_model.items():
            merged: List[Tuple[str, Cell]] = []
            for entry in entries:
                merged.extend(entry.swaps)
            try:
                async with session.lock:
                    version = session.version
                    scores = await loop.run_in_executor(
                        self._executor, session.whatif_scores, merged, model
                    )
            except Exception as error:  # noqa: BLE001 - fan the failure out
                for entry in entries:
                    if not entry.future.done():
                        entry.future.set_exception(error)
                continue
            self.stats.solved_swaps += len(merged)
            offset = 0
            for entry in entries:
                width = len(entry.swaps)
                if not entry.future.done():
                    entry.future.set_result(
                        (scores[offset : offset + width], version)
                    )
                offset += width

    async def close(self) -> None:
        """Stop accepting work and fail anything still parked."""
        self._closed = True
        task = self._flush_task
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._flush_task = None
        pending, self._pending = self._pending, []
        for entry in pending:
            if not entry.future.done():
                entry.future.set_exception(RuntimeError("batcher closed"))
