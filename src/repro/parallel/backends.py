"""Kernel-backend registry: how a scenario-batched forest solve executes.

A *backend* is a strategy for running the characteristic-time level sweeps
over the ``(N, S)`` element planes of a forest:

* ``"numpy"`` -- the serial vectorized kernels, in-process.  Always
  available, always the reference; small sweeps stay here because process
  fan-out costs more than it saves.
* ``"process"`` -- the sharded multi-core engine
  (:mod:`repro.parallel.engine`): the forest is split into contiguous,
  node-balanced shards (:func:`repro.parallel.sharding.plan_shards`) and
  solved by worker processes over ``multiprocessing.shared_memory`` planes.
* ``"contract"`` -- the pointer-jumping tree-contraction kernels
  (:mod:`repro.flat.contraction`): O(log N) rounds regardless of depth, the
  cure for chain-heavy forests where the level sweeps degenerate into one
  numpy call per level.

Callers normally pass ``engine=None`` (or ``"auto"``) and let
:func:`resolve_engine` pick: depth-pathological forests
(``depth / log2(nodes) >= CONTRACT_DEPTH_RATIO``) go to the contraction
kernels, and otherwise the process backend is selected only when the sweep
is big enough (``nodes x scenarios >= AUTO_PROCESS_CELLS``) and more than
one worker is actually usable.  An *explicit* ``engine="process"`` /
``"contract"`` is always honoured (the former with however many workers
are available) so parity tests exercise every path even on one core.

Every solve records which backend it chose (:func:`last_selection`), and
setting ``REPRO_ENGINE_LOG=1`` additionally prints one line per solve to
stderr -- the observability knob for "why was this sweep slow?".

The registry is open: :func:`register_backend` lets an experiment register
e.g. a thread-pool or GPU strategy under a new name without touching the
call sites, which all go through ``engine="<name>"`` string selection.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.exceptions import AnalysisError

__all__ = [
    "AUTO_PROCESS_CELLS",
    "CONTRACT_DEPTH_RATIO",
    "KernelBackend",
    "available_backends",
    "default_job_count",
    "get_backend",
    "last_selection",
    "record_selection",
    "register_backend",
    "resolve_engine",
    "should_contract",
]

#: Smallest ``nodes x scenarios`` plane for which ``engine=None`` escalates
#: to the process backend: below this the serial kernels finish in a few
#: milliseconds and worker dispatch would only add latency.
AUTO_PROCESS_CELLS = 1 << 19

#: Depth-pathology threshold: ``engine=None`` picks the contraction kernels
#: when ``depth / log2(nodes) >= CONTRACT_DEPTH_RATIO``.  Bushy forests sit
#: near ratio 1-4 and stay on the level sweeps (fewer, cheaper rounds);
#: chains and URC ladders reach ratios in the hundreds where O(log N)
#: contraction rounds win outright.  The process backend's shard workers
#: apply the same test per shard.  Tunable: benchmarks may lower it, and
#: tests monkeypatch it to force either side of the decision.
CONTRACT_DEPTH_RATIO = 32.0

#: Environment variable that, when set to a non-empty value other than
#: ``"0"``, makes every solve print its engine selection to stderr.
ENGINE_LOG_ENV = "REPRO_ENGINE_LOG"


@dataclass(frozen=True)
class KernelBackend:
    """One registered execution strategy for the scenario-batched solve.

    ``solver`` has the engine signature ``solver(structure, base, planes,
    count, jobs, chunk)`` (see :func:`repro.parallel.engine.solve_forest_batch`,
    which dispatches to it); ``parallel`` marks backends that fan out to
    workers and therefore consume a ``jobs`` count.
    """

    name: str
    solver: Callable
    parallel: bool
    description: str = ""


_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(
    name: str,
    solver: Callable,
    *,
    parallel: bool,
    description: str = "",
) -> KernelBackend:
    """Register (or replace) a named backend and return its record."""
    if not name or name == "auto":
        raise AnalysisError(f"backend name {name!r} is reserved")
    backend = KernelBackend(
        name=name, solver=solver, parallel=parallel, description=description
    )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name; unknown names list the alternatives."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise AnalysisError(
            f"unknown engine {name!r}; available: {', '.join(available_backends())}"
        )
    return backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def default_job_count() -> int:
    """Usable worker count: the CPU affinity mask when the OS exposes one."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _in_daemon_worker() -> bool:
    """True inside a daemonic (pool) worker, where children cannot be forked."""
    return bool(multiprocessing.current_process().daemon)


def should_contract(depth: int, nodes: int) -> bool:
    """True when a forest is depth-pathological for the level sweeps.

    The level sweeps cost O(depth) numpy calls; the contraction kernels cost
    ``O(log2(nodes))`` rounds of slightly heavier work.  The crossover is
    where ``depth / log2(nodes)`` clears :data:`CONTRACT_DEPTH_RATIO` --
    read at call time so tuning (or monkeypatching) the threshold takes
    effect immediately.
    """
    if nodes < 2 or depth < 2:
        return False
    return depth / math.log2(nodes) >= CONTRACT_DEPTH_RATIO


#: Single-slot record of the most recent engine selection (see
#: :func:`record_selection` / :func:`last_selection`).
_LAST_SELECTION: List[Dict[str, object]] = []


def record_selection(
    requested: Optional[str],
    resolved: str,
    *,
    nodes: int = 0,
    scenarios: int = 0,
    depth: int = 0,
    jobs: int = 1,
) -> None:
    """Note which backend a solve chose; print it when the log knob is on.

    Called by :func:`repro.parallel.engine.solve_forest_batch` after every
    resolution.  The record is readable back via :func:`last_selection`;
    with ``REPRO_ENGINE_LOG=1`` in the environment a one-line report also
    goes to stderr, so long pipelines can show which engine every solve
    picked without any code change.
    """
    record = {
        "requested": requested if requested is not None else "auto",
        "engine": resolved,
        "nodes": int(nodes),
        "scenarios": int(scenarios),
        "depth": int(depth),
        "jobs": int(jobs),
    }
    _LAST_SELECTION[:] = [record]
    flag = os.environ.get(ENGINE_LOG_ENV, "")
    if flag and flag != "0":
        print(
            "repro.engine: engine={engine} (requested={requested}) "
            "nodes={nodes} scenarios={scenarios} depth={depth} jobs={jobs}".format(
                **record
            ),
            file=sys.stderr,
        )


def last_selection() -> Optional[Dict[str, object]]:
    """The most recent engine-selection record, or ``None`` before any solve.

    Keys: ``requested`` (the caller's ``engine=`` value, ``"auto"`` when it
    was left to the resolver), ``engine`` (the backend that actually ran),
    ``nodes``, ``scenarios``, ``depth`` and ``jobs``.  This is the
    programmatic face of the ``REPRO_ENGINE_LOG`` knob, used by the
    auto-selection tests.
    """
    return dict(_LAST_SELECTION[0]) if _LAST_SELECTION else None


def resolve_engine(
    engine: Optional[str] = None,
    *,
    cells: int = 0,
    jobs: Optional[int] = None,
    nodes: int = 0,
    depth: int = 0,
) -> Tuple[KernelBackend, int]:
    """Pick the backend and worker count for a sweep of ``cells`` elements.

    ``engine=None`` / ``"auto"`` first checks the depth pathology: a forest
    with ``depth / log2(nodes) >= CONTRACT_DEPTH_RATIO`` (see
    :func:`should_contract`) goes to the ``"contract"`` kernels, whose round
    count is O(log N) instead of O(depth).  Otherwise ``"process"`` is
    selected only when the plane is at least :data:`AUTO_PROCESS_CELLS`
    cells, more than one worker is usable (``jobs`` when given, else
    :func:`default_job_count`) and the caller is not itself a daemonic
    worker; the default remains ``"numpy"``.  Explicit names are honoured
    as-is (except inside a daemonic worker, where the process backend
    silently degrades to serial -- nested pools cannot exist).  Returns
    ``(backend, jobs)`` with ``jobs`` meaningful only for parallel backends.
    """
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {jobs}")
    name = engine if engine is not None else "auto"
    if name == "auto":
        workers = jobs if jobs is not None else default_job_count()
        escalate = (
            workers >= 2 and cells >= AUTO_PROCESS_CELLS and not _in_daemon_worker()
        )
        if "contract" in _REGISTRY and should_contract(depth, nodes):
            name = "contract"
        elif escalate and "process" in _REGISTRY:
            name = "process"
        else:
            name = "numpy"
    backend = get_backend(name)
    if not backend.parallel:
        return backend, 1
    if _in_daemon_worker():
        return get_backend("numpy"), 1
    return backend, jobs if jobs is not None else default_job_count()
