"""Kernel-backend registry: how a scenario-batched forest solve executes.

A *backend* is a strategy for running the characteristic-time level sweeps
over the ``(N, S)`` element planes of a forest:

* ``"numpy"`` -- the serial vectorized kernels, in-process.  Always
  available, always the reference; small sweeps stay here because process
  fan-out costs more than it saves.
* ``"process"`` -- the sharded multi-core engine
  (:mod:`repro.parallel.engine`): the forest is split into contiguous,
  node-balanced shards (:func:`repro.parallel.sharding.plan_shards`) and
  solved by worker processes over ``multiprocessing.shared_memory`` planes.

Callers normally pass ``engine=None`` (or ``"auto"``) and let
:func:`resolve_engine` pick: the process backend is selected only when the
sweep is big enough (``nodes x scenarios >= AUTO_PROCESS_CELLS``) and more
than one worker is actually usable.  An *explicit* ``engine="process"`` is
always honoured (with however many workers are available) so parity tests
exercise the sharded path even on one core.

The registry is open: :func:`register_backend` lets an experiment register
e.g. a thread-pool or GPU strategy under a new name without touching the
call sites, which all go through ``engine="<name>"`` string selection.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.exceptions import AnalysisError

__all__ = [
    "AUTO_PROCESS_CELLS",
    "KernelBackend",
    "available_backends",
    "default_job_count",
    "get_backend",
    "register_backend",
    "resolve_engine",
]

#: Smallest ``nodes x scenarios`` plane for which ``engine=None`` escalates
#: to the process backend: below this the serial kernels finish in a few
#: milliseconds and worker dispatch would only add latency.
AUTO_PROCESS_CELLS = 1 << 19


@dataclass(frozen=True)
class KernelBackend:
    """One registered execution strategy for the scenario-batched solve.

    ``solver`` has the engine signature ``solver(structure, base, planes,
    count, jobs, chunk)`` (see :func:`repro.parallel.engine.solve_forest_batch`,
    which dispatches to it); ``parallel`` marks backends that fan out to
    workers and therefore consume a ``jobs`` count.
    """

    name: str
    solver: Callable
    parallel: bool
    description: str = ""


_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(
    name: str,
    solver: Callable,
    *,
    parallel: bool,
    description: str = "",
) -> KernelBackend:
    """Register (or replace) a named backend and return its record."""
    if not name or name == "auto":
        raise AnalysisError(f"backend name {name!r} is reserved")
    backend = KernelBackend(
        name=name, solver=solver, parallel=parallel, description=description
    )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name; unknown names list the alternatives."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise AnalysisError(
            f"unknown engine {name!r}; available: {', '.join(available_backends())}"
        )
    return backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def default_job_count() -> int:
    """Usable worker count: the CPU affinity mask when the OS exposes one."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _in_daemon_worker() -> bool:
    """True inside a daemonic (pool) worker, where children cannot be forked."""
    return bool(multiprocessing.current_process().daemon)


def resolve_engine(
    engine: Optional[str] = None,
    *,
    cells: int = 0,
    jobs: Optional[int] = None,
) -> Tuple[KernelBackend, int]:
    """Pick the backend and worker count for a sweep of ``cells`` elements.

    ``engine=None`` / ``"auto"`` selects ``"process"`` only when the plane is
    at least :data:`AUTO_PROCESS_CELLS` cells, more than one worker is usable
    (``jobs`` when given, else :func:`default_job_count`) and the caller is
    not itself a daemonic worker; otherwise ``"numpy"``.  Explicit names are
    honoured as-is (except inside a daemonic worker, where the process
    backend silently degrades to serial -- nested pools cannot exist).
    Returns ``(backend, jobs)`` with ``jobs`` meaningful only for parallel
    backends.
    """
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {jobs}")
    name = engine if engine is not None else "auto"
    if name == "auto":
        workers = jobs if jobs is not None else default_job_count()
        escalate = (
            workers >= 2 and cells >= AUTO_PROCESS_CELLS and not _in_daemon_worker()
        )
        name = "process" if escalate and "process" in _REGISTRY else "numpy"
    backend = get_backend(name)
    if not backend.parallel:
        return backend, 1
    if _in_daemon_worker():
        return get_backend("numpy"), 1
    return backend, jobs if jobs is not None else default_job_count()
