"""Kernel-backend registry: how a scenario-batched forest solve executes.

A *backend* is a strategy for running the characteristic-time level sweeps
over the ``(N, S)`` element planes of a forest:

* ``"numpy"`` -- the serial vectorized kernels, in-process.  Always
  available, always the reference; small sweeps stay here because process
  fan-out costs more than it saves.
* ``"process"`` -- the sharded multi-core engine
  (:mod:`repro.parallel.engine`): the forest is split into contiguous,
  node-balanced shards (:func:`repro.parallel.sharding.plan_shards`) and
  solved by worker processes over ``multiprocessing.shared_memory`` planes.
* ``"contract"`` -- the pointer-jumping tree-contraction kernels
  (:mod:`repro.flat.contraction`): O(log N) rounds regardless of depth, the
  cure for chain-heavy forests where the level sweeps degenerate into one
  numpy call per level.
* ``"native"`` -- the Numba JIT-compiled kernels
  (:mod:`repro.flat.native`): the same sweeps fused into compiled machine
  code, run serially or per shard inside the process machinery (worker
  count x JIT compose).  Numba is optional: when it is missing, disabled
  (``REPRO_DISABLE_NATIVE=1``) or fails to compile, every ``"native"``
  request degrades to ``"numpy"`` and the recorded selection says why.

Callers normally pass ``engine=None`` (or ``"auto"``) and let
:func:`resolve_engine` pick: depth-pathological forests
(``depth / log2(nodes) >= CONTRACT_DEPTH_RATIO``) go to the contraction
kernels (compiled rounds when the native kernels are warm), sweeps of at
least ``AUTO_NATIVE_CELLS`` cells go to the compiled kernels when those
are usable, and the multi-process escalation (``nodes x scenarios >=
AUTO_PROCESS_CELLS`` with more than one usable worker) runs the compiled
kernels per shard when available, plain ``"process"`` otherwise.  An
*explicit* ``engine="process"`` / ``"contract"`` / ``"native"`` is always
honoured (parallel backends with however many workers are available) so
parity tests exercise every path even on one core.  Worker counts are
affinity-aware: :func:`default_job_count` reads the scheduling mask
(``os.sched_getaffinity``), not the raw CPU count, so cgroup-capped
containers never auto-pay process fan-out they cannot use.

Every solve records which backend it chose (:func:`last_selection`), and
setting ``REPRO_ENGINE_LOG=1`` additionally prints one line per solve to
stderr -- the observability knob for "why was this sweep slow?".

The registry is open: :func:`register_backend` lets an experiment register
e.g. a thread-pool or GPU strategy under a new name without touching the
call sites, which all go through ``engine="<name>"`` string selection.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.exceptions import AnalysisError

__all__ = [
    "AUTO_NATIVE_CELLS",
    "AUTO_PROCESS_CELLS",
    "CONTRACT_DEPTH_RATIO",
    "KernelBackend",
    "available_backends",
    "default_job_count",
    "get_backend",
    "last_selection",
    "record_selection",
    "register_backend",
    "resolve_engine",
    "should_contract",
]

#: Smallest ``nodes x scenarios`` plane for which ``engine=None`` escalates
#: to the process backend: below this the serial kernels finish in a few
#: milliseconds and worker dispatch would only add latency.
AUTO_PROCESS_CELLS = 1 << 19

#: Smallest ``nodes x scenarios`` plane for which ``engine=None`` prefers
#: the JIT-compiled kernels when they are usable.  Lower than
#: :data:`AUTO_PROCESS_CELLS` because a compiled in-process sweep has no
#: fan-out cost to amortize -- only the (cached, one-time) warm-up -- but
#: still high enough that sub-millisecond sweeps skip the readiness probe
#: entirely.
AUTO_NATIVE_CELLS = 1 << 16

#: Depth-pathology threshold: ``engine=None`` picks the contraction kernels
#: when ``depth / log2(nodes) >= CONTRACT_DEPTH_RATIO``.  Bushy forests sit
#: near ratio 1-4 and stay on the level sweeps (fewer, cheaper rounds);
#: chains and URC ladders reach ratios in the hundreds where O(log N)
#: contraction rounds win outright.  The process backend's shard workers
#: apply the same test per shard.  Tunable: benchmarks may lower it, and
#: tests monkeypatch it to force either side of the decision.
CONTRACT_DEPTH_RATIO = 32.0

#: Environment variable that, when set to a non-empty value other than
#: ``"0"``, makes every solve print its engine selection to stderr.
ENGINE_LOG_ENV = "REPRO_ENGINE_LOG"


@dataclass(frozen=True)
class KernelBackend:
    """One registered execution strategy for the scenario-batched solve.

    ``solver`` has the engine signature ``solver(structure, base, planes,
    count, jobs, chunk)`` (see :func:`repro.parallel.engine.solve_forest_batch`,
    which dispatches to it); ``parallel`` marks backends that fan out to
    workers and therefore consume a ``jobs`` count.
    """

    name: str
    solver: Callable
    parallel: bool
    description: str = ""


_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(
    name: str,
    solver: Callable,
    *,
    parallel: bool,
    description: str = "",
) -> KernelBackend:
    """Register (or replace) a named backend and return its record."""
    if not name or name == "auto":
        raise AnalysisError(f"backend name {name!r} is reserved")
    backend = KernelBackend(
        name=name, solver=solver, parallel=parallel, description=description
    )
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> KernelBackend:
    """Look up a backend by name; unknown names list the alternatives."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise AnalysisError(
            f"unknown engine {name!r}; available: {', '.join(available_backends())}"
        )
    return backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def default_job_count() -> int:
    """Usable worker count: the CPU affinity mask when the OS exposes one."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _in_daemon_worker() -> bool:
    """True inside a daemonic (pool) worker, where children cannot be forked."""
    return bool(multiprocessing.current_process().daemon)


def _native_ready() -> bool:
    """Whether the JIT-compiled kernels are usable (lazy, import-safe probe).

    Importing :mod:`repro.flat.native` is what pays the (one-time) Numba
    import, so this is only called once a sweep is big enough to care; a
    broken or absent installation simply reads as "not ready".  Module-level
    indirection so the auto-selection tests can monkeypatch readiness
    without a Numba installation.
    """
    try:
        from repro.flat.native import native_ready
    except Exception:  # pragma: no cover - native module always importable
        return False
    return native_ready()


def should_contract(depth: int, nodes: int) -> bool:
    """True when a forest is depth-pathological for the level sweeps.

    The level sweeps cost O(depth) numpy calls; the contraction kernels cost
    ``O(log2(nodes))`` rounds of slightly heavier work.  The crossover is
    where ``depth / log2(nodes)`` clears :data:`CONTRACT_DEPTH_RATIO` --
    read at call time so tuning (or monkeypatching) the threshold takes
    effect immediately.
    """
    if nodes < 2 or depth < 2:
        return False
    return depth / math.log2(nodes) >= CONTRACT_DEPTH_RATIO


#: Single-slot record of the most recent engine selection (see
#: :func:`record_selection` / :func:`last_selection`).
_LAST_SELECTION: List[Dict[str, object]] = []


def record_selection(
    requested: Optional[str],
    resolved: str,
    *,
    nodes: int = 0,
    scenarios: int = 0,
    depth: int = 0,
    jobs: int = 1,
    reason: str = "",
) -> None:
    """Note which backend a solve chose; print it when the log knob is on.

    Called by :func:`repro.parallel.engine.solve_forest_batch` after every
    resolution.  ``reason`` is non-empty only when the resolved backend is
    not the requested one for a *capability* reason -- today, an explicit
    ``engine="native"`` degrading to ``"numpy"`` because Numba is missing,
    disabled or failed to compile.  The record is readable back via
    :func:`last_selection`; with ``REPRO_ENGINE_LOG=1`` in the environment
    a one-line report also goes to stderr, so long pipelines can show
    which engine every solve picked without any code change.
    """
    record = {
        "requested": requested if requested is not None else "auto",
        "engine": resolved,
        "nodes": int(nodes),
        "scenarios": int(scenarios),
        "depth": int(depth),
        "jobs": int(jobs),
        "reason": reason,
    }
    _LAST_SELECTION[:] = [record]
    flag = os.environ.get(ENGINE_LOG_ENV, "")
    if flag and flag != "0":
        line = (
            "repro.engine: engine={engine} (requested={requested}) "
            "nodes={nodes} scenarios={scenarios} depth={depth} jobs={jobs}".format(
                **record
            )
        )
        if reason:
            line += f" reason={reason!r}"
        print(line, file=sys.stderr)
    elif reason and requested not in (None, "auto") and requested != resolved:
        # An *explicit* engine request silently running on a different
        # backend is the one selection users must hear about even with the
        # log knob off: a parity run believed to exercise "native" may in
        # fact be re-measuring numpy.
        print(
            f"repro.engine: warning: requested engine {requested!r} "
            f"fell back to {resolved!r}: {reason}",
            file=sys.stderr,
        )


def last_selection() -> Optional[Dict[str, object]]:
    """The most recent engine-selection record, or ``None`` before any solve.

    Keys: ``requested`` (the caller's ``engine=`` value, ``"auto"`` when it
    was left to the resolver), ``engine`` (the backend that actually ran),
    ``nodes``, ``scenarios``, ``depth``, ``jobs`` and ``reason`` (empty
    unless the request was degraded for a capability reason -- e.g. why a
    ``"native"`` request ran on ``"numpy"``).  This is the programmatic
    face of the ``REPRO_ENGINE_LOG`` knob, used by the auto-selection and
    fallback tests.
    """
    return dict(_LAST_SELECTION[0]) if _LAST_SELECTION else None


def resolve_engine(
    engine: Optional[str] = None,
    *,
    cells: int = 0,
    jobs: Optional[int] = None,
    nodes: int = 0,
    depth: int = 0,
) -> Tuple[KernelBackend, int]:
    """Pick the backend and worker count for a sweep of ``cells`` elements.

    ``engine=None`` / ``"auto"`` first checks the depth pathology: a forest
    with ``depth / log2(nodes) >= CONTRACT_DEPTH_RATIO`` (see
    :func:`should_contract`) leaves the level sweeps -- for the compiled
    contraction rounds of ``"native"`` when those are warm and the sweep
    clears :data:`AUTO_NATIVE_CELLS`, else for the ``"contract"`` kernels,
    whose round count is O(log N) instead of O(depth).  Otherwise a sweep
    of at least :data:`AUTO_PROCESS_CELLS` cells with more than one usable
    worker (``jobs`` when given, else the affinity-aware
    :func:`default_job_count`) escalates -- to ``"native"`` (compiled
    kernels per shard) when ready, else ``"process"`` -- and a sweep of at
    least :data:`AUTO_NATIVE_CELLS` cells runs the compiled kernels
    in-process (``jobs`` forced to 1: no fan-out cost below the process
    threshold); the default remains ``"numpy"``.  Explicit names are
    honoured as-is (except inside a daemonic worker, where nested pools
    cannot exist: ``"process"`` silently degrades to serial numpy and
    ``"native"`` runs its serial compiled path with one job).  Returns
    ``(backend, jobs)`` with ``jobs`` meaningful only for parallel backends.
    """
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {jobs}")
    name = engine if engine is not None else "auto"
    if name == "auto":
        workers = jobs if jobs is not None else default_job_count()
        escalate = (
            workers >= 2 and cells >= AUTO_PROCESS_CELLS and not _in_daemon_worker()
        )
        native_ok = (
            "native" in _REGISTRY and cells >= AUTO_NATIVE_CELLS and _native_ready()
        )
        if "contract" in _REGISTRY and should_contract(depth, nodes):
            name = "native" if native_ok else "contract"
        elif native_ok:
            name = "native"
        elif escalate and "process" in _REGISTRY:
            name = "process"
        else:
            name = "numpy"
        if name == "native" and not escalate:
            # Below the process threshold the compiled sweep runs
            # in-process; sharding would only add dispatch overhead.
            jobs = 1
    backend = get_backend(name)
    if not backend.parallel:
        return backend, 1
    if _in_daemon_worker():
        if backend.name == "native":
            # The serial compiled path needs no child processes, so an
            # explicit "native" inside a pool worker still runs compiled.
            return backend, 1
        return get_backend("numpy"), 1
    return backend, jobs if jobs is not None else default_job_count()
