"""Sharded multi-core execution for the scenario-batched solvers.

The Penfield-Rubinstein passes are linear-time and embarrassingly parallel
across trees and scenarios; this layer turns that into wall-clock speed:

* :mod:`repro.parallel.sharding` -- pure planners: contiguous, node-balanced
  tree shards and bounded scenario chunks;
* :mod:`repro.parallel.backends` -- the kernel-backend registry (``"numpy"``
  serial reference, ``"process"`` sharded workers, ``"contract"``
  pointer-jumping contraction for depth-pathological forests, ``"native"``
  Numba JIT-compiled kernels that degrade to numpy without Numba) and the
  size/depth auto-selection every ``engine=`` parameter funnels through,
  observable via :func:`last_selection` and ``REPRO_ENGINE_LOG=1``;
* :mod:`repro.parallel.engine` -- the execution engine itself:
  ``multiprocessing.shared_memory``-backed element/result planes, cached
  worker pools, and numerically identical results regardless of backend
  (bitwise between ``"numpy"`` and ``"process"``, 1e-12 for
  ``"contract"`` and ``"native"``).  ``engine="native"`` with ``jobs>=2``
  reuses the process machinery with the compiled kernel per shard, so
  worker count and JIT compose multiplicatively.

Callers never import this package directly for normal use -- they pass
``engine=`` / ``jobs=`` to :meth:`repro.flat.FlatForest.solve_batch`,
:meth:`repro.graph.DesignDB.solve_scenarios`,
:meth:`repro.graph.TimingGraph.analyze_scenarios`,
:func:`repro.apps.corners.corner_sweep` or the CLI's ``timing --jobs``.
The layer map lives in ``docs/architecture.md``.
"""

from repro.parallel.backends import (
    AUTO_NATIVE_CELLS,
    AUTO_PROCESS_CELLS,
    CONTRACT_DEPTH_RATIO,
    KernelBackend,
    available_backends,
    default_job_count,
    get_backend,
    last_selection,
    record_selection,
    register_backend,
    resolve_engine,
    should_contract,
)
from repro.parallel.engine import (
    ForestStructure,
    shutdown_pools,
    solve_forest_batch,
)
from repro.parallel.sharding import (
    CHUNK_BYTES_ENV,
    DEFAULT_CHUNK_CELLS,
    MAX_CHUNK_CELLS,
    default_chunk_cells,
    plan_shards,
    scenario_chunks,
    shard_node_ranges,
)

__all__ = [
    "AUTO_NATIVE_CELLS",
    "AUTO_PROCESS_CELLS",
    "CHUNK_BYTES_ENV",
    "CONTRACT_DEPTH_RATIO",
    "DEFAULT_CHUNK_CELLS",
    "MAX_CHUNK_CELLS",
    "default_chunk_cells",
    "ForestStructure",
    "KernelBackend",
    "available_backends",
    "default_job_count",
    "get_backend",
    "last_selection",
    "plan_shards",
    "record_selection",
    "register_backend",
    "resolve_engine",
    "scenario_chunks",
    "shard_node_ranges",
    "should_contract",
    "shutdown_pools",
    "solve_forest_batch",
]
