"""Sharded multi-core execution for the scenario-batched solvers.

The Penfield-Rubinstein passes are linear-time and embarrassingly parallel
across trees and scenarios; this layer turns that into wall-clock speed:

* :mod:`repro.parallel.sharding` -- pure planners: contiguous, node-balanced
  tree shards and bounded scenario chunks;
* :mod:`repro.parallel.backends` -- the kernel-backend registry (``"numpy"``
  serial reference, ``"process"`` sharded workers) and the size-threshold
  auto-selection every ``engine=`` parameter funnels through;
* :mod:`repro.parallel.engine` -- the execution engine itself:
  ``multiprocessing.shared_memory``-backed element/result planes, cached
  worker pools, and bitwise-identical results regardless of backend.

Callers never import this package directly for normal use -- they pass
``engine=`` / ``jobs=`` to :meth:`repro.flat.FlatForest.solve_batch`,
:meth:`repro.graph.DesignDB.solve_scenarios`,
:meth:`repro.graph.TimingGraph.analyze_scenarios`,
:func:`repro.apps.corners.corner_sweep` or the CLI's ``timing --jobs``.
The layer map lives in ``docs/architecture.md``.
"""

from repro.parallel.backends import (
    AUTO_PROCESS_CELLS,
    KernelBackend,
    available_backends,
    default_job_count,
    get_backend,
    register_backend,
    resolve_engine,
)
from repro.parallel.engine import (
    ForestStructure,
    shutdown_pools,
    solve_forest_batch,
)
from repro.parallel.sharding import (
    DEFAULT_CHUNK_CELLS,
    plan_shards,
    scenario_chunks,
    shard_node_ranges,
)

__all__ = [
    "AUTO_PROCESS_CELLS",
    "DEFAULT_CHUNK_CELLS",
    "ForestStructure",
    "KernelBackend",
    "available_backends",
    "default_job_count",
    "get_backend",
    "plan_shards",
    "register_backend",
    "resolve_engine",
    "scenario_chunks",
    "shard_node_ranges",
    "shutdown_pools",
    "solve_forest_batch",
]
