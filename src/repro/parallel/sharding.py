"""Shard and chunk planning for the parallel solve engine.

Two axes get partitioned:

* **trees -> shards** (:func:`plan_shards`): a :class:`~repro.flat.FlatForest`
  stores its member trees contiguously, so a shard is a *contiguous run of
  whole trees* -- equivalently one ``[node_lo, node_hi)`` slice of every
  concatenated element array.  Shards are balanced by **total node count**
  (the solve is linear in nodes), not by tree count: one 500-node clock tree
  costs as much as 100 five-node signal nets.  Contiguity is what makes the
  shared-memory handoff a pair of slice bounds instead of an index list.

* **scenarios -> chunks** (:func:`scenario_chunks`): the scenario-batched
  kernels materialize ``(N, S)`` working planes; chunking the scenario axis
  caps that working set at roughly :data:`DEFAULT_CHUNK_CELLS` elements per
  plane, so a (2k-instance x 256-scenario) sweep runs as a few bounded
  passes instead of one allocation proportional to ``N x S``.

Both planners are pure functions of sizes -- they hold no state, so they are
always consistent with the forest's *current* layout (after
:meth:`~repro.flat.FlatForest.replace_tree` splices, the next call simply
sees the new offsets).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import AnalysisError

__all__ = ["DEFAULT_CHUNK_CELLS", "plan_shards", "scenario_chunks", "shard_node_ranges"]

#: Target cells (nodes x scenarios) per working plane before the scenario
#: axis is chunked: 2**21 doubles == 16 MiB per (N, S) float64 plane.
DEFAULT_CHUNK_CELLS = 1 << 21


def plan_shards(offsets: Sequence[int], jobs: int) -> List[Tuple[int, int]]:
    """Partition a forest's trees into ``<= jobs`` contiguous, balanced shards.

    ``offsets`` is the forest's cumulative node-count array (``offsets[t]`` is
    the global index of tree ``t``'s first node, ``offsets[-1]`` the total
    node count).  Returns ``[(tree_lo, tree_hi), ...]`` half-open tree-index
    ranges whose node counts are as even as contiguity allows: cut ``k`` is
    placed at the tree boundary nearest ``total_nodes * k / jobs``.  Every
    shard is non-empty; fewer than ``jobs`` shards come back only when there
    are fewer trees than jobs.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    trees = len(offsets) - 1
    if trees < 1:
        raise AnalysisError("cannot shard an empty forest")
    if jobs < 1:
        raise AnalysisError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, trees)
    total = int(offsets[-1])
    bounds = [0]
    for cut in range(1, jobs):
        target = total * cut / jobs
        boundary = int(np.searchsorted(offsets, target, side="left"))
        # Keep every shard non-empty: at least one tree behind this cut and
        # enough trees ahead for the remaining shards.
        boundary = max(bounds[-1] + 1, min(boundary, trees - (jobs - cut)))
        bounds.append(boundary)
    bounds.append(trees)
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


def shard_node_ranges(
    offsets: Sequence[int], shards: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """The global ``[node_lo, node_hi)`` slice of each tree shard."""
    offsets = np.asarray(offsets, dtype=np.int64)
    return [(int(offsets[lo]), int(offsets[hi])) for lo, hi in shards]


def scenario_chunks(
    count: int, node_count: int, *, chunk: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Split ``count`` scenarios into evenly sized ``[lo, hi)`` chunks.

    With ``chunk=None`` the width is chosen so one ``(N, chunk)`` float64
    plane stays near :data:`DEFAULT_CHUNK_CELLS` elements; pass an explicit
    ``chunk`` to override (tests pin small chunks to exercise the loop).
    The requested width is an upper bound -- the actual widths are balanced
    (``ceil(count / pieces)``) so the last chunk is never a sliver.
    """
    if count < 1:
        raise AnalysisError(f"scenario count must be >= 1, got {count}")
    if chunk is None:
        width = max(1, DEFAULT_CHUNK_CELLS // max(int(node_count), 1))
    else:
        width = int(chunk)
        if width < 1:
            raise AnalysisError(f"scenario_chunk must be >= 1, got {chunk}")
    pieces = -(-count // width)  # ceil
    width = -(-count // pieces)
    return [(lo, min(lo + width, count)) for lo in range(0, count, width)]
