"""Shard and chunk planning for the parallel solve engine.

Two axes get partitioned:

* **trees -> shards** (:func:`plan_shards`): a :class:`~repro.flat.FlatForest`
  stores its member trees contiguously, so a shard is a *contiguous run of
  whole trees* -- equivalently one ``[node_lo, node_hi)`` slice of every
  concatenated element array.  Shards are balanced by **total node count**
  (the solve is linear in nodes), not by tree count: one 500-node clock tree
  costs as much as 100 five-node signal nets.  Contiguity is what makes the
  shared-memory handoff a pair of slice bounds instead of an index list.

* **scenarios -> chunks** (:func:`scenario_chunks`): the scenario-batched
  kernels materialize ``(N, S)`` working planes; chunking the scenario axis
  caps that working set at roughly :data:`DEFAULT_CHUNK_CELLS` elements per
  plane, so a (2k-instance x 256-scenario) sweep runs as a few bounded
  passes instead of one allocation proportional to ``N x S``.

Both planners are pure functions of sizes -- they hold no state, so they are
always consistent with the forest's *current* layout (after
:meth:`~repro.flat.FlatForest.replace_tree` splices, the next call simply
sees the new offsets).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import AnalysisError

__all__ = [
    "CHUNK_BYTES_ENV",
    "DEFAULT_CHUNK_CELLS",
    "MAX_CHUNK_CELLS",
    "default_chunk_cells",
    "plan_shards",
    "scenario_chunks",
    "shard_node_ranges",
]

#: Floor on the per-plane cell budget (nodes x scenarios) when the scenario
#: axis is chunked: 2**21 doubles == 16 MiB per (N, S) float64 plane.  The
#: memory-derived default (:func:`default_chunk_cells`) never goes below
#: this, so chunking behaves identically to the historical fixed budget on
#: small machines.
DEFAULT_CHUNK_CELLS = 1 << 21

#: Ceiling on the derived cell budget: 2**26 doubles == 512 MiB per plane.
#: Past this point wider chunks stop helping (the sweeps are bandwidth
#: bound) and only inflate peak RSS.
MAX_CHUNK_CELLS = 1 << 26

#: Environment override for the per-plane budget, in **bytes** of one
#: float64 working plane.  When set, it is exact (no floor/ceiling
#: clamping), so constrained CI jobs can pin tiny chunks.
CHUNK_BYTES_ENV = "REPRO_CHUNK_BYTES"

#: Fraction of MemAvailable granted to one working plane.  The batched
#: kernels hold a handful of (N, S) planes live at once and callers may run
#: several solves concurrently, so a single plane gets 1/64th.
_MEM_FRACTION = 64


def _available_memory_bytes() -> Optional[int]:
    """``MemAvailable`` from ``/proc/meminfo``, or ``None`` off-Linux."""
    try:
        with open("/proc/meminfo", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return None
    return None  # pragma: no cover - MemAvailable present on modern kernels


def default_chunk_cells() -> int:
    """The per-plane cell budget used when no explicit ``chunk`` is given.

    ``REPRO_CHUNK_BYTES`` in the environment wins and is exact: the budget
    is that many bytes of one float64 plane (at least one cell).  Otherwise
    the budget is derived from available memory -- ``MemAvailable`` /
    ``_MEM_FRACTION`` bytes per plane -- clamped to
    [:data:`DEFAULT_CHUNK_CELLS`, :data:`MAX_CHUNK_CELLS`] so small hosts
    keep the historical fixed budget and big hosts do not trade RSS for
    nothing.  Falls back to :data:`DEFAULT_CHUNK_CELLS` when the probe is
    unavailable.
    """
    raw = os.environ.get(CHUNK_BYTES_ENV, "")
    if raw:
        try:
            chunk_bytes = int(raw)
        except ValueError:
            raise AnalysisError(
                f"{CHUNK_BYTES_ENV} must be an integer byte count, got {raw!r}"
            )
        if chunk_bytes < 1:
            raise AnalysisError(
                f"{CHUNK_BYTES_ENV} must be >= 1, got {chunk_bytes}"
            )
        return max(1, chunk_bytes // 8)
    available = _available_memory_bytes()
    if available is None:
        return DEFAULT_CHUNK_CELLS
    derived = available // _MEM_FRACTION // 8
    return int(min(MAX_CHUNK_CELLS, max(DEFAULT_CHUNK_CELLS, derived)))


def plan_shards(offsets: Sequence[int], jobs: int) -> List[Tuple[int, int]]:
    """Partition a forest's trees into ``<= jobs`` contiguous, balanced shards.

    ``offsets`` is the forest's cumulative node-count array (``offsets[t]`` is
    the global index of tree ``t``'s first node, ``offsets[-1]`` the total
    node count).  Returns ``[(tree_lo, tree_hi), ...]`` half-open tree-index
    ranges whose node counts are as even as contiguity allows: cut ``k`` is
    placed at the tree boundary nearest ``total_nodes * k / jobs``.  Every
    shard is non-empty; fewer than ``jobs`` shards come back only when there
    are fewer trees than jobs.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    trees = len(offsets) - 1
    if trees < 1:
        raise AnalysisError("cannot shard an empty forest")
    if jobs < 1:
        raise AnalysisError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, trees)
    total = int(offsets[-1])
    bounds = [0]
    for cut in range(1, jobs):
        target = total * cut / jobs
        boundary = int(np.searchsorted(offsets, target, side="left"))
        # Keep every shard non-empty: at least one tree behind this cut and
        # enough trees ahead for the remaining shards.
        boundary = max(bounds[-1] + 1, min(boundary, trees - (jobs - cut)))
        bounds.append(boundary)
    bounds.append(trees)
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


def shard_node_ranges(
    offsets: Sequence[int], shards: Sequence[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """The global ``[node_lo, node_hi)`` slice of each tree shard."""
    offsets = np.asarray(offsets, dtype=np.int64)
    return [(int(offsets[lo]), int(offsets[hi])) for lo, hi in shards]


def scenario_chunks(
    count: int, node_count: int, *, chunk: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Split ``count`` scenarios into evenly sized ``[lo, hi)`` chunks.

    With ``chunk=None`` the width is chosen so one ``(N, chunk)`` float64
    plane stays near :func:`default_chunk_cells` elements (memory-derived,
    ``REPRO_CHUNK_BYTES``-overridable, never below
    :data:`DEFAULT_CHUNK_CELLS`); pass an explicit ``chunk`` to override
    (tests pin small chunks to exercise the loop).  The requested width is
    an upper bound -- the actual widths are balanced (``ceil(count /
    pieces)``) so the last chunk is never a sliver.
    """
    if count < 1:
        raise AnalysisError(f"scenario count must be >= 1, got {count}")
    if chunk is None:
        width = max(1, default_chunk_cells() // max(int(node_count), 1))
    else:
        width = int(chunk)
        if width < 1:
            raise AnalysisError(f"scenario_chunk must be >= 1, got {chunk}")
    pieces = -(-count // width)  # ceil
    width = -(-count // pieces)
    return [(lo, min(lo + width, count)) for lo in range(0, count, width)]
