"""The sharded multi-core solve engine behind ``engine="process"``.

:func:`solve_forest_batch` is the single entry point every scenario-batched
caller funnels through (:meth:`repro.flat.FlatForest.solve_batch` delegates
here, which carries :meth:`repro.graph.DesignDB.solve_scenarios`,
:meth:`repro.graph.TimingGraph.analyze_scenarios`,
:func:`repro.apps.corners.corner_sweep` and the CLI's ``timing --jobs``
along).  It normalizes the element planes, picks a backend through
:func:`repro.parallel.backends.resolve_engine`, and runs the paper's two
characteristic-time passes chunk by chunk over the scenario axis.

Execution model of the process backend
--------------------------------------

* The forest is partitioned into contiguous, node-balanced shards
  (:func:`repro.parallel.sharding.plan_shards`).  Because every tree's nodes
  are contiguous and no level sweep ever reads across tree boundaries, a
  shard solve is **bitwise identical** to the same trees' rows of a
  whole-forest solve -- the 1e-12 parity the tests pin is really exact
  equality.
* Two ``multiprocessing.shared_memory`` blocks carry everything the
  workers touch, both node-major (the kernels' orientation): a transient
  input block with the structure arrays (``parent``, ``depth``) and the
  current chunk's element planes, and a result block whose five planes are
  returned to the caller as zero-copy transposed views.  Workers attach by
  name and read/write their ``[node_lo, node_hi)`` slice -- no element or
  result data is ever pickled, and no transpose happens on the worker path.
* The scenario axis is processed in bounded chunks
  (:func:`repro.parallel.sharding.scenario_chunks`): the shared planes are
  allocated at chunk width and refilled per chunk, so a 256-scenario sweep
  of a large design never materializes more than a few
  :data:`~repro.parallel.sharding.DEFAULT_CHUNK_CELLS`-sized planes at once.
* Worker pools are cached per worker count and reused across solves (fork
  cost is paid once, not per sweep); nothing about a *forest* is cached
  anywhere in this module, so incremental edits
  (:meth:`~repro.flat.FlatForest.replace_tree`,
  :meth:`~repro.graph.DesignDB.update_net`) invalidate exactly as they do
  for the serial path -- the next solve simply reads the forest's current
  arrays.
"""

from __future__ import annotations

import atexit
import multiprocessing
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import AnalysisError
from repro.flat.contraction import jump_schedule, sweep_scenarios_contract
from repro.flat.scenarios import (
    PlaneInput,
    ScenarioForestTimes,
    level_buckets,
    sweep_scenarios,
)
from repro.parallel.backends import (
    record_selection,
    register_backend,
    resolve_engine,
    should_contract,
)
from repro.parallel.sharding import plan_shards, scenario_chunks, shard_node_ranges

__all__ = ["ForestStructure", "solve_forest_batch", "shutdown_pools"]

#: A substitute two-pass kernel: ``(parent, er, ec, nc)`` node-major
#: matrices in, ``(rkk, c_down, tde, tre)`` out (the contraction sweeps
#: with their jump schedule baked in).
SweepFn = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
]
#: The forest's base element arrays, in ``(edge_r, edge_c, node_c)`` order.
BasePlanes = Tuple[np.ndarray, np.ndarray, np.ndarray]
#: Normalized scenario planes (outputs of :func:`normalize_plane`), same order.
ScenarioPlanes = Tuple[
    Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]
]
#: Field name -> (byte offset, shape, dtype) inside one shared block.
BlockLayout = Dict[str, Tuple[int, Tuple[int, ...], str]]


@dataclass(frozen=True)
class ForestStructure:
    """The topology arrays a forest solve needs, independent of element values.

    ``parent`` uses global node indices (``-1`` for each tree's root),
    ``depth`` is the per-node level, ``offsets`` the cumulative node counts
    (``offsets[t]`` = first node of tree ``t``).  ``levels`` may carry the
    forest's precomputed level buckets to skip re-deriving them; the arrays
    are *referenced*, not copied, so a structure taken from a live forest
    always reflects its current (post-splice) layout.
    """

    parent: np.ndarray
    depth: np.ndarray
    offsets: np.ndarray
    levels: Optional[List[np.ndarray]] = None

    @property
    def node_count(self) -> int:
        """Total nodes across the forest."""
        return int(self.parent.shape[0])

    @property
    def tree_count(self) -> int:
        """Number of member trees."""
        return int(len(self.offsets) - 1)


def normalize_plane(values: PlaneInput, n: int, count: int) -> Optional[np.ndarray]:
    """Validate one scenario plane without materializing the ``(N, S)`` matrix.

    Returns ``None`` (use base values), a ``(S,)`` per-scenario vector, or a
    ``(S, N)`` matrix -- the same shapes
    :func:`repro.flat.scenarios.as_node_matrix` accepts, but kept in their
    compact form so chunked execution can slice scenarios lazily.
    """
    if values is None:
        return None
    array = np.asarray(values, dtype=float)
    if array.ndim == 1:
        if array.shape[0] != count:
            raise AnalysisError(
                f"scenario vector has {array.shape[0]} entries, expected {count}"
            )
        return array
    if array.shape != (count, n):
        raise AnalysisError(
            f"scenario plane has shape {array.shape}, expected ({count}, {n})"
        )
    return array


def _chunk_matrix(
    values: Optional[np.ndarray], base: np.ndarray, lo: int, hi: int, n: int
) -> np.ndarray:
    """The node-major ``(N, hi-lo)`` effective element matrix for [lo, hi).

    Copy-free when the caller's plane is already node-major underneath (an
    ``(S, N)`` array that is a transposed view of a C-contiguous ``(N, S)``
    matrix, the layout :meth:`repro.graph.DesignDB.solve_scenarios` builds);
    otherwise one materialization, exactly like the pre-parallel
    ``as_node_matrix`` path.
    """
    w = hi - lo
    if values is None:
        return np.ascontiguousarray(np.broadcast_to(base[:, np.newaxis], (n, w)))
    if values.ndim == 1:
        return np.ascontiguousarray(np.broadcast_to(values[np.newaxis, lo:hi], (n, w)))
    return np.ascontiguousarray(values[lo:hi].T)


def _fill_node_chunk(
    out: np.ndarray,
    values: Optional[np.ndarray],
    base: np.ndarray,
    lo: int,
    hi: int,
) -> None:
    """Write the node-major ``(N, hi-lo)`` element matrix into a shared plane.

    For a plane that is a transposed node-major view this is one straight
    memcpy; broadcast forms are cheap strided fills.
    """
    if values is None:
        out[:] = base[:, np.newaxis]
    elif values.ndim == 1:
        out[:] = values[np.newaxis, lo:hi]
    else:
        np.copyto(out, values[lo:hi].T)


def _solve_range(
    parent: np.ndarray,
    levels: Sequence[np.ndarray],
    starts: np.ndarray,
    er: np.ndarray,
    ec: np.ndarray,
    nc: np.ndarray,
    sweep: Optional[SweepFn] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The forest kernel over one contiguous node range.

    ``parent`` must be range-local (roots ``-1``), ``starts`` the local
    first-node index of each member tree.  Returns ``(ree, tde, tre, tp,
    total)`` with the node-indexed arrays shaped like ``er`` and the
    per-tree reductions shaped ``(trees, S)``.  With the default level
    sweeps the arithmetic -- including the per-tree ``reduceat`` order --
    is exactly the whole-forest kernel's, which is what makes shard results
    bitwise identical to serial results; ``sweep`` substitutes an
    alternative two-pass kernel with the :func:`sweep_scenarios` signature
    minus ``levels`` (the contraction kernel), which keeps the documented
    1e-12 parity instead.
    """
    if sweep is None:
        rkk, _, tde, tre = sweep_scenarios(levels, parent, er, ec, nc)
    else:
        rkk, _, tde, tre = sweep(parent, er, ec, nc)
    rkk_parent = rkk[np.maximum(parent, 0)]
    # A root has no parent edge: its gathered "parent" row above is whatever
    # node sits at local index 0, which differs between a whole-forest solve
    # and a shard solve.  Base forests keep root edge elements at zero so the
    # term vanishes either way, but solve_batch accepts arbitrary planes --
    # zero the root rows explicitly so every node range, sharded or not,
    # computes the identical (and well-defined) T_P contribution.
    rkk_parent[parent < 0] = 0.0
    tp_terms = rkk * nc + (rkk_parent + er / 2.0) * ec
    tp = np.add.reduceat(tp_terms, starts, axis=0)
    total = np.add.reduceat(nc + ec, starts, axis=0)
    return rkk, tde, tre, tp, total


# ----------------------------------------------------------------------
# Serial backends ("numpy" and "contract")
# ----------------------------------------------------------------------
def _solve_serial(
    structure: ForestStructure,
    base: BasePlanes,
    planes: ScenarioPlanes,
    count: int,
    chunk: Optional[int],
    sweep: Optional[SweepFn] = None,
) -> ScenarioForestTimes:
    """Chunked in-process execution of the forest kernel.

    ``sweep=None`` runs the level sweeps (the ``"numpy"`` reference path);
    a ``sweep`` callable substitutes another two-pass kernel -- the
    contraction backend passes the pointer-jumping sweeps with their jump
    schedule baked in, so chunked solves pay the topology pass once.
    """
    n = structure.node_count
    trees = structure.tree_count
    parent = structure.parent
    levels = structure.levels
    if levels is None and sweep is None:
        levels = level_buckets(structure.depth)
    starts = np.asarray(structure.offsets[:-1], dtype=np.int64)
    chunks = scenario_chunks(count, n, chunk=chunk)
    base_er, base_ec, base_nc = base
    plane_er, plane_ec, plane_nc = planes

    if len(chunks) == 1:
        # Whole sweep fits one working set: solve in place, return views.
        er = _chunk_matrix(plane_er, base_er, 0, count, n)
        ec = _chunk_matrix(plane_ec, base_ec, 0, count, n)
        nc = _chunk_matrix(plane_nc, base_nc, 0, count, n)
        ree, tde, tre, tp, total = _solve_range(
            parent, levels, starts, er, ec, nc, sweep=sweep
        )
        return ScenarioForestTimes(
            tp=tp.T, tde=tde.T, tre=tre.T, ree=ree.T, total_capacitance=total.T
        )

    out_tde = np.empty((n, count), dtype=np.float64)
    out_tre = np.empty((n, count), dtype=np.float64)
    out_ree = np.empty((n, count), dtype=np.float64)
    out_tp = np.empty((trees, count), dtype=np.float64)
    out_total = np.empty((trees, count), dtype=np.float64)
    for lo, hi in chunks:
        er = _chunk_matrix(plane_er, base_er, lo, hi, n)
        ec = _chunk_matrix(plane_ec, base_ec, lo, hi, n)
        nc = _chunk_matrix(plane_nc, base_nc, lo, hi, n)
        ree, tde, tre, tp, total = _solve_range(
            parent, levels, starts, er, ec, nc, sweep=sweep
        )
        out_ree[:, lo:hi] = ree
        out_tde[:, lo:hi] = tde
        out_tre[:, lo:hi] = tre
        out_tp[:, lo:hi] = tp
        out_total[:, lo:hi] = total
    return ScenarioForestTimes(
        tp=out_tp.T,
        tde=out_tde.T,
        tre=out_tre.T,
        ree=out_ree.T,
        total_capacitance=out_total.T,
    )


def _solve_numpy(
    structure: ForestStructure,
    base: BasePlanes,
    planes: ScenarioPlanes,
    count: int,
    jobs: int,
    chunk: Optional[int],
) -> ScenarioForestTimes:
    """Chunked serial execution of the level sweeps (the reference path)."""
    return _solve_serial(structure, base, planes, count, chunk)


def _contract_sweep(parent: np.ndarray) -> SweepFn:
    """The contraction kernel with its jump schedule precomputed.

    The schedule depends only on topology, so one pass serves every
    scenario chunk of a solve (and every element plane of a shard).
    """
    schedule = jump_schedule(parent)

    def sweep(
        parent_: np.ndarray, er: np.ndarray, ec: np.ndarray, nc: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return sweep_scenarios_contract(parent_, er, ec, nc, schedule=schedule)

    return sweep


def _solve_contract(
    structure: ForestStructure,
    base: BasePlanes,
    planes: ScenarioPlanes,
    count: int,
    jobs: int,
    chunk: Optional[int],
) -> ScenarioForestTimes:
    """Chunked serial execution of the pointer-jumping contraction kernels."""
    return _solve_serial(
        structure, base, planes, count, chunk, sweep=_contract_sweep(structure.parent)
    )


# ----------------------------------------------------------------------
# Compiled backend ("native")
# ----------------------------------------------------------------------
def _native_sweep_for(
    parent: np.ndarray, levels: Sequence[np.ndarray]
) -> Optional[SweepFn]:
    """A compiled two-pass kernel for one node range, or ``None``.

    ``None`` means the compiled kernels are unusable here (Numba missing,
    disabled via ``REPRO_DISABLE_NATIVE``, or a JIT failure) and the caller
    should fall through to the numpy kernels.  Deep ranges (per
    :func:`repro.parallel.backends.should_contract`) get the compiled
    contraction rounds, everything else the fused compiled level sweep --
    the same per-range decision the process shards make for the numpy
    kernels.
    """
    from repro.flat import native

    if not native.native_ready():
        return None
    deep = should_contract(len(levels) - 1, int(parent.shape[0]))
    return native.native_sweeps_for(parent, levels, deep)


def _solve_native(
    structure: ForestStructure,
    base: BasePlanes,
    planes: ScenarioPlanes,
    count: int,
    jobs: int,
    chunk: Optional[int],
) -> ScenarioForestTimes:
    """Chunked execution of the JIT-compiled kernels, sharded when ``jobs>=2``.

    With one worker the compiled sweep runs in-process through the same
    chunked driver as every serial backend.  With two or more, the solve
    reuses the entire ``"process"`` shared-memory machinery with a
    per-shard ``kernel="native"`` hint, so worker count and compiled
    kernels compose multiplicatively; the kernels are warmed *before* the
    pool fork so children load the ``cache=True`` artifact instead of
    compiling.  If the kernels turn out unusable the numpy path runs --
    :func:`solve_forest_batch` normally swaps the backend (and records the
    reason) before ever dispatching here, so this is a second belt.
    """
    levels = structure.levels
    if levels is None:
        levels = level_buckets(structure.depth)
    sweep = _native_sweep_for(structure.parent, levels)
    if sweep is None:
        return _solve_numpy(structure, base, planes, count, 1, chunk)
    if jobs >= 2:
        offsets = np.asarray(structure.offsets, dtype=np.int64)
        if len(plan_shards(offsets, jobs)) > 1:
            return _solve_process_impl(
                structure, base, planes, count, jobs, chunk, kernel="native"
            )
    return _solve_serial(structure, base, planes, count, chunk, sweep=sweep)


# ----------------------------------------------------------------------
# Sharded process backend ("process")
# ----------------------------------------------------------------------
#: Transient input block: structure arrays plus the current chunk's element
#: planes.  Everything is **node-major** ``(N, width)`` -- the kernel's own
#: orientation -- so workers operate on direct slices with no transposes,
#: and a caller plane that is node-major underneath refills as one memcpy.
_IN_FIELDS = ("parent", "depth", "er", "ec", "nc")
#: Result block: full-sweep, node-major; returned zero-copy as the ``.T``
#: views of the :class:`~repro.flat.scenarios.ScenarioForestTimes` (the
#: serial path returns transposed views of its working arrays too).
_OUT_FIELDS = ("ree", "tde", "tre", "tp", "total")


def _block_layout(
    fields: Sequence[str], shapes: Dict[str, Tuple[Tuple[int, ...], str]]
) -> BlockLayout:
    """Byte offset, shape and dtype of each field inside one shared block."""
    layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
    offset = 0
    for field in fields:
        shape, dtype = shapes[field]
        layout[field] = (offset, shape, dtype)
        offset += int(np.prod(shape)) * np.dtype(dtype).itemsize
    layout["__size__"] = (offset, (), "")
    return layout


def _in_layout(n: int, width: int) -> BlockLayout:
    return _block_layout(
        _IN_FIELDS,
        {
            "parent": ((n,), "int64"),
            "depth": ((n,), "int64"),
            "er": ((n, width), "float64"),
            "ec": ((n, width), "float64"),
            "nc": ((n, width), "float64"),
        },
    )


def _out_layout(n: int, trees: int, count: int) -> BlockLayout:
    return _block_layout(
        _OUT_FIELDS,
        {
            "ree": ((n, count), "float64"),
            "tde": ((n, count), "float64"),
            "tre": ((n, count), "float64"),
            "tp": ((trees, count), "float64"),
            "total": ((trees, count), "float64"),
        },
    )


def _views(
    buffer: memoryview, layout: BlockLayout, fields: Sequence[str]
) -> Dict[str, np.ndarray]:
    """Numpy views of every field of a shared block.

    Built with :func:`np.frombuffer` deliberately: unlike
    ``np.ndarray(buffer=...)`` (whose ``base`` bypasses the memoryview and
    holds no PEP-3118 export), a ``frombuffer`` view keeps a real buffer
    export open, so a premature ``SharedMemory.close()`` raises
    ``BufferError`` instead of unmapping pages a live array still reads.
    """
    views: Dict[str, np.ndarray] = {}
    for field in fields:
        offset, shape, dtype = layout[field]
        count = int(np.prod(shape)) if shape else 0
        views[field] = np.frombuffer(
            buffer, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
    return views


def _release_block(shm: shared_memory.SharedMemory) -> None:
    """Release a block we created, tolerating still-live numpy views.

    If views still export the buffer, ``close()`` raises ``BufferError``;
    the mapping then lives exactly as long as the last view (the memoryview
    keeps the mmap alive, the OS frees the pages on its collection), and
    the ``SharedMemory`` destructor is disarmed so it cannot retry.  The
    name is unlinked either way, so nothing persists past the process.
    """
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None
    try:
        shm.unlink()
    except Exception:
        pass


class _ResultBlock:
    """Owns the result shared-memory block for its numpy views' lifetime.

    The views handed back to the caller hold buffer exports that keep the
    mapping alive; when the holder (stashed on the returned record) is
    collected -- or at interpreter exit, whichever comes first -- the block
    is released via :func:`_release_block`.
    """

    def __init__(self, size: int) -> None:
        self.shm = shared_memory.SharedMemory(create=True, size=size)
        self._finalizer = weakref.finalize(self, _release_block, self.shm)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without adopting cleanup responsibility.

    Before Python 3.13 every attach registers the segment with a
    ``resource_tracker``.  Under the ``fork`` start method the worker shares
    the creator's tracker, so the duplicate registration is a harmless
    set-dedupe and must be left alone (unregistering here would break the
    creator's own unlink).  Under ``spawn``/``forkserver`` the worker has its
    *own* tracker, which would warn about -- and eventually unlink -- a
    segment the creator still owns, so there the registration is undone.
    """
    block = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method() != "fork":
        try:  # pragma: no cover - non-fork platforms, version-dependent
            from multiprocessing import resource_tracker

            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:
            pass
    return block


def _solve_shard_into(
    in_buf: memoryview,
    out_buf: memoryview,
    n: int,
    trees: int,
    count: int,
    width: int,
    w: int,
    lo: int,
    t_lo: int,
    t_hi: int,
    n_lo: int,
    n_hi: int,
    offsets_local: Sequence[int],
    kernel: str = "auto",
) -> None:
    """Solve one shard's node range for one chunk; views scoped to this frame.

    Both blocks are node-major, so the kernel runs on direct slices of the
    input planes and writes straight into columns ``[lo, lo+w)`` of the
    result block -- no transposes anywhere on this path.  Each shard picks
    its own kernel: a depth-pathological shard (per
    :func:`repro.parallel.backends.should_contract`) runs the contraction
    sweeps -- 1e-12-equal to, but not bitwise-identical with, the level
    sweeps -- so one deep chain inside an otherwise bushy design cannot
    serialize its worker.  ``kernel="native"`` (the hint
    :func:`_solve_native` sends) makes the shard run the JIT-compiled
    kernels instead, with the same per-shard deep/shallow decision; a
    worker where the compiled kernels are unusable falls back to the numpy
    choice above, so a heterogeneous pool still completes correctly.
    """
    ins = _views(in_buf, _in_layout(n, width), _IN_FIELDS)
    outs = _views(out_buf, _out_layout(n, trees, count), _OUT_FIELDS)
    parent = ins["parent"][n_lo:n_hi].copy()
    parent[parent >= 0] -= n_lo
    levels = level_buckets(ins["depth"][n_lo:n_hi])
    starts = np.asarray(offsets_local, dtype=np.int64) - n_lo
    er = ins["er"][n_lo:n_hi, :w]
    ec = ins["ec"][n_lo:n_hi, :w]
    nc = ins["nc"][n_lo:n_hi, :w]
    sweep = None
    if kernel == "native":
        sweep = _native_sweep_for(parent, levels)
    if sweep is None and should_contract(len(levels) - 1, n_hi - n_lo):
        sweep = _contract_sweep(parent)
    ree, tde, tre, tp, total = _solve_range(
        parent, levels, starts, er, ec, nc, sweep=sweep
    )
    outs["ree"][n_lo:n_hi, lo : lo + w] = ree
    outs["tde"][n_lo:n_hi, lo : lo + w] = tde
    outs["tre"][n_lo:n_hi, lo : lo + w] = tre
    outs["tp"][t_lo:t_hi, lo : lo + w] = tp
    outs["total"][t_lo:t_hi, lo : lo + w] = total


#: Worker-side single-slot attachment cache for the parent's (cached,
#: stable-named) input block: re-attaching per task would re-mmap the same
#: segment over and over.  Result blocks are fresh-named per solve and are
#: attached/closed per task instead.
_WORKER_IN: List[Tuple[str, shared_memory.SharedMemory]] = []


def _attach_input(name: str) -> shared_memory.SharedMemory:
    """Attach the input block, reusing the mapping while the name is stable."""
    if _WORKER_IN and _WORKER_IN[0][0] == name:
        return _WORKER_IN[0][1]
    while _WORKER_IN:
        _, old = _WORKER_IN.pop()
        try:
            old.close()
        except BufferError:  # pragma: no cover - views die with the task
            pass
    block = _attach(name)
    _WORKER_IN.append((name, block))
    return block


def _solve_shard_task(args: Tuple[Any, ...]) -> None:
    """Worker body: attach the shared blocks and solve one shard inside them."""
    in_name, out_name = args[0], args[1]
    in_block = _attach_input(in_name)
    out_block = _attach(out_name)
    try:
        _solve_shard_into(in_block.buf, out_block.buf, *args[2:])
    finally:
        try:
            # The happy path has dropped every numpy view by now; on an
            # error path the in-flight traceback may still pin buffer
            # exports -- let the real error propagate instead of masking
            # it, the mapping dies with the task anyway.
            out_block.close()
        except BufferError:  # pragma: no cover - error path only
            pass


#: Parent-side single-slot cache for the transient input block: reused
#: across solves while big enough, so steady-state sweeps skip segment
#: creation and first-touch page faults.  (The solve path is not
#: re-entrant -- one in-flight sharded solve per process, which nesting
#: prevention in ``resolve_engine`` already guarantees.)
_IN_CACHE: List[shared_memory.SharedMemory] = []


def _input_block(size: int) -> shared_memory.SharedMemory:
    """Get-or-create the cached input block with at least ``size`` bytes."""
    if _IN_CACHE and _IN_CACHE[0].size >= size:
        return _IN_CACHE[0]
    while _IN_CACHE:
        _release_block(_IN_CACHE.pop())
    block = shared_memory.SharedMemory(create=True, size=size)
    _IN_CACHE.append(block)
    return block


def _release_input_cache() -> None:
    """Unlink the cached input block (registered with :mod:`atexit`)."""
    while _IN_CACHE:
        _release_block(_IN_CACHE.pop())


atexit.register(_release_input_cache)

_POOLS: Dict[int, "multiprocessing.pool.Pool"] = {}


def _pool(jobs: int) -> "multiprocessing.pool.Pool":
    """A cached worker pool of the given size (fork cost paid once)."""
    pool = _POOLS.get(jobs)
    if pool is None:
        pool = multiprocessing.get_context().Pool(processes=jobs)
        _POOLS[jobs] = pool
    return pool


def shutdown_pools() -> None:
    """Terminate every cached worker pool (registered with :mod:`atexit`)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_pools)


def _solve_process(
    structure: ForestStructure,
    base: BasePlanes,
    planes: ScenarioPlanes,
    count: int,
    jobs: int,
    chunk: Optional[int],
) -> ScenarioForestTimes:
    """Sharded execution over shared-memory planes (see the module docstring)."""
    return _solve_process_impl(structure, base, planes, count, jobs, chunk)


def _solve_process_impl(
    structure: ForestStructure,
    base: BasePlanes,
    planes: ScenarioPlanes,
    count: int,
    jobs: int,
    chunk: Optional[int],
    kernel: str = "auto",
) -> ScenarioForestTimes:
    """Shared body of ``"process"`` and sharded ``"native"`` solves.

    ``kernel`` is forwarded to every shard task: ``"auto"`` keeps the
    numpy level/contraction choice (the plain process backend, bitwise on
    shallow shards), ``"native"`` runs the JIT-compiled kernels per shard.
    """
    n = structure.node_count
    trees = structure.tree_count
    offsets = np.asarray(structure.offsets, dtype=np.int64)
    shards = plan_shards(offsets, jobs)
    if len(shards) == 1:
        return _solve_numpy(structure, base, planes, count, 1, chunk)
    ranges = shard_node_ranges(offsets, shards)
    chunks = scenario_chunks(count, n, chunk=chunk)
    width = chunks[0][1] - chunks[0][0]
    base_er, base_ec, base_nc = base
    plane_er, plane_ec, plane_nc = planes

    out_layout = _out_layout(n, trees, count)
    holder = _ResultBlock(out_layout["__size__"][0])
    outs = _views(holder.shm.buf, out_layout, _OUT_FIELDS)

    in_layout = _in_layout(n, width)
    block = _input_block(in_layout["__size__"][0])
    ins = _views(block.buf, in_layout, _IN_FIELDS)
    ins["parent"][:] = structure.parent
    ins["depth"][:] = structure.depth
    pool = _pool(len(shards))
    for lo, hi in chunks:
        w = hi - lo
        _fill_node_chunk(ins["er"][:, :w], plane_er, base_er, lo, hi)
        _fill_node_chunk(ins["ec"][:, :w], plane_ec, base_ec, lo, hi)
        _fill_node_chunk(ins["nc"][:, :w], plane_nc, base_nc, lo, hi)
        tasks = [
            (
                block.name, holder.shm.name, n, trees, count, width, w, lo,
                t_lo, t_hi, n_lo, n_hi,
                # Task payloads must be picklable plain objects; this is
                # O(trees/shard) packing, not a per-node hot path.
                offsets[t_lo:t_hi].tolist(),  # reprolint: disable=RL002
                kernel,
            )
            for (t_lo, t_hi), (n_lo, n_hi) in zip(shards, ranges)
        ]
        pool.map(_solve_shard_task, tasks, chunksize=1)
    times = ScenarioForestTimes(
        tp=outs["tp"].T,
        tde=outs["tde"].T,
        tre=outs["tre"].T,
        ree=outs["ree"].T,
        total_capacitance=outs["total"].T,
    )
    # The arrays are zero-copy views into the result block; pin its owner to
    # the record so the mapping lives exactly as long as the results do.
    object.__setattr__(times, "_shared_block", holder)
    return times


register_backend(
    "numpy",
    _solve_numpy,
    parallel=False,
    description="serial vectorized kernels, in-process (the reference path)",
)
register_backend(
    "process",
    _solve_process,
    parallel=True,
    description="node-balanced shards solved by worker processes over "
    "shared-memory element/result planes",
)
register_backend(
    "contract",
    _solve_contract,
    parallel=False,
    description="pointer-jumping tree contraction: O(log N) rounds "
    "regardless of depth, for chain-heavy forests",
)
register_backend(
    "native",
    _solve_native,
    parallel=True,
    description="Numba JIT-compiled fused sweeps, serial or per-shard "
    "inside the process machinery; degrades to numpy without Numba",
)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def solve_forest_batch(
    structure: ForestStructure,
    base: Tuple[np.ndarray, np.ndarray, np.ndarray],
    planes: Tuple,
    count: int,
    *,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
    scenario_chunk: Optional[int] = None,
) -> ScenarioForestTimes:
    """Solve every tree of a forest under ``count`` scenarios.

    ``base`` carries the forest's resident ``(edge_r, edge_c, node_c)``
    arrays; ``planes`` the caller's overrides in
    :meth:`~repro.flat.FlatTree.solve_batch` form (``None`` / ``(S,)`` /
    ``(S, N)`` each).  ``engine`` selects a registered backend by name
    (``None`` auto-selects by sweep size and depth pathology), ``jobs``
    caps the worker count of parallel backends, and ``scenario_chunk``
    overrides the bounded-memory chunk width.  Every backend returns
    numerically identical (to 1e-12; bitwise between ``"numpy"`` and
    ``"process"`` on shallow shards)
    :class:`~repro.flat.scenarios.ScenarioForestTimes` -- backend choice is
    an execution detail, never a semantics change.  The selection is
    recorded (:func:`repro.parallel.backends.last_selection`) and reported
    to stderr under ``REPRO_ENGINE_LOG=1``.
    """
    count = int(count)
    if count < 1:
        raise AnalysisError(f"scenario count must be >= 1, got {count}")
    n = structure.node_count
    planes = tuple(normalize_plane(plane, n, count) for plane in planes)
    if structure.levels is not None:
        depth = len(structure.levels) - 1
    else:
        depth = int(structure.depth.max()) if n else 0
    backend, jobs = resolve_engine(
        engine, cells=n * count, jobs=jobs, nodes=n, depth=depth
    )
    reason = ""
    if backend.name == "native":
        from repro.flat import native

        if not native.native_ready():
            # Auto-selection never picks an unready "native", so this is an
            # *explicit* request on a machine without usable Numba: honour
            # the solve with the reference kernels and record why, instead
            # of failing a pipeline over an optional accelerator.
            reason = f"native kernels unavailable ({native.native_status()})"
            backend, jobs = resolve_engine("numpy")
    record_selection(
        engine,
        backend.name,
        nodes=n,
        scenarios=count,
        depth=depth,
        jobs=jobs,
        reason=reason,
    )
    return backend.solver(structure, base, planes, count, jobs, scenario_chunk)
