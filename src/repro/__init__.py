"""rctree-bounds: signal-delay bounds for RC tree networks.

A production-quality reproduction of Penfield & Rubinstein, *Signal Delay in
RC Tree Networks* (Caltech Conference on VLSI / DAC, 1981): the RC-tree
network model, the characteristic times ``T_P`` / ``T_De`` (Elmore delay) /
``T_Re``, the delay and voltage bounds built from them, the linear-time
constructive algebra of Section IV, and everything needed to reproduce the
paper's evaluation -- an exact simulator, parasitic extraction from wire
geometry, the PLA application of Section V, SPICE/SPEF interchange and a
miniature static-timing engine that consumes the bounds.

Quick start::

    from repro import RCTree, characteristic_times, delay_bounds

    tree = RCTree("in")
    tree.add_resistor("in", "a", 15.0)
    tree.add_capacitor("a", 2.0)
    tree.add_line("a", "out", resistance=3.0, capacitance=4.0)
    tree.add_capacitor("out", 9.0)
    tree.mark_output("out")

    times = characteristic_times(tree, "out")
    print(delay_bounds(times, threshold=0.5))

For batch workloads (all outputs, all thresholds, many trees at once) use
the vectorized flat engine::

    from repro import FlatTree

    flat = FlatTree.from_tree(tree)
    names, lower, upper = flat.delay_bounds_batch([0.5, 0.9])

For corner sweeps and what-if studies, a :class:`ScenarioSet` threads a
leading scenario axis through the same kernels -- every corner of a design
is timed in one batched pass::

    from repro import ScenarioSet, TimingGraph

    graph = TimingGraph(design, parasitics, clock_period=2e-9)
    report = graph.analyze_scenarios(ScenarioSet.corners())
    print(report.worst_slack, report.verdicts)

See ``examples/`` for complete scenarios, ``README.md`` for the architecture
map, and ``docs/`` for the paper-to-code map and performance notes.
"""

from repro.core import (
    AnalysisError,
    BoundedResponse,
    Capacitor,
    Certificate,
    CharacteristicTimes,
    DegenerateNetworkError,
    DelayBounds,
    ElementValueError,
    ParseError,
    RCTree,
    RCTreeError,
    Resistor,
    TopologyError,
    TreeBuilder,
    URCLine,
    UnknownNodeError,
    Verdict,
    VoltageBounds,
    certify,
    certify_tree,
    characteristic_times,
    characteristic_times_all,
    delay_bounds,
    delay_lower_bound,
    delay_upper_bound,
    elmore_delay,
    elmore_delays,
    figure3_tree,
    figure7_tree,
    rc_ladder,
    single_line,
    symmetric_fanout,
    voltage_bounds,
    voltage_lower_bound,
    voltage_upper_bound,
)
from repro.algebra import (
    TwoPort,
    expression_to_tree,
    parse_expression,
    tree_to_expression,
    tree_to_twoport,
    urc,
    wb,
    wc,
)
from repro.flat import (
    FlatForest,
    FlatTimes,
    FlatTree,
    ScenarioForestTimes,
    ScenarioTimes,
    delay_bounds_batch,
    voltage_bounds_batch,
)
from repro.graph import (
    DesignDB,
    DesignTimingSummary,
    ScenarioSinkTable,
    ScenarioTimingReport,
    TimingGraph,
)
from repro.parallel import (
    available_backends,
    default_job_count,
    register_backend,
    solve_forest_batch,
)
from repro.scenarios import (
    ParameterPlane,
    Scenario,
    ScenarioSet,
    scaled_design,
    scaled_parasitics,
)
from repro.simulate import (
    Waveform,
    exact_step_response,
    simulate_step,
    transient_step_response,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model
    "RCTree",
    "TreeBuilder",
    "Resistor",
    "Capacitor",
    "URCLine",
    # analysis
    "CharacteristicTimes",
    "characteristic_times",
    "characteristic_times_all",
    "elmore_delay",
    "elmore_delays",
    "DelayBounds",
    "VoltageBounds",
    "BoundedResponse",
    "delay_bounds",
    "delay_lower_bound",
    "delay_upper_bound",
    "voltage_bounds",
    "voltage_lower_bound",
    "voltage_upper_bound",
    "Certificate",
    "Verdict",
    "certify",
    "certify_tree",
    # vectorized flat engine
    "FlatTree",
    "FlatTimes",
    "FlatForest",
    "ScenarioTimes",
    "ScenarioForestTimes",
    "delay_bounds_batch",
    "voltage_bounds_batch",
    # design-scale timing engine
    "DesignDB",
    "TimingGraph",
    "DesignTimingSummary",
    "ScenarioSinkTable",
    "ScenarioTimingReport",
    # scenarios (corners, derates, what-ifs)
    "Scenario",
    "ScenarioSet",
    "ParameterPlane",
    "scaled_design",
    "scaled_parasitics",
    # parallel execution (sharded multi-core solves)
    "available_backends",
    "default_job_count",
    "register_backend",
    "solve_forest_batch",
    # algebra
    "TwoPort",
    "urc",
    "wb",
    "wc",
    "parse_expression",
    "tree_to_twoport",
    "tree_to_expression",
    "expression_to_tree",
    # simulation
    "Waveform",
    "exact_step_response",
    "simulate_step",
    "transient_step_response",
    # reference networks
    "figure3_tree",
    "figure7_tree",
    "single_line",
    "rc_ladder",
    "symmetric_fanout",
    # exceptions
    "RCTreeError",
    "TopologyError",
    "UnknownNodeError",
    "ElementValueError",
    "DegenerateNetworkError",
    "AnalysisError",
    "ParseError",
]
