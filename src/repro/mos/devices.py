"""Simple MOS device models: effective switching resistance from geometry.

The bound theory treats the driving transistor as a linear resistor; what
resistance to use is a modelling choice.  The standard first-order estimate
averages the device current over the output transition, giving

.. math::

    R_\\mathrm{eff} \\approx \\frac{k}{(W/L)}

with ``k`` a per-process constant (ohms for a square device).  That is the
model provided here -- deliberately simple (the paper predates BSIM by a
decade), but parameterised so examples can trade drive strength for area in
a physically sensible way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.checks import require_positive


class DeviceType(enum.Enum):
    """Transistor families distinguished by the resistance estimator."""

    NMOS_ENHANCEMENT = "nmos"
    NMOS_DEPLETION = "depletion"  # the NMOS pull-up load of the paper's era
    PMOS = "pmos"


#: Effective resistance of a *square* (W = L) device, ohms, per device type.
#: NMOS depletion loads are intentionally weak (they fight the pull-down),
#: PMOS carries holes (~2-3x the NMOS resistance at equal size).
SQUARE_DEVICE_RESISTANCE = {
    DeviceType.NMOS_ENHANCEMENT: 10e3,
    DeviceType.NMOS_DEPLETION: 40e3,
    DeviceType.PMOS: 25e3,
}


@dataclass(frozen=True)
class MOSDevice:
    """A transistor described by its type and drawn geometry (metres)."""

    device_type: DeviceType
    width: float
    length: float

    def __post_init__(self):
        require_positive("width", self.width)
        require_positive("length", self.length)

    @property
    def aspect_ratio(self) -> float:
        """The drawn ``W / L``."""
        return self.width / self.length

    @property
    def effective_resistance(self) -> float:
        """Linearised switching resistance, ohms."""
        return SQUARE_DEVICE_RESISTANCE[self.device_type] / self.aspect_ratio

    def gate_capacitance(self, capacitance_per_area: float) -> float:
        """Gate input capacitance given the process thin-oxide areal capacitance."""
        require_positive("capacitance_per_area", capacitance_per_area)
        return capacitance_per_area * self.width * self.length

    def diffusion_capacitance(self, capacitance_per_area: float, extension: float) -> float:
        """Source/drain diffusion capacitance for a diffusion strip ``extension`` long."""
        require_positive("capacitance_per_area", capacitance_per_area)
        require_positive("extension", extension)
        return capacitance_per_area * self.width * extension


def effective_resistance(device_type: DeviceType, width: float, length: float) -> float:
    """Functional wrapper around :attr:`MOSDevice.effective_resistance`."""
    return MOSDevice(device_type, width, length).effective_resistance
