"""Linearised driver models.

A :class:`DriverModel` is the two numbers the RC-tree analysis needs about
whatever is driving the net: the effective source resistance of the switching
device and the parasitic capacitance sitting directly on its output (drain
diffusion, contact cuts, local wiring).  The paper's Section V uses a
"strong superbuffer" with 380 ohm and 0.04 pF; that exact model ships as
:data:`PAPER_SUPERBUFFER`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mos.devices import DeviceType, MOSDevice
from repro.utils.checks import require_non_negative, require_positive


@dataclass(frozen=True)
class DriverModel:
    """A driver reduced to source resistance + output capacitance.

    Attributes
    ----------
    name:
        Instance or cell name (for reports).
    effective_resistance:
        Linearised pull-up (or pull-down) resistance, ohms.
    output_capacitance:
        Parasitic capacitance at the driver output, farads.
    """

    name: str
    effective_resistance: float
    output_capacitance: float = 0.0

    def __post_init__(self):
        require_positive("effective_resistance", self.effective_resistance)
        require_non_negative("output_capacitance", self.output_capacitance)

    def scaled(self, factor: float) -> "DriverModel":
        """Return a driver ``factor`` times stronger (R / factor, C * factor).

        Upsizing a driver lowers its resistance but grows its self-loading in
        the same proportion -- the classic sizing trade-off explored by the
        driver-sizing example.
        """
        require_positive("factor", factor)
        return DriverModel(
            name=f"{self.name}_x{factor:g}",
            effective_resistance=self.effective_resistance / factor,
            output_capacitance=self.output_capacitance * factor,
        )


#: The paper's Section V PLA driver: 380 ohm source resistance, 0.04 pF output load.
PAPER_SUPERBUFFER = DriverModel(
    name="paper-superbuffer",
    effective_resistance=380.0,
    output_capacitance=0.04e-12,
)


def inverter_driver(
    name: str,
    pullup: MOSDevice,
    *,
    output_capacitance: float = 0.0,
) -> DriverModel:
    """Driver model of a single NMOS inverter, limited by its pull-up device.

    The paper analyses the rising transition, where the (weak) pull-up is the
    only path charging the net -- hence the pull-up's effective resistance is
    the driver resistance.
    """
    return DriverModel(
        name=name,
        effective_resistance=pullup.effective_resistance,
        output_capacitance=output_capacitance,
    )


def superbuffer_driver(
    name: str,
    output_device: MOSDevice,
    *,
    output_capacitance: float = 0.0,
) -> DriverModel:
    """Driver model of a superbuffer (a buffered inverter pair).

    In a superbuffer the output stage is driven near its full gate voltage
    for the whole transition, so it is roughly twice as effective as a plain
    depletion-load pull-up of the same size; the conventional estimate halves
    the effective resistance, which is what this constructor applies.
    """
    return DriverModel(
        name=name,
        effective_resistance=output_device.effective_resistance / 2.0,
        output_capacitance=output_capacitance,
    )


def paper_pla_driver() -> DriverModel:
    """The Section V driver (alias for :data:`PAPER_SUPERBUFFER`)."""
    return PAPER_SUPERBUFFER
