"""MOS driver and device models.

The paper replaces the switching pull-up of an NMOS inverter by "a linear
resistor", and its Section V PLA study assumes "a strong superbuffer driver"
with 380 ohm of source resistance and 0.04 pF of output capacitance.  This
subpackage provides those linearised driver models plus a simple square-law
MOSFET effective-resistance estimator so examples can derive drive strengths
from transistor geometry instead of hard-coding ohms.
"""

from repro.mos.devices import MOSDevice, DeviceType, effective_resistance
from repro.mos.drivers import (
    DriverModel,
    inverter_driver,
    superbuffer_driver,
    PAPER_SUPERBUFFER,
)

__all__ = [
    "MOSDevice",
    "DeviceType",
    "effective_resistance",
    "DriverModel",
    "inverter_driver",
    "superbuffer_driver",
    "PAPER_SUPERBUFFER",
]
