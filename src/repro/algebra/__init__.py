"""The constructive two-port algebra of Section IV.

Instead of summing over every capacitor for every output (quadratic in the
network size), the paper represents each partially-constructed network by the
five numbers ``(C_T, T_P, R_22, T_D2, T_R2 R_22)`` and gives composition
rules for a single primitive element and two wiring functions:

* ``URC R C`` -- a uniform RC line (a lumped resistor when ``C = 0``, a
  lumped capacitor when ``R = 0``);
* ``A WC B`` -- cascade: port 2 of ``A`` drives port 1 of ``B``;
* ``WB A`` -- fold ``A`` into a side branch (its port 2 is abandoned).

The whole tree is then an algebraic expression -- the paper's eq. (18) -- and
evaluating the expression costs time linear in the number of elements.

This subpackage provides the :class:`~repro.algebra.twoport.TwoPort` value
type and composition rules (:mod:`repro.algebra.wiring`), a parser for the
paper's textual expression notation (:mod:`repro.algebra.expression`), and a
compiler between :class:`~repro.core.tree.RCTree` objects and expressions /
two-ports (:mod:`repro.algebra.compiler`).
"""

from repro.algebra.twoport import TwoPort
from repro.algebra.wiring import urc, resistor, capacitor, wb, wc, cascade_chain
from repro.algebra.expression import (
    Expression,
    URCExpr,
    WBExpr,
    WCExpr,
    parse_expression,
)
from repro.algebra.compiler import (
    tree_to_twoport,
    tree_to_expression,
    expression_to_tree,
    twoport_times,
)

__all__ = [
    "TwoPort",
    "urc",
    "resistor",
    "capacitor",
    "wb",
    "wc",
    "cascade_chain",
    "Expression",
    "URCExpr",
    "WBExpr",
    "WCExpr",
    "parse_expression",
    "tree_to_twoport",
    "tree_to_expression",
    "expression_to_tree",
    "twoport_times",
]
