"""Compile between :class:`RCTree` objects, expressions, and two-port summaries.

Three directions are supported:

* :func:`tree_to_twoport` -- evaluate a tree straight to its five-number
  summary for a chosen output, in time linear in the number of elements
  (the paper's Section IV algorithm, without building an intermediate AST);
* :func:`tree_to_expression` -- emit the paper's textual expression (eq. 18
  style) for a chosen output;
* :func:`expression_to_tree` -- elaborate an expression (text or AST) into a
  full tree.

All traversals are iterative, so very deep trees (long RC ladders, PLA lines
with hundreds of minterms) do not hit Python's recursion limit.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from repro.algebra.expression import Expression, URCExpr, WBExpr, WCExpr, parse_expression
from repro.algebra.twoport import TwoPort
from repro.algebra.wiring import cascade_chain, urc, wb, wc
from repro.core.exceptions import UnknownNodeError
from repro.core.timeconstants import CharacteristicTimes
from repro.core.tree import RCTree


def _branch_summaries(tree: RCTree) -> Dict[str, Tuple[float, float]]:
    """For every node, the ``(C_T, T_P)`` of its subtree measured from the node.

    Computed bottom-up in one postorder pass.  The subtree of ``n`` excludes
    the edge *into* ``n`` (that edge belongs to the parent's view).
    """
    summaries: Dict[str, Tuple[float, float]] = {}
    for name in tree.postorder():
        ct = tree.node_capacitance(name)
        tp = 0.0
        for child in tree.children_of(name):
            edge = tree.parent_edge(child)
            child_ct, child_tp = summaries[child]
            edge_tp = edge.resistance * edge.capacitance / 2.0
            # (edge WC subtree(child)) seen from `name`:
            ct += edge.capacitance + child_ct
            tp += edge_tp + child_tp + edge.resistance * child_ct
        summaries[name] = (ct, tp)
    return summaries


def tree_to_twoport(tree: RCTree, output: str) -> TwoPort:
    """Evaluate ``tree`` to the two-port summary whose port 2 is ``output``.

    Equivalent to parsing/evaluating the tree's expression but without
    constructing the AST; runs in O(N).
    """
    if output not in tree:
        raise UnknownNodeError(output)
    summaries = _branch_summaries(tree)
    path = tree.path_nodes(output)
    on_path = set(path)

    parts = []
    for index, name in enumerate(path):
        cap = tree.node_capacitance(name)
        if cap:
            parts.append(urc(0.0, cap))
        for child in tree.children_of(name):
            if child in on_path:
                continue
            edge = tree.parent_edge(child)
            child_ct, child_tp = summaries[child]
            branch = wc(urc(edge.resistance, edge.capacitance), TwoPort(child_ct, child_tp, 0.0, 0.0, 0.0))
            parts.append(wb(branch))
        if index + 1 < len(path):
            edge = tree.parent_edge(path[index + 1])
            parts.append(urc(edge.resistance, edge.capacitance))
    return cascade_chain(parts)


def twoport_times(tree: RCTree, output: str) -> CharacteristicTimes:
    """Characteristic times of ``output`` computed through the two-port algebra.

    Numerically identical (to rounding) to
    :func:`repro.core.timeconstants.characteristic_times`; the property-based
    tests assert the agreement on random trees.
    """
    return tree_to_twoport(tree, output).characteristic_times(output)


def _subtree_expression(tree: RCTree, node: str) -> Expression:
    """Expression for the subtree rooted at ``node`` (iterative postorder)."""
    expressions: Dict[str, Expression] = {}
    for name in tree.postorder(node):
        parts = []
        cap = tree.node_capacitance(name)
        if cap:
            parts.append(URCExpr(0.0, cap))
        for child in tree.children_of(name):
            edge = tree.parent_edge(child)
            inner = WCExpr(URCExpr(edge.resistance, edge.capacitance), expressions[child])
            parts.append(WBExpr(inner))
        if not parts:
            expressions[name] = URCExpr(0.0, 0.0)
        else:
            expr = parts[-1]
            for part in reversed(parts[:-1]):
                expr = WCExpr(part, expr)
            expressions[name] = expr
    return expressions[node]


def tree_to_expression(tree: RCTree, output: str) -> Expression:
    """Emit the paper-style expression describing ``tree`` as seen from ``output``.

    The cascade spine follows the input-to-``output`` path; everything hanging
    off the path becomes a ``WB`` side branch, exactly as in eq. (18).
    """
    if output not in tree:
        raise UnknownNodeError(output)
    path = tree.path_nodes(output)
    on_path = set(path)

    parts = []
    for index, name in enumerate(path):
        cap = tree.node_capacitance(name)
        if cap:
            parts.append(URCExpr(0.0, cap))
        for child in tree.children_of(name):
            if child in on_path:
                continue
            edge = tree.parent_edge(child)
            branch = WCExpr(URCExpr(edge.resistance, edge.capacitance), _subtree_expression(tree, child))
            parts.append(WBExpr(branch))
        if index + 1 < len(path):
            edge = tree.parent_edge(path[index + 1])
            parts.append(URCExpr(edge.resistance, edge.capacitance))
    if not parts:
        return URCExpr(0.0, 0.0)
    expr = parts[-1]
    for part in reversed(parts[:-1]):
        expr = WCExpr(part, expr)
    return expr


def expression_to_tree(
    expression: Union[str, Expression], *, root: str = "in", output: str = "out"
) -> RCTree:
    """Elaborate an expression (text or AST) into a full :class:`RCTree`."""
    if isinstance(expression, str):
        expression = parse_expression(expression)
    return expression.to_tree(root, output=output)
