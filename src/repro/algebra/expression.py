"""Parser and AST for the paper's textual tree-expression notation.

Section IV denotes the topology of any RC tree by an expression over the
primitive ``URC R C`` and the wiring functions ``WB`` and ``WC``; the worked
example (eq. 18) is::

    (URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9

This module parses exactly that syntax (plus optional engineering-notation
numbers such as ``1.5k`` or ``10p``) into an AST of :class:`URCExpr`,
:class:`WBExpr` and :class:`WCExpr` nodes.  Following the APL right-to-left
evaluation order, ``WC`` is right-associative and ``WB`` applies to everything
to its right inside the current parenthesis group.

The AST can be

* evaluated to a :class:`~repro.algebra.twoport.TwoPort` (:meth:`Expression.to_twoport`),
* elaborated into a full :class:`~repro.core.tree.RCTree`
  (:meth:`Expression.to_tree`), or
* pretty-printed back to the paper's notation (:meth:`Expression.to_text`).
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.algebra.twoport import TwoPort
from repro.algebra.wiring import urc as urc_twoport
from repro.algebra.wiring import wb as wb_twoport
from repro.algebra.wiring import wc as wc_twoport
from repro.core.exceptions import ParseError
from repro.core.tree import RCTree
from repro.utils.units import parse_engineering


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
class Expression:
    """Base class for expression AST nodes."""

    def to_twoport(self) -> TwoPort:
        """Evaluate the expression to its five-number two-port summary."""
        raise NotImplementedError

    def to_text(self) -> str:
        """Render back to the paper's textual notation."""
        raise NotImplementedError

    def to_tree(self, root: str = "in", *, output: str = "out") -> RCTree:
        """Elaborate the expression into a full :class:`RCTree`.

        The network's port 2 (the cascade's far end) is renamed ``output``
        and marked as the tree's output.
        """
        tree = RCTree(root)
        counter = itertools.count(1)
        port2 = self._build(tree, root, counter)
        if port2 != root:
            _rename_leaf(tree, port2, output)
            tree.mark_output(output)
        else:
            tree.mark_output(root)
        return tree

    def _build(self, tree: RCTree, attach: str, counter) -> str:
        """Attach this subnetwork at node ``attach``; return its port-2 node name."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def _rename_leaf(tree: RCTree, old: str, new: str) -> None:
    """Rename a node (used to give the final cascade node a friendly name)."""
    if old == new or new in tree:
        return
    # RCTree has no public rename; rebuild is overkill for a single leaf, so
    # reach into the internals deliberately (documented, single place).
    node = tree._nodes.pop(old)
    node.name = new
    tree._nodes[new] = node
    tree._order[tree._order.index(old)] = new
    tree._children[new] = tree._children.pop(old)
    for child in tree._children[new]:
        edge = tree._parent[child]
        tree._parent[child] = type(edge)(new, child, edge.element)
    if old in tree._parent:
        edge = tree._parent.pop(old)
        tree._parent[new] = type(edge)(edge.parent, new, edge.element)
        siblings = tree._children[edge.parent]
        siblings[siblings.index(old)] = new


@dataclass
class URCExpr(Expression):
    """The primitive ``URC R C``."""

    resistance: float
    capacitance: float

    def to_twoport(self) -> TwoPort:
        return urc_twoport(self.resistance, self.capacitance)

    def to_text(self) -> str:
        return f"URC {self.resistance:g} {self.capacitance:g}"

    def _build(self, tree: RCTree, attach: str, counter) -> str:
        if self.resistance == 0.0:
            if self.capacitance:
                tree.add_capacitor(attach, self.capacitance)
            return attach
        node = f"n{next(counter)}"
        while node in tree:
            node = f"n{next(counter)}"
        if self.capacitance == 0.0:
            tree.add_resistor(attach, node, self.resistance)
        else:
            tree.add_line(attach, node, self.resistance, self.capacitance)
        return node


@dataclass
class WBExpr(Expression):
    """A side branch: ``WB A``."""

    operand: Expression

    def to_twoport(self) -> TwoPort:
        return wb_twoport(self.operand.to_twoport())

    def to_text(self) -> str:
        return f"WB ({self.operand.to_text()})"

    def _build(self, tree: RCTree, attach: str, counter) -> str:
        self.operand._build(tree, attach, counter)
        return attach


@dataclass
class WCExpr(Expression):
    """A cascade: ``A WC B``."""

    left: Expression
    right: Expression

    def to_twoport(self) -> TwoPort:
        return wc_twoport(self.left.to_twoport(), self.right.to_twoport())

    def to_text(self) -> str:
        return f"({self.left.to_text()}) WC ({self.right.to_text()})"

    def _build(self, tree: RCTree, attach: str, counter) -> str:
        middle = self.left._build(tree, attach, counter)
        return self.right._build(tree, middle, counter)


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
_TOKEN_PATTERN = re.compile(
    r"""
    (?P<lparen>\() |
    (?P<rparen>\)) |
    (?P<word>[A-Za-z][A-Za-z0-9_.]*) |
    (?P<number>[-+]?\d+(\.\d*)?([eE][-+]?\d+)?[A-Za-z]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace() or char == ",":
            index += 1
            continue
        match = _TOKEN_PATTERN.match(text, index)
        if not match:
            raise ParseError(f"unexpected character {char!r}", column=index + 1)
        kind = match.lastgroup
        tokens.append(_Token(kind, match.group(), index))
        index = match.end()
    return tokens


# ----------------------------------------------------------------------
# Recursive-descent parser
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: List[_Token], source: str):
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        self._index += 1
        return token

    def _expect_number(self) -> float:
        token = self._peek()
        if token is None or token.kind not in ("number", "word"):
            raise ParseError(
                "expected a number", column=(token.position + 1) if token else None
            )
        self._advance()
        try:
            return parse_engineering(token.text)
        except ValueError as exc:
            raise ParseError(f"invalid number {token.text!r}", column=token.position + 1) from exc

    def parse(self) -> Expression:
        expression = self._parse_expr()
        leftover = self._peek()
        if leftover is not None:
            raise ParseError(
                f"unexpected trailing token {leftover.text!r}", column=leftover.position + 1
            )
        return expression

    def _parse_expr(self) -> Expression:
        left = self._parse_term()
        token = self._peek()
        if token is not None and token.kind == "word" and token.text.upper() == "WC":
            self._advance()
            right = self._parse_expr()  # right-associative, matching APL
            return WCExpr(left, right)
        return left

    def _parse_term(self) -> Expression:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        if token.kind == "lparen":
            self._advance()
            inner = self._parse_expr()
            closing = self._peek()
            if closing is None or closing.kind != "rparen":
                raise ParseError("missing closing parenthesis", column=token.position + 1)
            self._advance()
            return inner
        if token.kind == "word":
            keyword = token.text.upper()
            if keyword == "WB":
                self._advance()
                operand = self._parse_expr()  # WB grabs everything to its right
                return WBExpr(operand)
            if keyword == "URC":
                self._advance()
                resistance = self._expect_number()
                capacitance = self._expect_number()
                return URCExpr(resistance, capacitance)
            if keyword == "R":
                self._advance()
                return URCExpr(self._expect_number(), 0.0)
            if keyword == "C":
                self._advance()
                return URCExpr(0.0, self._expect_number())
            raise ParseError(f"unknown keyword {token.text!r}", column=token.position + 1)
        raise ParseError(f"unexpected token {token.text!r}", column=token.position + 1)


def parse_expression(text: str) -> Expression:
    """Parse the paper's expression notation into an :class:`Expression` AST.

    >>> expr = parse_expression("(URC 15 0) WC (URC 0 2) WC URC 3 4")
    >>> expr.to_twoport().r22
    18.0

    Besides ``URC R C``, the shorthands ``R <value>`` and ``C <value>`` are
    accepted, and numbers may use engineering suffixes (``180``, ``0.01p``,
    ``1.5k``).
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty expression")
    return _Parser(tokens, text).parse()


def figure7_expression() -> Expression:
    """The paper's eq. (18) expression for the Figure 7 network."""
    return parse_expression(
        "(URC 15 0) WC (URC 0 2) WC (WB (URC 8 0) WC URC 0 7) WC (URC 3 4) WC URC 0 9"
    )
