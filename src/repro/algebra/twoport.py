"""The five-number two-port summary used by the constructive algebra.

The paper (Section IV) observes that five quantities of a partially built
network are enough to continue the construction, independent of how the
subnetwork will later be wired:

1. ``C_T``   -- total capacitance of the subnetwork;
2. ``T_P``   -- its ``sum R_kk C_k`` (measured from its port 1);
3. ``R_22``  -- resistance from port 1 to port 2;
4. ``T_D2``  -- Elmore delay seen at port 2;
5. ``T_R2 R_22`` -- the product carried instead of ``T_R2`` itself, because
   the cascade rule for it is polynomial in the other quantities (the paper's
   APL code does the same).

The APL vector ``CT, TP, R22, TD2, TR2*R22`` maps one-to-one onto the fields
of :class:`TwoPort`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ElementValueError
from repro.core.timeconstants import CharacteristicTimes
from repro.utils.checks import require_non_negative


@dataclass(frozen=True)
class TwoPort:
    """Immutable five-number summary of an RC-tree subnetwork.

    Attributes
    ----------
    ct:
        Total capacitance ``C_T`` (farads).
    tp:
        ``T_P`` of the subnetwork, measured from its input port (seconds).
    r22:
        Port-1-to-port-2 resistance ``R_22`` (ohms).
    td2:
        Elmore delay ``T_D2`` at port 2 (seconds).
    tr2_r22:
        The product ``T_R2 * R_22`` (seconds * ohms).
    """

    ct: float
    tp: float
    r22: float
    td2: float
    tr2_r22: float

    def __post_init__(self):
        for name in ("ct", "tp", "r22", "td2", "tr2_r22"):
            value = getattr(self, name)
            try:
                require_non_negative(name, value)
            except ValueError as exc:
                raise ElementValueError(str(exc)) from exc

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def tr2(self) -> float:
        """``T_R2`` itself; zero when the output sits directly at the input."""
        return self.tr2_r22 / self.r22 if self.r22 > 0.0 else 0.0

    @property
    def tde(self) -> float:
        """Alias: the Elmore delay at port 2."""
        return self.td2

    def as_vector(self) -> tuple:
        """The APL-ordered tuple ``(C_T, T_P, R_22, T_D2, T_R2 R_22)``."""
        return (self.ct, self.tp, self.r22, self.td2, self.tr2_r22)

    @classmethod
    def from_vector(cls, vector) -> "TwoPort":
        """Build from the APL-ordered 5-tuple."""
        ct, tp, r22, td2, tr2_r22 = vector
        return cls(ct=ct, tp=tp, r22=r22, td2=td2, tr2_r22=tr2_r22)

    def characteristic_times(self, output: str = "port2") -> CharacteristicTimes:
        """Convert to :class:`~repro.core.timeconstants.CharacteristicTimes`.

        The resulting record can be fed straight into the bound functions of
        :mod:`repro.core.bounds` -- this is exactly what the paper's
        ``TMIN`` / ``TMAX`` / ``VMIN`` / ``VMAX`` functions do with the vector.
        """
        return CharacteristicTimes(
            output=output,
            tp=self.tp,
            tde=self.td2,
            tre=self.tr2,
            ree=self.r22,
            total_capacitance=self.ct,
        )

    # ------------------------------------------------------------------
    # Composition (delegates to repro.algebra.wiring, provided as methods
    # for a fluent style: ``urc(15, 0).wc(urc(0, 2)).wc(...)``).
    # ------------------------------------------------------------------
    def wc(self, other: "TwoPort") -> "TwoPort":
        """Cascade ``other`` after this network (this network's port 2 drives it)."""
        from repro.algebra.wiring import wc

        return wc(self, other)

    def wb(self) -> "TwoPort":
        """Fold this network into a side branch (abandon its port 2)."""
        from repro.algebra.wiring import wb

        return wb(self)

    def satisfies_ordering(self) -> bool:
        """True when the ordering invariant ``T_R2 <= T_D2 <= T_P`` holds (eq. 7)."""
        return self.tr2 <= self.td2 * (1 + 1e-12) and self.td2 <= self.tp * (1 + 1e-12)
