"""The element and wiring functions of the paper's Figure 8.

Three constructors produce and combine :class:`~repro.algebra.twoport.TwoPort`
summaries:

* :func:`urc` -- the single primitive: a uniform RC line of total resistance
  ``R`` and capacitance ``C``.  Its two-port vector is
  ``(C, RC/2, R, RC/2, R^2 C / 3)`` (the paper's ``URC`` listing).
* :func:`wc` -- the cascade ``A WC B`` (port 2 of ``A`` drives port 1 of
  ``B``), implementing eqs. (19)-(23)::

      C_T  = C_TA + C_TB                                              (19)
      T_P  = T_PA + T_PB + R_22A C_TB                                  (20)
      R_22 = R_22A + R_22B                                             (21)
      T_D2 = T_D2A + T_D2B + R_22A C_TB                                (22)
      T_R2 R_22 = T_R2A R_22A + T_R2B R_22B + 2 R_22A T_D2B
                  + R_22A^2 C_TB                                       (23)

* :func:`wb` -- fold ``A`` into a side branch, implementing eqs. (24)-(28):
  keep ``C_T`` and ``T_P``, zero the port-2 quantities.

Because each composition costs O(1), evaluating a whole tree expression costs
time linear in the number of elements -- the paper's headline algorithmic
claim, benchmarked in ``benchmarks/bench_scaling_linear_vs_quadratic.py``.
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.twoport import TwoPort
from repro.core.elements import Capacitor, Resistor, URCLine
from repro.utils.checks import require_non_negative


def urc(resistance: float, capacitance: float) -> TwoPort:
    """The primitive element ``URC R C`` as a two-port summary.

    ``urc(R, 0)`` is a lumped resistor and ``urc(0, C)`` a lumped capacitor,
    exactly as in the paper.
    """
    resistance = require_non_negative("resistance", resistance)
    capacitance = require_non_negative("capacitance", capacitance)
    return TwoPort(
        ct=capacitance,
        tp=resistance * capacitance / 2.0,
        r22=resistance,
        td2=resistance * capacitance / 2.0,
        tr2_r22=resistance * resistance * capacitance / 3.0,
    )


def resistor(resistance: float) -> TwoPort:
    """Convenience wrapper: a lumped series resistor, ``urc(R, 0)``."""
    return urc(resistance, 0.0)


def capacitor(capacitance: float) -> TwoPort:
    """Convenience wrapper: a lumped grounded capacitor, ``urc(0, C)``."""
    return urc(0.0, capacitance)


def from_element(element) -> TwoPort:
    """Two-port summary of a core element object (Resistor / Capacitor / URCLine)."""
    if isinstance(element, Resistor):
        return resistor(element.resistance)
    if isinstance(element, Capacitor):
        return capacitor(element.capacitance)
    if isinstance(element, URCLine):
        return urc(element.resistance, element.capacitance)
    raise TypeError(f"unsupported element {element!r}")


def wc(a: TwoPort, b: TwoPort) -> TwoPort:
    """Cascade ``A WC B``: port 2 of ``a`` drives port 1 of ``b`` (eqs. 19-23)."""
    return TwoPort(
        ct=a.ct + b.ct,
        tp=a.tp + b.tp + a.r22 * b.ct,
        r22=a.r22 + b.r22,
        td2=a.td2 + b.td2 + a.r22 * b.ct,
        tr2_r22=(
            a.tr2_r22
            + b.tr2_r22
            + 2.0 * a.r22 * b.td2
            + a.r22 * a.r22 * b.ct
        ),
    )


def wb(a: TwoPort) -> TwoPort:
    """Fold ``a`` into a side branch: ``WB A`` (eqs. 24-28)."""
    return TwoPort(ct=a.ct, tp=a.tp, r22=0.0, td2=0.0, tr2_r22=0.0)


def cascade_chain(parts: Iterable[TwoPort]) -> TwoPort:
    """Cascade a sequence of two-ports left to right.

    ``cascade_chain([a, b, c])`` equals ``a WC (b WC c)``; since ``WC`` is
    associative in all five components this is also ``(a WC b) WC c``.
    An empty sequence yields the empty network (all zeros).
    """
    result = None
    for part in parts:
        result = part if result is None else wc(result, part)
    if result is None:
        return TwoPort(ct=0.0, tp=0.0, r22=0.0, td2=0.0, tr2_r22=0.0)
    return result
