"""SPICE-subset netlist interchange.

Real validation flows hand RC parasitics to a circuit simulator; this package
writes RC trees as standard SPICE decks (:mod:`repro.spicefmt.writer`) and
reads the R/C/V subset of SPICE back into :class:`~repro.core.tree.RCTree`
objects (:mod:`repro.spicefmt.reader`), so the library's results can be
cross-checked against any external simulator and extracted decks from other
tools can be analysed here.
"""

from repro.spicefmt.writer import tree_to_spice, write_spice
from repro.spicefmt.reader import spice_to_tree, read_spice, SpiceDeck, parse_spice

__all__ = [
    "tree_to_spice",
    "write_spice",
    "spice_to_tree",
    "read_spice",
    "parse_spice",
    "SpiceDeck",
]
