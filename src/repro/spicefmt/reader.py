"""Read the R/C/V subset of SPICE back into RC trees.

Supported cards:

* ``R<name> n1 n2 value`` -- series resistor;
* ``C<name> n1 n2 value`` -- capacitor (one terminal must be ground);
* ``V<name> n1 n2 ...``   -- the input source; its non-ground terminal
  becomes the tree input (the waveform definition is ignored, since the
  analysis assumes a step);
* ``*`` comments, ``.title``, ``.tran``, ``.print``, ``.end`` (analysis cards
  are recorded but otherwise ignored), ``+`` continuation lines.

Values accept the usual SPICE engineering suffixes (``k``, ``meg``, ``u``,
``n``, ``p``, ``f``).  Ground may be written ``0`` or ``gnd`` (any case).

The resistor graph must form a tree rooted at the source node -- exactly the
network class the paper analyses.  Resistor loops, floating sections and
coupling capacitors (between two non-ground nodes) are reported as errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.exceptions import ParseError, TopologyError
from repro.core.tree import RCTree
from repro.utils.units import parse_engineering

_GROUND_NAMES = {"0", "gnd", "vss"}


@dataclass
class SpiceDeck:
    """Parsed form of a SPICE deck (only the parts the reader understands)."""

    title: str = ""
    resistors: List[Tuple[str, str, str, float]] = field(default_factory=list)
    capacitors: List[Tuple[str, str, str, float]] = field(default_factory=list)
    sources: List[Tuple[str, str, str]] = field(default_factory=list)
    analyses: List[str] = field(default_factory=list)
    prints: List[str] = field(default_factory=list)

    @property
    def source_node(self) -> Optional[str]:
        """Non-ground terminal of the first voltage source, if any."""
        for _, positive, negative in self.sources:
            if positive.lower() not in _GROUND_NAMES:
                return positive
            if negative.lower() not in _GROUND_NAMES:
                return negative
        return None


def _join_continuations(text: str) -> List[Tuple[int, str]]:
    """Resolve ``+`` continuation lines; return (line number, logical line)."""
    logical: List[Tuple[int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.lstrip().startswith("+"):
            if not logical:
                raise ParseError("continuation line with nothing to continue", line=number)
            previous_number, previous = logical[-1]
            logical[-1] = (previous_number, previous + " " + line.lstrip()[1:].strip())
        else:
            logical.append((number, line))
    return logical


def parse_spice(text: str) -> SpiceDeck:
    """Parse a SPICE deck into a :class:`SpiceDeck` record."""
    deck = SpiceDeck()
    lines = _join_continuations(text)
    for index, (number, line) in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith("*"):
            if index == 0 and not deck.title:
                deck.title = stripped.lstrip("* ").strip()
            continue
        lowered = stripped.lower()
        if lowered.startswith("."):
            if lowered.startswith(".title"):
                deck.title = stripped[6:].strip()
            elif lowered.startswith(".tran") or lowered.startswith(".op") or lowered.startswith(".ac"):
                deck.analyses.append(stripped)
            elif lowered.startswith(".print") or lowered.startswith(".plot") or lowered.startswith(".probe"):
                deck.prints.append(stripped)
            elif lowered.startswith(".end"):
                break
            # Other dot-cards (.option, .include, ...) are ignored.
            continue
        fields = stripped.split()
        card = fields[0]
        kind = card[0].lower()
        if kind == "r":
            if len(fields) < 4:
                raise ParseError(f"malformed resistor card {stripped!r}", line=number)
            deck.resistors.append((card, fields[1], fields[2], parse_engineering(fields[3])))
        elif kind == "c":
            if len(fields) < 4:
                raise ParseError(f"malformed capacitor card {stripped!r}", line=number)
            deck.capacitors.append((card, fields[1], fields[2], parse_engineering(fields[3])))
        elif kind == "v":
            if len(fields) < 3:
                raise ParseError(f"malformed source card {stripped!r}", line=number)
            deck.sources.append((card, fields[1], fields[2]))
        elif kind in ("i", "l", "k", "e", "f", "g", "h", "m", "q", "d", "x", "u"):
            raise ParseError(
                f"element {card!r} is not part of the RC-tree subset this reader supports",
                line=number,
            )
        else:
            raise ParseError(f"unrecognised card {stripped!r}", line=number)
    return deck


def _is_ground(node: str) -> bool:
    return node.lower() in _GROUND_NAMES


def spice_to_tree(text: str, *, input_node: Optional[str] = None, root_name: str = "in") -> RCTree:
    """Parse a SPICE deck and rebuild the RC tree it describes.

    Parameters
    ----------
    input_node:
        The driven node.  Defaults to the non-ground terminal of the first
        voltage source in the deck.
    root_name:
        Name given to the tree's input node (the SPICE node keeps its own
        name when this is ``None``).
    """
    deck = parse_spice(text)
    driven = input_node or deck.source_node
    if driven is None:
        raise ParseError(
            "the deck has no voltage source and no input_node was given; "
            "cannot tell where the tree is driven from"
        )

    # Adjacency over resistor cards.
    adjacency: Dict[str, List[Tuple[str, float, str]]] = {}
    for name, n1, n2, value in deck.resistors:
        if _is_ground(n1) or _is_ground(n2):
            raise TopologyError(
                f"resistor {name} connects to ground; an RC tree has no grounded resistors"
            )
        adjacency.setdefault(n1, []).append((n2, value, name))
        adjacency.setdefault(n2, []).append((n1, value, name))

    if driven not in adjacency and not any(
        _is_ground(n1) != _is_ground(n2) and driven in (n1, n2)
        for _, n1, n2, _ in deck.capacitors
    ):
        raise TopologyError(f"input node {driven!r} does not appear in the deck")

    rename = {driven: root_name} if root_name else {}

    def tree_name(node: str) -> str:
        return rename.get(node, node)

    tree = RCTree(tree_name(driven))
    visited = {driven}
    queue = [driven]
    used_resistors = set()
    while queue:
        current = queue.pop(0)
        for neighbour, value, name in adjacency.get(current, []):
            if name in used_resistors:
                continue
            if neighbour in visited:
                raise TopologyError(
                    f"resistor {name} closes a loop at node {neighbour!r}; "
                    "the network is not an RC tree"
                )
            used_resistors.add(name)
            visited.add(neighbour)
            tree.add_resistor(tree_name(current), tree_name(neighbour), value)
            queue.append(neighbour)

    unreached = set(adjacency) - visited
    if unreached:
        raise TopologyError(
            f"nodes {sorted(unreached)!r} are not connected to the input {driven!r}"
        )

    for name, n1, n2, value in deck.capacitors:
        grounded_terminal = None
        if _is_ground(n2) and not _is_ground(n1):
            grounded_terminal = n1
        elif _is_ground(n1) and not _is_ground(n2):
            grounded_terminal = n2
        if grounded_terminal is None:
            raise TopologyError(
                f"capacitor {name} couples two signal nodes; only grounded capacitors "
                "appear in an RC tree"
            )
        if grounded_terminal not in visited:
            raise TopologyError(
                f"capacitor {name} hangs on node {grounded_terminal!r}, which is not "
                "connected to the input through resistors"
            )
        tree.add_capacitor(tree_name(grounded_terminal), value)

    # Mark leaves as outputs; .print cards, when present, take priority.
    printed_nodes = []
    for card in deck.prints:
        for token in card.replace("(", " ").replace(")", " ").split():
            if token in visited:
                printed_nodes.append(token)
    if printed_nodes:
        for node in printed_nodes:
            tree.mark_output(tree_name(node))
    else:
        for leaf in tree.leaves():
            tree.mark_output(leaf)
    return tree


def read_spice(path, **kwargs) -> RCTree:
    """Read a SPICE file from ``path`` and rebuild its RC tree."""
    with open(path, "r", encoding="utf-8") as handle:
        return spice_to_tree(handle.read(), **kwargs)
