#!/usr/bin/env python3
"""Docs link-check: every module, file anchor and link in the docs must exist.

Scans ``README.md`` and every ``docs/*.md`` for

* dotted module references (``repro.core.bounds``, possibly followed by an
  attribute) -- the module part must import and the trailing attribute, when
  present, must resolve;
* ``path:line`` anchors (``src/repro/core/bounds.py:137``) -- the file must
  exist and contain at least that many lines;
* relative markdown links (``[text](docs/paper_map.md)``) -- the target file
  must exist.

Exits non-zero with a report of every broken reference.  Run from the
repository root (CI does); also exercised as ``tests/docs/test_docs_links.py``.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: repro.foo.bar or repro.foo.bar.attr (the attr is resolved when present).
MODULE_REF = re.compile(r"\brepro(?:\.\w+)+")
#: src/... or tests/... or benchmarks/... path, optionally with :line.
FILE_ANCHOR = re.compile(
    r"\b((?:src|tests|benchmarks|docs|examples|tools)/[\w./-]+?\.(?:py|md|sp|spef))(?::(\d+))?\b"
)
#: [text](relative/target) markdown links (external URLs are skipped).
MARKDOWN_LINK = re.compile(r"\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_module_reference(reference: str) -> str:
    """Empty string when ``reference`` resolves, else a failure description."""
    parts = reference.split(".")
    # Try the longest importable module prefix, then getattr the rest.
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        obj = module
        for attribute in parts[cut:]:
            if not hasattr(obj, attribute):
                return f"{reference}: {module_name!r} imports but has no attribute {attribute!r}"
            obj = getattr(obj, attribute)
        return ""
    return f"{reference}: no importable prefix"


def check_file_anchor(path: str, line: str) -> str:
    target = REPO_ROOT / path
    if not target.exists():
        return f"{path}: file does not exist"
    if line:
        count = len(target.read_text(encoding="utf-8").splitlines())
        if int(line) > count:
            return f"{path}:{line}: file has only {count} lines"
    return ""


def check_markdown_link(source: Path, link: str) -> str:
    if link.startswith(("http://", "https://", "mailto:")):
        return ""
    target = (source.parent / link).resolve()
    if not target.exists():
        return f"{source.name} -> {link}: target does not exist"
    return ""


def collect_failures() -> List[Tuple[Path, str]]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures: List[Tuple[Path, str]] = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        seen = set()
        for match in MODULE_REF.finditer(text):
            reference = match.group(0).rstrip(".")
            if reference in seen:
                continue
            seen.add(reference)
            problem = check_module_reference(reference)
            if problem:
                failures.append((doc, problem))
        for match in FILE_ANCHOR.finditer(text):
            key = match.group(0)
            if key in seen:
                continue
            seen.add(key)
            problem = check_file_anchor(match.group(1), match.group(2))
            if problem:
                failures.append((doc, problem))
        for match in MARKDOWN_LINK.finditer(text):
            problem = check_markdown_link(doc, match.group(1))
            if problem:
                failures.append((doc, problem))
    return failures


def main() -> int:
    failures = collect_failures()
    docs = doc_files()
    if failures:
        print(f"docs link-check: {len(failures)} broken reference(s):")
        for doc, problem in failures:
            print(f"  {doc.relative_to(REPO_ROOT)}: {problem}")
        return 1
    print(f"docs link-check: OK ({len(docs)} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
