#!/usr/bin/env python3
"""Docs health-check: links must resolve and the core API must be documented.

Scans ``README.md`` and every ``docs/*.md`` for

* dotted module references (``repro.core.bounds``, possibly followed by an
  attribute) -- the module part must import and the trailing attribute, when
  present, must resolve;
* ``path:line`` anchors (``src/repro/core/bounds.py:137``) -- the file must
  exist and contain at least that many lines;
* relative markdown links (``[text](docs/paper_map.md)``) -- the target file
  must exist.

Additionally audits the engine-layer packages and the linter
(:data:`DOCSTRING_PACKAGES`: ``repro.flat``, ``repro.graph``,
``repro.scenarios``, ``repro.parallel``, ``repro.serve``,
``tools.reprolint``)
for **missing docstrings**: every public module-level function and class --
and every public method/property of those classes -- defined in one of
those packages must carry one, so the generated ``docs/api.md`` can never
silently degrade into a list of bare signatures.

Exits non-zero with a report of every broken reference.  Run from the
repository root (CI does); also exercised as ``tests/docs/test_docs_links.py``.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Packages whose public API must be fully docstringed.
DOCSTRING_PACKAGES = (
    "repro.flat",
    "repro.graph",
    "repro.scenarios",
    "repro.parallel",
    "repro.serve",
    "tools.reprolint",
)

#: repro.foo.bar or repro.foo.bar.attr (the attr is resolved when present).
MODULE_REF = re.compile(r"\brepro(?:\.\w+)+")
#: src/... or tests/... or benchmarks/... path, optionally with :line.
FILE_ANCHOR = re.compile(
    r"\b((?:src|tests|benchmarks|docs|examples|tools)/[\w./-]+?\.(?:py|md|sp|spef))(?::(\d+))?\b"
)
#: [text](relative/target) markdown links (external URLs are skipped).
MARKDOWN_LINK = re.compile(r"\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_module_reference(reference: str) -> str:
    """Empty string when ``reference`` resolves, else a failure description."""
    parts = reference.split(".")
    # Try the longest importable module prefix, then getattr the rest.
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        obj = module
        for attribute in parts[cut:]:
            if not hasattr(obj, attribute):
                return f"{reference}: {module_name!r} imports but has no attribute {attribute!r}"
            obj = getattr(obj, attribute)
        return ""
    return f"{reference}: no importable prefix"


def check_file_anchor(path: str, line: str) -> str:
    target = REPO_ROOT / path
    if not target.exists():
        return f"{path}: file does not exist"
    if line:
        count = len(target.read_text(encoding="utf-8").splitlines())
        if int(line) > count:
            return f"{path}:{line}: file has only {count} lines"
    return ""


def check_markdown_link(source: Path, link: str) -> str:
    if link.startswith(("http://", "https://", "mailto:")):
        return ""
    target = (source.parent / link).resolve()
    if not target.exists():
        return f"{source.name} -> {link}: target does not exist"
    return ""


def _docstring_package_modules() -> List[str]:
    """Every module of the audited packages, the packages themselves included."""
    names: List[str] = []
    for package_name in DOCSTRING_PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        search = getattr(package, "__path__", None)
        if search is None:
            continue
        for info in pkgutil.walk_packages(search, prefix=package_name + "."):
            if not info.name.rsplit(".", 1)[-1].startswith("_"):
                names.append(info.name)
    return names


def _missing_member_docstrings(cls, module_name: str) -> List[str]:
    problems: List[str] = []
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        target = member
        if isinstance(member, property):
            target = member.fget
        elif isinstance(member, (classmethod, staticmethod)):
            target = member.__func__
        elif not inspect.isfunction(member):
            continue
        if target is None or not inspect.getdoc(target):
            problems.append(
                f"{module_name}.{cls.__name__}.{name}: public member has no docstring"
            )
    return problems


def check_docstrings() -> List[str]:
    """Missing-docstring report for the packages in :data:`DOCSTRING_PACKAGES`."""
    problems: List[str] = []
    for module_name in _docstring_package_modules():
        module = importlib.import_module(module_name)
        if not inspect.getdoc(module):
            problems.append(f"{module_name}: module has no docstring")
        for name, value in sorted(vars(module).items()):
            if name.startswith("_"):
                continue
            if getattr(value, "__module__", None) != module_name:
                continue
            if inspect.isfunction(value):
                if not inspect.getdoc(value):
                    problems.append(
                        f"{module_name}.{name}: public function has no docstring"
                    )
            elif inspect.isclass(value):
                if not inspect.getdoc(value):
                    problems.append(
                        f"{module_name}.{name}: public class has no docstring"
                    )
                problems.extend(_missing_member_docstrings(value, module_name))
    return problems


def collect_failures() -> List[Tuple[Path, str]]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    # tools.reprolint imports from the repository root, not src/.
    sys.path.insert(0, str(REPO_ROOT))
    failures: List[Tuple[Path, str]] = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        seen = set()
        for match in MODULE_REF.finditer(text):
            reference = match.group(0).rstrip(".")
            if reference in seen:
                continue
            seen.add(reference)
            problem = check_module_reference(reference)
            if problem:
                failures.append((doc, problem))
        for match in FILE_ANCHOR.finditer(text):
            key = match.group(0)
            if key in seen:
                continue
            seen.add(key)
            problem = check_file_anchor(match.group(1), match.group(2))
            if problem:
                failures.append((doc, problem))
        for match in MARKDOWN_LINK.finditer(text):
            problem = check_markdown_link(doc, match.group(1))
            if problem:
                failures.append((doc, problem))
    return failures


def main() -> int:
    failures = collect_failures()
    docs = doc_files()
    status = 0
    if failures:
        print(f"docs link-check: {len(failures)} broken reference(s):")
        for doc, problem in failures:
            print(f"  {doc.relative_to(REPO_ROOT)}: {problem}")
        status = 1
    else:
        print(f"docs link-check: OK ({len(docs)} files checked)")
    missing = check_docstrings()
    if missing:
        print(f"docstring check: {len(missing)} missing docstring(s):")
        for problem in missing:
            print(f"  {problem}")
        status = 1
    else:
        print(
            "docstring check: OK "
            f"({', '.join(DOCSTRING_PACKAGES)} fully documented)"
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
