"""RL008 -- memmap lifetime discipline for the shard store.

The out-of-core engine (:mod:`repro.store`) keeps resident memory bounded
by *releasing* shard mappings as soon as they are consumed: a dirty
``np.memmap`` that is merely dropped flushes at an arbitrary later time
(or, for the scratch result files, after the file has already been
unlinked), and a mapping that is never dropped pins a shard-sized window
of address space for the life of the process -- precisely the failure the
store exists to avoid.  The discipline mirrors RL003's shared-memory
contract:

* **placement** -- raw ``np.memmap(...)`` construction is confined to the
  store package (``LintConfig.memmap_package``); everywhere else must go
  through a layout-aware factory (``map_field``), which is what keeps the
  "one window per field" accounting checkable at all.
* **lifetime pairing** -- a function that creates a mapping (raw
  ``np.memmap`` or a factory call) must, in the same body, either call a
  *releaser* (``release_memmap`` -- which flushes write-mode maps before
  dropping the reference) or register a ``weakref.finalize`` tying the
  release to the consumer object's lifetime.  The factories and releasers
  themselves are exempt: a factory's whole job is returning an unreleased
  mapping to its caller.

Both checks are name-based and path-insensitive, like RL003/RL004: a
release behind a conditional counts, which keeps false positives out at
the cost of trusting branch structure.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from tools.reprolint.core import LintConfig, Module, Rule


def _call_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _function_defs(tree: ast.AST) -> List[ast.AST]:
    """Every function definition in ``tree`` (any nesting depth)."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


class MemmapLifetimeRule(Rule):
    """Confine raw memmaps to the store; pair every mapping with release."""

    rule_id = "RL008"
    title = "memmap lifetime: store-confined creation + release pairing"
    rationale = (
        "A dropped-but-unreleased np.memmap flushes at an arbitrary later "
        "time and pins shard-sized address space; every mapping must be "
        "paired with release_memmap (flush + drop) or a weakref.finalize, "
        "and raw construction stays inside the store package."
    )
    node_types = ()

    def finish_module(self, module: Module, config: LintConfig) -> None:
        """Run the placement and pairing checks over the parsed module."""
        text = module.text
        if "memmap" not in text and not any(
            factory in text for factory in config.memmap_factories
        ):
            return
        tree = module.tree
        in_store = config.memmap_package in module.rel

        # --- check 1: raw np.memmap outside the store package ---------
        if not in_store:
            for node in ast.walk(tree):
                if isinstance(node, ast.Call) and _call_name(node.func) == "memmap":
                    self.report(
                        module,
                        node,
                        "raw `np.memmap(...)` outside the store package "
                        f"(`{config.memmap_package}`); map shard windows "
                        "through its layout-aware factories "
                        f"({', '.join(config.memmap_factories)}) so the "
                        "release accounting stays in one place",
                    )

        # --- check 2: creators must release or register a finalizer ---
        exempt = set(config.memmap_factories) | set(config.memmap_releasers)
        for func in _function_defs(tree):
            if func.name in exempt:
                continue
            calls: Dict[str, List[ast.Call]] = {}
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    calls.setdefault(_call_name(node.func), []).append(node)
            creators = list(calls.get("memmap", []))
            for factory in config.memmap_factories:
                creators.extend(calls.get(factory, []))
            if not creators:
                continue
            has_finalize = bool(calls.get("finalize"))
            calls_releaser = any(name in calls for name in config.memmap_releasers)
            if not has_finalize and not calls_releaser:
                creators.sort(key=lambda call: (call.lineno, call.col_offset))
                self.report(
                    module,
                    creators[0],
                    f"`{func.name}` creates a memmap without pairing it to "
                    f"a releaser ({', '.join(config.memmap_releasers)}) or "
                    "a `weakref.finalize` in the same body; an unreleased "
                    "mapping flushes late and pins shard-sized address "
                    "space",
                )
