"""RL006 -- oracle pinning: benchmarks must assert parity where they measure.

Every layer of this repository is pinned to its slower predecessor as a
parity oracle (flat <-> dict, graph <-> networkx, sharded <-> serial),
and the benchmarks are the place where "fast" and "correct" meet: a
benchmark that measures a speedup without asserting parity *in the same
run* will happily report a 20x win from a kernel that returns garbage.

The rule scans every ``benchmarks/bench_*.py`` module.  A *measuring*
test is a top-level ``test_*`` function that -- directly or through
module-local helpers (``_best()``-style timing wrappers are common) --
calls the ``benchmark`` fixture or ``time.perf_counter``.  Each
measuring test must also reach an ``assert`` statement through the same
module-local call graph.  Helpers are resolved transitively, so a
parity check factored into ``_check_parity()`` counts, but an assert in
some *other* test does not.
"""

from __future__ import annotations

import ast
from typing import Dict, Set

from tools.reprolint.core import LintConfig, Module, Rule


def _measures(func: ast.AST) -> bool:
    """Does ``func`` itself call ``benchmark(...)`` / ``perf_counter``?"""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Name) and target.id == "benchmark":
            return True
        if isinstance(target, ast.Attribute):
            if target.attr == "perf_counter":
                return True
            # benchmark.pedantic(...) / benchmark.extra_info access
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "benchmark"
            ):
                return True
    return False


def _asserts(func: ast.AST) -> bool:
    """Does ``func`` itself contain an ``assert`` statement?"""
    return any(isinstance(node, ast.Assert) for node in ast.walk(func))


def _local_calls(func: ast.AST, local_names: Set[str]) -> Set[str]:
    """Module-local functions called (by name) anywhere inside ``func``."""
    called: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in local_names:
                called.add(node.func.id)
    return called


class BenchOracleRule(Rule):
    """Benchmarks must assert parity in the same run they measure."""

    rule_id = "RL006"
    title = "oracle pinning: benchmarks assert parity in the measuring run"
    rationale = (
        "A benchmark that measures without asserting parity will report "
        "speedups from kernels that return wrong answers."
    )
    node_types = ()

    def applies_to(self, module: Module, config: LintConfig) -> bool:
        """Only ``benchmarks/bench_*.py`` modules are in scope."""
        parts = module.rel.split("/")
        return (
            len(parts) >= 2
            and config.bench_dir in parts
            and parts[-1].startswith(config.bench_prefix)
        )

    def finish_module(self, module: Module, config: LintConfig) -> None:
        """Resolve each test's module-local call graph and check it."""
        top_level: Dict[str, ast.AST] = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        local_names = set(top_level)
        for name, func in top_level.items():
            if not name.startswith("test_"):
                continue
            reachable = {name}
            frontier = [name]
            while frontier:
                current = frontier.pop()
                for callee in _local_calls(top_level[current], local_names):
                    if callee not in reachable:
                        reachable.add(callee)
                        frontier.append(callee)
            measures = any(_measures(top_level[f]) for f in reachable)
            asserts = any(_asserts(top_level[f]) for f in reachable)
            if measures and not asserts:
                self.report(
                    module,
                    func,
                    f"benchmark `{name}` measures (benchmark fixture / "
                    "perf_counter) but never asserts parity against an "
                    "oracle in the same run",
                )
