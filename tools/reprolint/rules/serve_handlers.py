"""RL009 -- handler coroutines never touch a kernel directly.

The timing service's liveness rests on one discipline: the asyncio event
loop only ever does traffic plumbing, and every solve/sweep/ECO runs in a
thread-pool executor (or through the coalescing batcher, which does the
same).  A single ``graph.worst_slack()`` called from an ``async def``
handler would run the whole levelized sweep *on the event loop*, stalling
every connected client for its duration -- correct results, ruined
service; the kind of regression a quick benchmark on a small design never
notices.

So the rule is static and blunt: inside modules of the service package
(``LintConfig.serve_package``), no ``async def`` body may *call* any of
the kernel/ECO entry points in ``LintConfig.serve_kernel_calls``.
References are fine -- ``run_in_executor(None, session.worst_slack)``
passes the bound method as data -- and so are calls inside ``lambda`` or
nested ``def`` bodies, which are deferred thunks by construction.
Synchronous functions (the :class:`~repro.serve.session.Session` compute
methods) are exactly where those calls belong and are not checked.

Name-based like RL003/RL008: a handler laundering a kernel call through a
local alias would evade it, but the point is to catch the honest mistake
-- "just call the graph, it's quick" -- not an adversary.
"""

from __future__ import annotations

import ast
from typing import List

from tools.reprolint.core import LintConfig, Module, Rule


def _call_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _direct_calls(func: ast.AsyncFunctionDef) -> List[ast.Call]:
    """Calls made by the coroutine itself, skipping deferred-thunk bodies.

    ``lambda`` and nested ``def``/``async def`` subtrees are excluded: a
    call inside them runs when the thunk runs (typically in the executor),
    not on the event loop.  Nested ``async def`` bodies are still checked
    -- just independently, since the module walk visits every coroutine.
    """
    calls: List[ast.Call] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return calls


class ServeHandlerRule(Rule):
    """Ban direct kernel/ECO calls from service-package coroutines."""

    rule_id = "RL009"
    title = "serve handlers: no kernel calls on the event loop"
    rationale = (
        "A solve or ECO called directly from an async handler runs the "
        "whole sweep on the event loop, stalling every connected client; "
        "compute must go through the executor or the coalescing batcher."
    )
    node_types = ()

    def finish_module(self, module: Module, config: LintConfig) -> None:
        if config.serve_package not in module.rel:
            return
        banned = set(config.serve_kernel_calls)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in sorted(
                _direct_calls(node), key=lambda c: (c.lineno, c.col_offset)
            ):
                name = _call_name(call.func)
                if name in banned:
                    self.report(
                        module,
                        call,
                        f"coroutine `{node.name}` calls kernel/ECO entry "
                        f"point `{name}` directly on the event loop; hand "
                        "it to the executor (`run_in_executor`) or the "
                        "what-if batcher instead",
                    )
