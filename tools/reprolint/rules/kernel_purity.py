"""RL001 -- kernel purity: no Python loops over the node/scenario axes.

The Penfield--Rubinstein sweeps are fast *only* because the per-node
recurrences run as level-bucketed numpy expressions; one Python ``for``
over nodes or scenarios inside a solve kernel silently reverts the
engine to interpreter speed (the exact regression PR 1 exists to
prevent).  Kernel *modules* still legitimately loop in compile paths
(``from_tree``), lazy structure builders, and the O(path) incremental
updates, so this rule is scoped to the kernel *functions* named in
:attr:`LintConfig.kernel_functions`.

Inside a kernel function:

* ``while`` loops are always flagged (no kernel iterates an unbounded
  Python axis; the contraction engine's rounds are precomputed into a
  ``schedule``).
* ``for`` loops are flagged unless the iterable expression mentions one
  of the *allowed axis* names (``levels``, ``chunks``, ``schedule``,
  ``shards``, ``ranges``, ``tasks``): those iterate O(depth) /
  O(N/chunk) bounded plans, not the node or scenario axis itself.

Comprehensions are not flagged -- kernels use them only for small
metadata packing, and flagging them would force awkward rewrites with
no performance story.

JIT-compiled kernels (any function carrying a decorator named in
:attr:`LintConfig.jit_decorators`, e.g. ``@njit``) are exempt wholesale:
inside compiled code explicit loops over nodes and scenarios are exactly
the idiom -- the compiler fuses them into machine code, and the
"interpreter speed" failure mode this rule guards against does not
exist.  RL007 holds those kernels to the compiled-kernel contract
instead.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Context, LintConfig, Module, Rule


def _names_in(node: ast.AST) -> set:
    """Every identifier mentioned anywhere in ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)} | {
        n.attr for n in ast.walk(node) if isinstance(n, ast.Attribute)
    }


class KernelPurityRule(Rule):
    """Flag Python ``for``/``while`` over hot axes in kernel functions."""

    rule_id = "RL001"
    title = "kernel purity: no Python loops over node/scenario axes"
    rationale = (
        "A Python loop over nodes or scenarios inside a solve kernel "
        "reverts the vectorized engine to interpreter speed."
    )
    node_types = (ast.For, ast.While)

    def applies_to(self, module: Module, config: LintConfig) -> bool:
        """Only the kernel modules are in scope."""
        return any(module.matches(suffix) for suffix in config.kernel_modules)

    def visit(self, node: ast.AST, ctx: Context) -> None:
        """Flag loops whose enclosing function is a kernel function."""
        kernel = set(ctx.function_names()) & set(ctx.config.kernel_functions)
        if not kernel:
            return
        if ctx.in_jit_kernel():
            return
        where = sorted(kernel)[0]
        if isinstance(node, ast.While):
            self.report(
                ctx.module,
                node,
                f"Python `while` loop inside kernel function `{where}`; "
                "kernels must run as vectorized sweeps over precomputed "
                "level/chunk plans",
            )
            return
        assert isinstance(node, ast.For)
        allowed = set(ctx.config.allowed_loop_names)
        if _names_in(node.iter) & allowed:
            return
        self.report(
            ctx.module,
            node,
            f"Python `for` loop inside kernel function `{where}` iterates "
            "an unrecognized axis; kernels may only loop over bounded "
            f"plans ({', '.join(ctx.config.allowed_loop_names)})",
        )
