"""RL004 -- the cache-invalidation contract, as a declarative table.

docs/architecture.md documents the contract in prose: every class that
caches derived state (``FlatTree._times``, ``FlatForest._times`` +
level buckets, ``DesignDB._scenario_layout_cache``,
``TimingGraph._arrivals``/``_required``) must invalidate that state in
every method that mutates the inputs it was derived from.  A mutation
that forgets to invalidate produces *silently stale timing numbers* --
no crash, just wrong answers.

The rule is driven by :class:`tools.reprolint.core.CacheContract` rows
(one per class).  A method of a contracted class that assigns to a
contracted attribute -- plainly (``self._node_c = x``), by subscript
(``self._node_c[i] = x``) or augmented (``self._node_c[i] += x``) --
must, somewhere in its own body, either write ``None`` into one of the
class's cache slots or call one of its invalidator methods.  The check
is deliberately path-insensitive: an invalidation behind a conditional
still counts (early-exit fast paths are legitimate), which keeps the
rule free of false positives at the cost of trusting the author's
branch structure.

``__init__`` is always exempt (construction precedes any cache);
per-contract ``exempt_methods`` name the invalidation machinery itself
and construction-phase helpers.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from tools.reprolint.core import CacheContract, LintConfig, Module, Rule

#: The repository's contract table.  Fixture tests substitute their own
#: via ``LintConfig(contracts=...)``.
DEFAULT_CONTRACTS = (
    CacheContract(
        module_suffix="repro/flat/flattree.py",
        class_name="FlatTree",
        attrs=("_edge_r", "_edge_c", "_node_c"),
        caches=("_times",),
        invalidators=("refresh",),
    ),
    CacheContract(
        module_suffix="repro/flat/forest.py",
        class_name="FlatForest",
        attrs=(
            "_parent",
            "_depth",
            "_edge_r",
            "_edge_c",
            "_node_c",
            "_offsets",
            "_tree_id",
            "_is_output",
            "_n",
        ),
        caches=("_times",),
        invalidators=("_rebucket",),
    ),
    CacheContract(
        module_suffix="repro/graph/designdb.py",
        class_name="DesignDB",
        attrs=("_models",),
        caches=("_scenario_layout_cache",),
        invalidators=("_recompile_entry", "_compile"),
        exempt_methods=("_model_of",),
    ),
    CacheContract(
        module_suffix="repro/store/forest.py",
        class_name="StoredForest",
        attrs=("_shards",),
        caches=("_layout_cache",),
        invalidators=("_invalidate_shard",),
    ),
    CacheContract(
        module_suffix="repro/graph/timinggraph.py",
        class_name="TimingGraph",
        attrs=("_edge_delay", "_edge_arcs"),
        caches=("_arrivals", "_required"),
        invalidators=("_repropagate",),
        exempt_methods=("_build_edges", "_patch_net_delays"),
    ),
)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.<attr>`` -> attr name, unwrapping one subscript level."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_attrs(stmt: ast.AST) -> List[ast.AST]:
    """Assignment targets of ``stmt`` that are ``self.<x>`` writes."""
    targets: List[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    return [t for t in targets if _self_attr(t) is not None]


def _invalidates(method: ast.AST, contract: CacheContract) -> bool:
    """True when ``method`` clears a cache slot or calls an invalidator."""
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            if (
                isinstance(node.value, ast.Constant)
                and node.value.value is None
                and any(
                    _self_attr(t) in contract.caches for t in node.targets
                )
            ):
                return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr in contract.invalidators
            ):
                return True
    return False


class CacheInvalidationRule(Rule):
    """Mutating methods of cache-bearing classes must invalidate."""

    rule_id = "RL004"
    title = "cache-invalidation contract for cache-bearing classes"
    rationale = (
        "A mutation of a contracted input attribute without invalidating "
        "the derived cache yields silently stale timing results."
    )
    node_types = ()

    def finish_module(self, module: Module, config: LintConfig) -> None:
        """Check every contracted class defined in this module."""
        contracts = config.contracts or DEFAULT_CONTRACTS
        for contract in contracts:
            if not module.matches(contract.module_suffix):
                continue
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.ClassDef)
                    and node.name == contract.class_name
                ):
                    self._check_class(module, node, contract)

    def _check_class(
        self, module: Module, cls: ast.ClassDef, contract: CacheContract
    ) -> None:
        exempt = set(contract.exempt_methods) | {"__init__"}
        exempt.update(contract.invalidators)
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in exempt:
                continue
            offenders = []
            for node in ast.walk(method):
                for target in _mutated_attrs(node):
                    attr = _self_attr(target)
                    if attr in contract.attrs:
                        offenders.append((node, attr))
            if offenders and not _invalidates(method, contract):
                node, attr = offenders[0]
                self.report(
                    module,
                    node,
                    f"`{contract.class_name}.{method.name}` mutates "
                    f"contracted attribute `{attr}` without invalidating "
                    f"({' / '.join(contract.caches)} = None or calling "
                    f"{' / '.join(contract.invalidators)})",
                )
