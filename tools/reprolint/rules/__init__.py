"""Rule registry for reprolint.

Each rule lives in its own module and registers itself here.  To add a
rule: write a :class:`tools.reprolint.core.Rule` subclass with a fresh
``RL0xx`` id, import it below, and append it to :data:`RULE_CLASSES` --
the dispatcher, suppression machinery, baseline and reporters pick it up
with no further wiring.
"""

from __future__ import annotations

from typing import List, Type

from tools.reprolint.core import Rule
from tools.reprolint.rules.bench_oracle import BenchOracleRule
from tools.reprolint.rules.cache_invalidation import CacheInvalidationRule
from tools.reprolint.rules.dtype_discipline import DtypeDisciplineRule
from tools.reprolint.rules.kernel_purity import KernelPurityRule
from tools.reprolint.rules.memmap_lifetime import MemmapLifetimeRule
from tools.reprolint.rules.native_kernels import NativeKernelRule
from tools.reprolint.rules.registry_sync import RegistrySyncRule
from tools.reprolint.rules.serve_handlers import ServeHandlerRule
from tools.reprolint.rules.shm_lifetime import ShmLifetimeRule

#: Every shipped rule, in id order.
RULE_CLASSES: List[Type[Rule]] = [
    KernelPurityRule,
    DtypeDisciplineRule,
    ShmLifetimeRule,
    CacheInvalidationRule,
    RegistrySyncRule,
    BenchOracleRule,
    NativeKernelRule,
    MemmapLifetimeRule,
    ServeHandlerRule,
]


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule (rules carry findings)."""
    return [cls() for cls in RULE_CLASSES]


__all__ = [
    "RULE_CLASSES",
    "all_rules",
    "KernelPurityRule",
    "DtypeDisciplineRule",
    "ShmLifetimeRule",
    "CacheInvalidationRule",
    "RegistrySyncRule",
    "BenchOracleRule",
    "NativeKernelRule",
    "MemmapLifetimeRule",
    "ServeHandlerRule",
]
