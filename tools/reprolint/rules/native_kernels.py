"""RL007 -- compiled-kernel contract: cached JIT, guarded accelerator imports.

The ``"native"`` backend's promise is that Numba is an *accelerator*,
never a dependency: every process must import the package and solve
correctly whether or not Numba exists, and when it does exist the
compile cost must be paid once per machine, not once per process (the
sharded ``jobs>=2`` path forks worker pools that would otherwise each
recompile every kernel).  Two checks enforce the statically checkable
half of that contract, module-wide (any file may grow a JIT kernel):

* Every JIT-decorated function (decorator names in
  :attr:`LintConfig.jit_decorators`) must pass ``cache=True`` so the
  compiled artifact persists on disk and forked workers load it instead
  of recompiling.  A bare ``@njit`` or an ``@njit(parallel=True)``
  without ``cache=True`` is flagged.
* Every import of an accelerator module
  (:attr:`LintConfig.jit_import_modules`, default ``numba``) must be
  *guarded* -- enclosed in a ``try`` statement at any nesting level --
  so a machine without the accelerator degrades instead of crashing at
  import time.  ``pytest.importorskip("numba")`` in tests is not an
  import statement and passes untouched.

The dynamic half of the contract (a working numpy fallback at solve
time) is pinned by ``tests/parallel/test_native.py``; this rule keeps
the static shape that makes the fallback reachable at all.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Context, LintConfig, Module, Rule, is_jit_decorated


def _decorator_declares_cache(decorator: ast.AST) -> bool:
    """True when a decorator is a call passing a truthy ``cache=`` constant."""
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "cache":
            value = keyword.value
            return isinstance(value, ast.Constant) and bool(value.value)
    return False


class NativeKernelRule(Rule):
    """Require ``cache=True`` on JIT kernels and guards on accelerator imports."""

    rule_id = "RL007"
    title = "JIT kernels declare cache=True; accelerator imports stay guarded"
    rationale = (
        "Uncached JIT kernels recompile in every forked worker; an "
        "unguarded accelerator import turns an optional speedup into a "
        "hard dependency that crashes machines without it."
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: Context) -> None:
        """Flag JIT-decorated functions that do not declare ``cache=True``."""
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        jit_names = ctx.config.jit_decorators
        if not is_jit_decorated(node, jit_names):
            return
        for decorator in node.decorator_list:
            target = (
                decorator.func if isinstance(decorator, ast.Call) else decorator
            )
            named = (
                isinstance(target, ast.Attribute) and target.attr in jit_names
            ) or (isinstance(target, ast.Name) and target.id in jit_names)
            if named and not _decorator_declares_cache(decorator):
                self.report(
                    ctx.module,
                    decorator,
                    f"JIT kernel `{node.name}` must declare `cache=True` so "
                    "forked shard workers load the on-disk artifact instead "
                    "of recompiling per process",
                )

    def finish_module(self, module: Module, config: LintConfig) -> None:
        """Flag accelerator imports not enclosed in a ``try`` statement."""
        self._walk_imports(module, config, module.tree, guarded=False)

    def _walk_imports(
        self, module: Module, config: LintConfig, node: ast.AST, guarded: bool
    ) -> None:
        targets = set(config.jit_import_modules)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                names = [alias.name for alias in child.names]
                if isinstance(child, ast.ImportFrom) and child.module:
                    names.append(child.module)
                hit = {name.split(".")[0] for name in names} & targets
                if hit and not guarded:
                    self.report(
                        module,
                        child,
                        f"unguarded import of optional accelerator "
                        f"`{sorted(hit)[0]}`; wrap it in try/except so "
                        "machines without it fall back to the numpy kernels",
                    )
                continue
            self._walk_imports(
                module,
                config,
                child,
                guarded or isinstance(child, ast.Try),
            )
