"""RL003 -- shared-memory lifetime discipline.

The PR 5 segfault class: a ``np.ndarray(buffer=shm.buf, ...)`` view
holds **no** PEP-3118 buffer export, so unmapping the segment while the
view is alive segfaults instead of raising.  ``np.frombuffer`` views
hold a real export (premature ``close()`` raises ``BufferError``), and
the engine pairs every owning ``SharedMemory`` block with a
``weakref.finalize`` registration (or a cache whose releaser is wired to
``atexit``) so segments are unlinked exactly once, after the last view
dies.  Three checks keep that discipline:

* **ndarray-over-buffer ban** -- any ``ndarray(...)`` call with a
  ``buffer=`` keyword is flagged, anywhere in the tree.
* **owner pairing** -- a function that calls
  ``SharedMemory(create=True)`` must, in the same body, either register
  a ``weakref.finalize`` or call a *releaser* (a module function that
  itself calls ``.unlink()``) while the module wires a releaser via
  ``atexit.register``.  Attach-side calls (no ``create=True``) are
  workers borrowing a segment they don't own and are exempt.
* **unguarded teardown** -- ``.close()`` / ``.unlink()`` lexically after
  a ``np.frombuffer`` view in the same function is flagged unless the
  teardown sits inside a ``try`` block (the BufferError-tolerant
  release idiom).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from tools.reprolint.core import LintConfig, Module, Rule


def _call_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _function_defs(tree: ast.AST) -> List[ast.AST]:
    """Every function definition in ``tree`` (any nesting depth)."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _creates_shm(call: ast.Call) -> bool:
    """``SharedMemory(..., create=True)`` -- an owning allocation."""
    if _call_name(call.func) != "SharedMemory":
        return False
    for kw in call.keywords:
        if kw.arg == "create" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _teardown_calls(func: ast.AST) -> List[Tuple[ast.Call, bool]]:
    """``.close()`` / ``.unlink()`` calls in ``func`` with try-guard flag."""
    found: List[Tuple[ast.Call, bool]] = []

    def scan(node: ast.AST, in_try: bool) -> None:
        if isinstance(node, ast.Call) and _call_name(node.func) in (
            "close",
            "unlink",
        ) and isinstance(node.func, ast.Attribute):
            found.append((node, in_try))
        for child in ast.iter_child_nodes(node):
            scan(child, in_try or isinstance(node, ast.Try))

    for stmt in getattr(func, "body", []):
        scan(stmt, False)
    return found


class ShmLifetimeRule(Rule):
    """Enforce the frombuffer + finalize shared-memory discipline."""

    rule_id = "RL003"
    title = "shared-memory lifetime: frombuffer views + finalize pairing"
    rationale = (
        "np.ndarray(buffer=...) views hold no buffer export and segfault "
        "on premature unmap; owning SharedMemory blocks must be paired "
        "with weakref.finalize or an atexit-wired releaser."
    )
    node_types = ()

    def finish_module(self, module: Module, config: LintConfig) -> None:
        """Run all three lifetime checks over the parsed module."""
        text = module.text
        if "ndarray" not in text and "SharedMemory" not in text and (
            "frombuffer" not in text
        ):
            return
        tree = module.tree
        # --- check 1: ndarray(buffer=...) anywhere -------------------
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and _call_name(node.func) == "ndarray"
                and any(kw.arg == "buffer" for kw in node.keywords)
            ):
                self.report(
                    module,
                    node,
                    "`np.ndarray(buffer=...)` view holds no buffer export "
                    "and segfaults on premature unmap; use `np.frombuffer` "
                    "(+ reshape) so teardown raises BufferError instead",
                )

        # --- module-wide facts for checks 2 and 3 --------------------
        has_atexit = any(
            isinstance(node, ast.Call)
            and _call_name(node.func) == "register"
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "atexit"
            for node in ast.walk(tree)
        )
        releasers: Set[str] = set()
        for func in _function_defs(tree):
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "unlink"
                ):
                    releasers.add(func.name)
                    break

        for func in _function_defs(tree):
            calls: Dict[str, List[ast.Call]] = {}
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    calls.setdefault(_call_name(node.func), []).append(node)

            # --- check 2: owning allocations must be paired ----------
            owning = [
                call for call in calls.get("SharedMemory", []) if _creates_shm(call)
            ]
            if owning:
                has_finalize = bool(calls.get("finalize"))
                calls_releaser = any(name in releasers for name in calls)
                if not has_finalize and not (calls_releaser and has_atexit):
                    self.report(
                        module,
                        owning[0],
                        f"`{func.name}` allocates SharedMemory(create=True) "
                        "without pairing it to a `weakref.finalize` (or an "
                        "atexit-wired releaser); the segment can leak or be "
                        "unlinked while views are live",
                    )

            # --- check 3: teardown after a live frombuffer view ------
            views = calls.get("frombuffer", [])
            if not views:
                continue
            first_view = min(view.lineno for view in views)
            for call, guarded in _teardown_calls(func):
                if call.lineno > first_view and not guarded:
                    verb = _call_name(call.func)
                    self.report(
                        module,
                        call,
                        f"unguarded `.{verb}()` after a `np.frombuffer` view "
                        "in the same function; release the view first or "
                        "wrap teardown in try/except BufferError",
                    )
