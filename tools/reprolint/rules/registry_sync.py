"""RL005 -- engine-registry completeness across its three mirrors.

The backend registry (``repro.parallel.backends``, populated by the
``register_backend(...)`` calls in ``repro.parallel.engine``) is
mirrored by hand in three places: the CLI ``--engine`` choices, the
engine table in docs/architecture.md, and the cross-engine parity
matrix in tests/properties/test_engine_matrix.py.  A backend that lands
in the registry but not in a mirror is either uninvocable from the CLI,
undocumented, or -- worst -- unpinned by the parity suite.  With the
ROADMAP pushing toward a ``"native"`` compiled backend, this rule makes
the sync machine-checked.

The rule runs in :meth:`finish_project` and activates only when the
registry module was part of the scanned set.  Registered names are the
first-argument string literals of ``register_backend(...)`` calls; each
must appear in:

* the ``choices=[...]`` list of the ``--engine`` ``add_argument`` call
  (parsed from the CLI module's AST);
* the docs engine table (quoted substring match in the markdown);
* the string constants of the engine-matrix test module.

Missing mirror files are themselves findings -- a deleted mirror must
not silently disable the check.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from tools.reprolint.core import Project, Rule


def _registered_backends(tree: ast.AST) -> List[str]:
    """First-arg string literals of every ``register_backend(...)`` call."""
    names: List[str] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "register_backend"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            names.append(node.args[0].value)
    return names


def _engine_choices(tree: ast.AST) -> Optional[Set[str]]:
    """The ``choices`` of the ``--engine`` add_argument, if present."""
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "--engine"
        ):
            continue
        for kw in node.keywords:
            if kw.arg == "choices" and isinstance(kw.value, (ast.List, ast.Tuple)):
                return {
                    elt.value
                    for elt in kw.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
    return None


def _string_constants(tree: ast.AST) -> Set[str]:
    """Every string literal in ``tree``."""
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


class RegistrySyncRule(Rule):
    """Registered backends must appear in CLI, docs and the test matrix."""

    rule_id = "RL005"
    title = "engine-registry completeness across CLI / docs / test matrix"
    rationale = (
        "A backend registered but missing from a mirror is uninvocable, "
        "undocumented, or unpinned by the parity suite."
    )
    node_types = ()

    def finish_project(self, project: Project) -> None:
        """Cross-check the registry against its mirrors, if scanned."""
        config = project.config
        registry = project.find_module(config.registry_module)
        if registry is None:
            return
        backends = _registered_backends(registry.tree)
        if not backends:
            return

        # --- CLI --engine choices ------------------------------------
        cli_path = config.repo_root / config.cli_module_path
        if not cli_path.exists():
            self.report_resource(
                config.cli_module_path,
                "CLI module missing; cannot verify --engine choices",
            )
        else:
            choices = _engine_choices(ast.parse(cli_path.read_text(encoding="utf-8")))
            if choices is None:
                self.report_resource(
                    config.cli_module_path,
                    "no `--engine` add_argument with literal `choices=` found",
                )
            else:
                for backend in backends:
                    if backend not in choices:
                        self.report(
                            registry,
                            registry.tree,
                            f"backend `{backend}` is registered but missing "
                            f"from the CLI --engine choices "
                            f"({config.cli_module_path})",
                        )

        # --- docs engine table ---------------------------------------
        docs_path = config.repo_root / config.docs_engine_table_path
        if not docs_path.exists():
            self.report_resource(
                config.docs_engine_table_path,
                "docs engine table missing; cannot verify backend docs",
            )
        else:
            docs_text = docs_path.read_text(encoding="utf-8")
            for backend in backends:
                if f'"{backend}"' not in docs_text:
                    self.report(
                        registry,
                        registry.tree,
                        f"backend `{backend}` is registered but absent from "
                        f"the docs engine table "
                        f"({config.docs_engine_table_path})",
                    )

        # --- cross-engine test matrix --------------------------------
        test_path = config.repo_root / config.engine_matrix_test_path
        if not test_path.exists():
            self.report_resource(
                config.engine_matrix_test_path,
                "engine-matrix test missing; cannot verify parity coverage",
            )
        else:
            constants = _string_constants(
                ast.parse(test_path.read_text(encoding="utf-8"))
            )
            for backend in backends:
                if backend not in constants:
                    self.report(
                        registry,
                        registry.tree,
                        f"backend `{backend}` is registered but never named "
                        f"in the cross-engine parity matrix "
                        f"({config.engine_matrix_test_path})",
                    )
