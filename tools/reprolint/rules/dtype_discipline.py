"""RL002 -- dtype discipline in kernel modules.

Two checks, both scoped to the kernel modules
(:attr:`LintConfig.kernel_modules`):

* Every ``np.empty`` / ``np.zeros`` / ``np.ones`` / ``np.full`` call
  must pass an explicit ``dtype=``.  The planes these allocate are the
  shared-memory element/result planes; a dtype left to numpy's default
  works today but breaks bitwise parity (and the ``itemsize``
  arithmetic in the process backend) the moment a platform or numpy
  release changes the default.  ``*_like`` allocators are exempt --
  they inherit their dtype from an existing plane, which is the point.
* Inside kernel *functions*, ``.tolist()`` and ``float(...)``
  scalarization are flagged: both drop from the vectorized plane to
  Python objects in a hot path.  (Outside kernel functions they are
  fine -- reporting code wants Python floats.)  JIT-compiled kernels
  (:attr:`LintConfig.jit_decorators`) are exempt from the scalarization
  checks: under ``@njit``, ``float(...)`` is a compiled cast and no
  Python object ever materializes.  The allocator dtype check still
  applies everywhere in the module -- pinned dtypes matter to compiled
  and interpreted planes alike.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Context, LintConfig, Module, Rule


def _call_name(func: ast.AST) -> str:
    """The trailing identifier of a call target (``np.zeros`` -> ``zeros``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_numpy_attr(func: ast.AST) -> bool:
    """True for ``np.<x>`` / ``numpy.<x>`` attribute call targets."""
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    )


class DtypeDisciplineRule(Rule):
    """Require explicit dtypes and forbid hot-path scalarization."""

    rule_id = "RL002"
    title = "explicit dtype on kernel allocations; no hot-path scalarization"
    rationale = (
        "Shared-memory planes must have a pinned dtype for bitwise parity "
        "and buffer-size arithmetic; .tolist()/float() in kernels drop to "
        "Python objects mid-sweep."
    )
    node_types = (ast.Call,)

    def applies_to(self, module: Module, config: LintConfig) -> bool:
        """Only the kernel modules are in scope."""
        return any(module.matches(suffix) for suffix in config.kernel_modules)

    def visit(self, node: ast.AST, ctx: Context) -> None:
        """Check allocator calls module-wide, scalarization in kernels."""
        assert isinstance(node, ast.Call)
        name = _call_name(node.func)
        if name in ctx.config.alloc_functions and _is_numpy_attr(node.func):
            if not any(kw.arg == "dtype" for kw in node.keywords):
                self.report(
                    ctx.module,
                    node,
                    f"`np.{name}` without an explicit `dtype=` in a kernel "
                    "module; element/result planes must pin their dtype",
                )
            return
        in_kernel = bool(
            set(ctx.function_names()) & set(ctx.config.kernel_functions)
        )
        if not in_kernel or ctx.in_jit_kernel():
            return
        if name == "tolist" and isinstance(node.func, ast.Attribute):
            self.report(
                ctx.module,
                node,
                "`.tolist()` inside a kernel function materializes Python "
                "objects in a hot path",
            )
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and node.args
        ):
            self.report(
                ctx.module,
                node,
                "`float(...)` scalarization inside a kernel function; keep "
                "values on the numpy plane",
            )
