"""Command-line entry point: ``python -m tools.reprolint [options] paths...``.

Exit codes: 0 clean (or all findings baselined/suppressed), 1 new
findings or unparsable files, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from tools.reprolint.core import (
    LintConfig,
    LintResult,
    load_baseline,
    run_paths,
    write_baseline,
)
from tools.reprolint.rules import RULE_CLASSES

#: The committed grandfathered-findings file used by ``--baseline``.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_PATHS = ["src", "tools", "benchmarks"]


def _format_text(result: LintResult) -> str:
    """Human-readable report."""
    lines: List[str] = []
    for finding in result.parse_errors:
        lines.append(
            f"{finding.path}:{finding.line}: PARSE {finding.message}"
        )
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    summary = (
        f"reprolint: {len(result.findings)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.parse_errors:
        extras.append(f"{len(result.parse_errors)} parse error(s)")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)


def _format_json(result: LintResult) -> str:
    """Machine-readable report."""
    return json.dumps(
        {
            "findings": [f.to_dict() for f in result.findings],
            "suppressed": [f.to_dict() for f in result.suppressed],
            "baselined": [f.to_dict() for f in result.baselined],
            "parse_errors": [f.to_dict() for f in result.parse_errors],
            "files_checked": result.files_checked,
            "exit_code": result.exit_code,
        },
        indent=2,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based invariant checker for this repository's "
        "kernel, cache-invalidation and shared-memory contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report instead of text"
    )
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="ignore findings recorded in the committed baseline file",
    )
    parser.add_argument(
        "--baseline-file",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline file to read/write (default: tools/reprolint/baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record all current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list shipped rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in RULE_CLASSES:
            print(f"{cls.rule_id}  {cls.title}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"reprolint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline or args.write_baseline:
        baseline = load_baseline(args.baseline_file)
    result = run_paths(
        [Path(p) for p in args.paths],
        config=LintConfig(),
        baseline=baseline if args.baseline else None,
    )
    if args.write_baseline:
        write_baseline(result.all_current, args.baseline_file)
        print(
            f"reprolint: wrote {len(result.all_current)} fingerprint(s) to "
            f"{args.baseline_file}"
        )
        return 0
    print(_format_json(result) if args.json else _format_text(result))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
