"""The reprolint framework: module model, rule base class, dispatcher, baseline.

The design is a single-pass visitor dispatcher: every scanned file is parsed
once, its AST is walked once, and each node is handed only to the rules that
declared interest in that node type (:attr:`Rule.node_types`).  Rules are
small classes; cross-file rules (the registry-sync check) use the
:meth:`Rule.finish_project` hook, which runs after every module has been
visited and sees the whole :class:`Project`.

Everything a rule needs to know about the repository -- which modules count
as kernels, which classes carry caches, where the engine registry and its
mirrors live -- is carried by a :class:`LintConfig`, so the fixture tests in
``tests/tools/`` can point the same rules at synthetic trees.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Marker used in inline suppressions: ``# reprolint: disable=RL001,RL002``
#: silences those rules on that line, ``# reprolint: disable-file=RL001``
#: silences a rule for the whole file (use sparingly; justify in a comment).
SUPPRESS_MARKER = "reprolint:"


@dataclass(frozen=True)
class CacheContract:
    """One row of the RL004 declarative cache-invalidation table.

    A method of ``class_name`` (in any module whose path ends with
    ``module_suffix``) that assigns to one of ``attrs`` -- plainly
    (``self.x = ...``), by subscript (``self.x[i] = ...``) or augmented --
    must, somewhere in the same method, either set one of ``caches`` to
    ``None`` or call one of ``invalidators``.  ``exempt_methods`` lists
    methods that are part of the invalidation machinery itself (or
    construction-phase helpers that run before any cache exists) and are
    therefore not checked; ``__init__`` is always exempt.
    """

    module_suffix: str
    class_name: str
    attrs: Tuple[str, ...]
    caches: Tuple[str, ...]
    invalidators: Tuple[str, ...]
    exempt_methods: Tuple[str, ...] = ()


def _default_repo_root() -> Path:
    return Path(__file__).resolve().parent.parent.parent


@dataclass(frozen=True)
class LintConfig:
    """Repository-shape knobs shared by the rules.

    The defaults describe *this* repository; the fixture tests build
    configs pointing at synthetic trees (``dataclasses.replace`` keeps that
    a one-liner).  Paths in ``kernel_modules`` and the RL005 resource
    fields are posix suffixes matched against each scanned file's path.
    """

    #: Root used to resolve the RL005 resources and to relativize paths.
    repo_root: Path = field(default_factory=_default_repo_root)
    #: Modules holding the vectorized solve kernels (RL001/RL002 scope).
    kernel_modules: Tuple[str, ...] = (
        "repro/flat/flattree.py",
        "repro/flat/forest.py",
        "repro/flat/scenarios.py",
        "repro/flat/contraction.py",
        "repro/flat/native.py",
        "repro/parallel/engine.py",
    )
    #: Functions inside kernel modules that ARE the hot solve/sweep paths.
    #: Compile-time walks (``from_tree``), lazy structure builders and the
    #: O(path)/O(subtree) incremental updates deliberately use Python
    #: loops; the per-solve kernels must not.
    kernel_functions: Tuple[str, ...] = (
        "solve",
        "solve_batch",
        "sweep_scenarios",
        "sweep_scenarios_contract",
        "path_sums",
        "subtree_sums",
        "_build_aggregates",
        "_solve_range",
        "_solve_serial",
        "_solve_numpy",
        "_solve_contract",
        "_solve_native",
        "_solve_process",
        "_solve_process_impl",
        "_solve_shard_into",
        "solve_forest_batch",
        "sweep_scenarios_native",
        "sweep_scenarios_contract_native",
        "path_sums_native",
        "subtree_sums_native",
        "_sweep_impl",
        "_contract_impl",
        "_sweep_levels_kernel",
        "_path_round_kernel",
        "_subtree_round_kernel",
    )
    #: Identifier names that mark a loop as iterating one of the *allowed*
    #: axes (depth levels, bounded scenario chunks, shard plans, jump
    #: schedules) rather than the node/scenario axes.
    allowed_loop_names: Tuple[str, ...] = (
        "levels",
        "_levels",
        "chunks",
        "schedule",
        "shards",
        "ranges",
        "tasks",
    )
    #: numpy allocators that must carry an explicit ``dtype=`` (RL002).
    alloc_functions: Tuple[str, ...] = ("empty", "zeros", "ones", "full")
    #: Decorator names that mark a function as JIT-compiled (``@njit(...)``
    #: / ``@numba.jit(...)``).  Inside such functions explicit loops and
    #: scalar arithmetic ARE the idiom -- the compiler fuses them -- so
    #: RL001/RL002 exempt them, and RL007 holds them to the compiled-kernel
    #: contract (``cache=True``, guarded imports) instead.
    jit_decorators: Tuple[str, ...] = ("njit", "jit")
    #: Modules whose import must stay guarded (RL007): an optional
    #: accelerator must never take the package down by merely being absent.
    jit_import_modules: Tuple[str, ...] = ("numba",)
    #: RL004 contract table (see :class:`CacheContract`).
    contracts: Tuple[CacheContract, ...] = ()
    #: RL005 resources: the registry module (suffix) and its three mirrors
    #: (paths relative to ``repo_root``).
    registry_module: str = "repro/parallel/engine.py"
    cli_module_path: str = "src/repro/cli.py"
    docs_engine_table_path: str = "docs/architecture.md"
    engine_matrix_test_path: str = "tests/properties/test_engine_matrix.py"
    #: RL006 scope: directory name + filename prefix of benchmark modules.
    bench_dir: str = "benchmarks"
    bench_prefix: str = "bench_"
    #: RL008 scope: the package (posix path fragment) that owns raw
    #: ``np.memmap`` construction; everywhere else must go through one of
    #: ``memmap_factories``.  ``memmap_releasers`` are the functions that
    #: flush + drop a mapping (see ``repro.store.format.release_memmap``);
    #: a function creating or borrowing a mapping must call one of them or
    #: register a ``weakref.finalize`` in the same body.  Factories
    #: themselves return the mapping (ownership transfer) and are exempt.
    memmap_package: str = "repro/store/"
    memmap_releasers: Tuple[str, ...] = ("release_memmap",)
    memmap_factories: Tuple[str, ...] = ("map_field",)
    #: RL009 scope: the service package (posix path fragment).  Handler
    #: coroutines (``async def``) inside it must never call a solve/sweep
    #: kernel or ECO hook directly -- a kernel on the event loop blocks
    #: every connected client for the whole sweep.  Compute belongs in
    #: synchronous session methods handed to ``run_in_executor`` (or to the
    #: coalescing batcher); calls inside ``lambda``/nested ``def`` thunks
    #: are deferred work and therefore allowed.
    serve_package: str = "repro/serve/"
    #: Kernel / solve / ECO entry points banned from handler coroutines.
    serve_kernel_calls: Tuple[str, ...] = (
        "solve",
        "solve_batch",
        "solve_scenarios",
        "solve_forest_batch",
        "sweep_scenarios",
        "sweep_scenarios_contract",
        "analyze_scenarios",
        "scenario_pin_slacks",
        "worst_slack",
        "endpoint_slacks",
        "pin_slacks",
        "critical_path",
        "certify",
        "whatif_resize_worst_slack",
        "whatif_cell_elements",
        "update_net",
        "update_instance_cell",
        "resize_instance",
    )

    def relativize(self, path: Path) -> str:
        """Repo-relative posix path when possible, absolute posix otherwise."""
        try:
            return path.resolve().relative_to(self.repo_root.resolve()).as_posix()
        except ValueError:
            return path.resolve().as_posix()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int
    snippet: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable ordering: by file, then position, then rule."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        """JSON-reporter form."""
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "snippet": self.snippet,
        }


def _parse_suppressions(
    text: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract inline suppressions from comment tokens.

    Returns ``(per_line, whole_file)``: rule ids disabled on specific lines
    and rule ids disabled for the entire file.  Tokenizing (rather than
    regexing raw lines) keeps string literals containing the marker inert.
    """
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            comment = token.string.lstrip("#").strip()
            if not comment.startswith(SUPPRESS_MARKER):
                continue
            directive = comment[len(SUPPRESS_MARKER) :].strip()
            for clause in directive.split(";"):
                clause = clause.strip()
                if clause.startswith("disable-file="):
                    whole_file.update(
                        r.strip() for r in clause[len("disable-file=") :].split(",")
                    )
                elif clause.startswith("disable="):
                    rules = {r.strip() for r in clause[len("disable=") :].split(",")}
                    per_line.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - malformed tail
        pass
    return per_line, whole_file


class Module:
    """One parsed source file: path, text, AST and inline suppressions."""

    def __init__(self, path: Path, rel: str, text: str, tree: ast.Module):
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.line_disables, self.file_disables = _parse_suppressions(text)

    @classmethod
    def parse(cls, path: Path, config: LintConfig) -> "Module":
        """Read and parse ``path`` (raises ``SyntaxError`` on bad source)."""
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(path, config.relativize(path), text, tree)

    def source_line(self, line: int) -> str:
        """The (stripped) source text at 1-indexed ``line``."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def matches(self, suffix: str) -> bool:
        """True when this module's path ends with the posix ``suffix``."""
        return self.rel.endswith(suffix)

    def is_suppressed(self, finding: Finding) -> bool:
        """True when an inline directive silences ``finding``."""
        if finding.rule in self.file_disables:
            return True
        return finding.rule in self.line_disables.get(finding.line, set())


class Project:
    """Every module of one lint run plus shared configuration."""

    def __init__(self, modules: Sequence[Module], config: LintConfig):
        self.modules = list(modules)
        self.config = config
        self._by_rel = {module.rel: module for module in self.modules}

    def find_module(self, suffix: str) -> Optional[Module]:
        """The scanned module whose path ends with ``suffix``, if any."""
        for module in self.modules:
            if module.matches(suffix):
                return module
        return None


def is_jit_decorated(node: ast.AST, jit_names: Sequence[str]) -> bool:
    """True when a function definition carries a JIT decorator.

    Matches every spelling the Numba idiom uses: bare ``@njit``, attribute
    ``@numba.njit``, and the parametrized call forms ``@njit(...)`` /
    ``@numba.jit(...)``.
    """
    for decorator in getattr(node, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Attribute) and target.attr in jit_names:
            return True
        if isinstance(target, ast.Name) and target.id in jit_names:
            return True
    return False


class Context:
    """Per-module walk state handed to every rule visit.

    ``stack`` holds the enclosing ``ClassDef`` / ``FunctionDef`` /
    ``AsyncFunctionDef`` nodes, outermost first, maintained by the
    dispatcher as it descends.
    """

    def __init__(self, module: Module, config: LintConfig):
        self.module = module
        self.config = config
        self.stack: List[ast.AST] = []

    @property
    def current_function(self) -> Optional[ast.AST]:
        """The innermost enclosing function definition, if any."""
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    @property
    def current_class(self) -> Optional[ast.ClassDef]:
        """The innermost enclosing class definition, if any."""
        for node in reversed(self.stack):
            if isinstance(node, ast.ClassDef):
                return node
        return None

    def function_names(self) -> List[str]:
        """Names of every enclosing function, outermost first."""
        return [
            node.name
            for node in self.stack
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def in_jit_kernel(self) -> bool:
        """True when any enclosing function is JIT-decorated.

        RL001/RL002 use this to exempt ``@njit`` kernels: inside compiled
        code, explicit loops and scalarization are exactly what the
        compiler wants to see.
        """
        return any(
            is_jit_decorated(node, self.config.jit_decorators)
            for node in self.stack
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )


class Rule:
    """Base class for one checker.

    Subclasses set :attr:`rule_id` / :attr:`title` and implement whichever
    hooks they need.  The dispatcher calls :meth:`visit` only for nodes
    whose type appears in :attr:`node_types` (empty means no per-node
    dispatch), and only for modules where :meth:`applies_to` returned True.
    """

    rule_id: str = "RL000"
    title: str = ""
    rationale: str = ""
    node_types: Tuple[type, ...] = ()

    def __init__(self) -> None:
        self.findings: List[Finding] = []

    def applies_to(self, module: Module, config: LintConfig) -> bool:
        """Whether this rule wants per-node dispatch for ``module``."""
        return True

    def start_module(self, module: Module, config: LintConfig) -> None:
        """Hook before ``module``'s AST walk begins."""

    def visit(self, node: ast.AST, ctx: Context) -> None:
        """Hook for every node of an interesting type, in source order."""

    def finish_module(self, module: Module, config: LintConfig) -> None:
        """Hook after ``module``'s AST walk ends."""

    def finish_project(self, project: Project) -> None:
        """Hook after every module has been walked (cross-file rules)."""

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def report(
        self,
        module: Module,
        node: ast.AST,
        message: str,
    ) -> None:
        """Record a finding anchored at ``node``'s location."""
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.report_at(module, line, col, message)

    def report_at(self, module: Module, line: int, col: int, message: str) -> None:
        """Record a finding at an explicit location in ``module``."""
        self.findings.append(
            Finding(
                rule=self.rule_id,
                message=message,
                path=module.rel,
                line=line,
                col=col,
                snippet=module.source_line(line),
            )
        )

    def report_resource(self, path: str, message: str) -> None:
        """Record a finding against a non-scanned resource (docs, config)."""
        self.findings.append(
            Finding(
                rule=self.rule_id, message=message, path=path, line=0, col=0,
                snippet="",
            )
        )


class _Dispatcher:
    """Single-pass AST walker that fans nodes out to interested rules."""

    def __init__(self, module: Module, rules: Sequence[Rule], config: LintConfig):
        self.module = module
        self.config = config
        self.ctx = Context(module, config)
        self.table: Dict[type, List[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self.table.setdefault(node_type, []).append(rule)

    def walk(self) -> None:
        """Visit the whole module tree once, in source order."""
        self._visit(self.module.tree)

    def _visit(self, node: ast.AST) -> None:
        for rule in self.table.get(type(node), ()):
            rule.visit(node, self.ctx)
        scoped = isinstance(
            node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        )
        if scoped:
            self.ctx.stack.append(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child)
        if scoped:
            self.ctx.stack.pop()


@dataclass
class LintResult:
    """Outcome of one lint run: new findings plus bookkeeping counters."""

    findings: List[Finding]
    suppressed: List[Finding]
    baselined: List[Finding]
    files_checked: int
    parse_errors: List[Finding]

    @property
    def all_current(self) -> List[Finding]:
        """New + baselined findings (what ``--write-baseline`` records)."""
        return sorted(self.findings + self.baselined, key=Finding.sort_key)

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when new findings (or unparsable files) exist."""
        return 1 if (self.findings or self.parse_errors) else 0


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _fingerprints(findings: Iterable[Finding]) -> List[Tuple[Finding, str]]:
    """Stable content-addressed keys, tolerant of line renumbering.

    The key hashes ``rule + path + stripped source line``; identical lines
    in one file are disambiguated by occurrence order, so inserting code
    above a grandfathered finding does not un-baseline it.
    """
    seen: Dict[str, int] = {}
    keyed: List[Tuple[Finding, str]] = []
    for finding in sorted(findings, key=Finding.sort_key):
        raw = f"{finding.rule}|{finding.path}|{finding.snippet}"
        index = seen.get(raw, 0)
        seen[raw] = index + 1
        digest = hashlib.sha1(f"{raw}|{index}".encode("utf-8")).hexdigest()[:16]
        keyed.append((finding, digest))
    return keyed


def load_baseline(path: Path) -> Set[str]:
    """The committed fingerprint set (empty when the file is absent)."""
    if not path.exists():
        return set()
    records = json.loads(path.read_text(encoding="utf-8"))
    return {record["fingerprint"] for record in records}


def write_baseline(findings: Iterable[Finding], path: Path) -> None:
    """Serialize ``findings`` as the new grandfathered baseline."""
    records = [
        {
            "fingerprint": digest,
            "rule": finding.rule,
            "path": finding.path,
            "snippet": finding.snippet,
        }
        for finding, digest in _fingerprints(findings)
    ]
    path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def _collect_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files listed directly included)."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
    return files


def run_paths(
    paths: Sequence[Path],
    *,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Set[str]] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` and return the result.

    ``rules`` defaults to the full registry
    (:func:`tools.reprolint.rules.all_rules`); ``baseline`` is a fingerprint
    set -- findings matching it are reported separately and do not affect
    the exit code.
    """
    if config is None:
        config = LintConfig()
    if rules is None:
        from tools.reprolint.rules import all_rules

        rules = all_rules()
    parse_errors: List[Finding] = []
    modules: List[Module] = []
    for path in _collect_files([Path(p) for p in paths]):
        try:
            modules.append(Module.parse(path, config))
        except SyntaxError as error:
            parse_errors.append(
                Finding(
                    rule="PARSE",
                    message=f"file does not parse: {error.msg}",
                    path=config.relativize(path),
                    line=error.lineno or 0,
                    col=error.offset or 0,
                    snippet="",
                )
            )
    project = Project(modules, config)
    for module in modules:
        active = [rule for rule in rules if rule.applies_to(module, config)]
        if not active:
            continue
        for rule in active:
            rule.start_module(module, config)
        _Dispatcher(module, active, config).walk()
        for rule in active:
            rule.finish_module(module, config)
    for rule in rules:
        rule.finish_project(project)

    raw = [finding for rule in rules for finding in rule.findings]
    suppressed: List[Finding] = []
    visible: List[Finding] = []
    for finding in sorted(raw, key=Finding.sort_key):
        module = project._by_rel.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            suppressed.append(finding)
        else:
            visible.append(finding)
    baselined: List[Finding] = []
    if baseline:
        fresh: List[Finding] = []
        for finding, digest in _fingerprints(visible):
            (baselined if digest in baseline else fresh).append(finding)
        visible = sorted(fresh, key=Finding.sort_key)
    return LintResult(
        findings=visible,
        suppressed=suppressed,
        baselined=baselined,
        files_checked=len(modules),
        parse_errors=parse_errors,
    )


def make_config(**overrides: object) -> LintConfig:
    """A :class:`LintConfig` with fields replaced -- test-fixture helper."""
    return replace(LintConfig(), **overrides)  # type: ignore[arg-type]
