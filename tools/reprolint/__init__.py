"""reprolint: an AST-based invariant checker for this repository's contracts.

The engine stack (flat -> graph -> scenarios -> parallel -> contraction)
rests on correctness rules that used to live only in prose: kernel modules
must not loop over the node/scenario axes in Python, shared-memory views
must be ``np.frombuffer`` views paired with lifetime management (the PR 5
segfault class), cache-bearing classes must invalidate on every mutating
write, the engine registry must stay in sync with the CLI / docs / test
matrix, and every benchmark must pin itself to a parity oracle in the same
run it measures.  ``reprolint`` turns each of those conventions into a
machine-checked rule over the stdlib :mod:`ast` -- no third-party
dependencies -- and runs as a CI gate.

Usage::

    python -m tools.reprolint [--json] [--baseline] paths...

The checker walks every ``.py`` file under the given paths exactly once,
dispatching AST nodes to the registered rules (:mod:`tools.reprolint.rules`),
applies inline suppressions (``# reprolint: disable=RL00x``) and the
committed baseline (``tools/reprolint/baseline.json`` with ``--baseline``),
and exits nonzero on new findings.

Rules shipped (see each module under ``tools/reprolint/rules/`` for the
full rationale):

========  ===============================================================
RL001     kernel purity: no Python ``for``/``while`` over node/scenario
          axes inside kernel solve/sweep functions
RL002     explicit ``dtype=`` on array allocations in kernel modules; no
          ``.tolist()`` / ``float()`` scalarization in hot kernel paths
RL003     shared-memory lifetime: no ``np.ndarray(buffer=...)`` views,
          ``SharedMemory`` blocks paired with ``weakref.finalize`` (or a
          cache + ``atexit`` release chain), no unguarded ``.close()`` /
          ``.unlink()`` after a live ``np.frombuffer`` view
RL004     cache-invalidation contract: mutating methods of the
          cache-bearing classes must invalidate (declarative table)
RL005     engine-registry completeness: registered backends must appear
          in the CLI ``--engine`` choices, the docs engine table and the
          cross-engine test matrix
RL006     oracle pinning: every ``benchmarks/bench_*.py`` test that
          measures must assert against its oracle in the same run
========  ===============================================================
"""

from tools.reprolint.core import (
    Finding,
    LintConfig,
    LintResult,
    Module,
    Project,
    Rule,
    run_paths,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Module",
    "Project",
    "Rule",
    "run_paths",
]
