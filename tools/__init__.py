"""Repository tooling: docs checks, API-doc generation and :mod:`tools.reprolint`.

This package exists so ``python -m tools.reprolint`` works from the
repository root; the standalone scripts (``check_docs.py``,
``gen_api_docs.py``) keep their direct ``python tools/<name>.py`` entry
points.
"""
