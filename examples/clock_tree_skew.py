#!/usr/bin/env python3
"""Clock-tree skew analysis with guaranteed bounds.

A clock tree is an RC tree with many outputs (the clocked flip-flops).  The
Elmore delay gives a per-leaf *estimate* of the insertion delay; the
Penfield-Rubinstein bounds give *guaranteed brackets*, so the skew between
any two leaves can itself be bounded without a single simulation.

The example builds an H-tree in a generic 1-micron process, introduces a
deliberate load imbalance, and reports:

* per-leaf Elmore delays and guaranteed arrival windows,
* the estimated skew and the guaranteed worst-case skew,
* how both change with a stronger clock driver and with wire widening,
* a cross-check of one leaf against the exact simulator.

Run with:  python examples/clock_tree_skew.py
"""

import os

from repro.apps.clocktree import clock_skew_report, h_tree
from repro.core.timeconstants import characteristic_times
from repro.mos.drivers import DriverModel
from repro.simulate.state_space import exact_step_response
from repro.utils.tables import format_table

# REPRO_EXAMPLE_FAST=1 (set by the examples smoke test) lowers simulation
# resolution; every step and printed table stays the same.
SEGMENTS = 6 if os.environ.get("REPRO_EXAMPLE_FAST") == "1" else 20


def report_tree(title, tree, threshold=0.5):
    report = clock_skew_report(tree, threshold)
    rows = []
    for leaf in sorted(report.elmore):
        rows.append(
            (
                leaf,
                report.elmore[leaf] * 1e12,
                report.earliest[leaf] * 1e12,
                report.latest[leaf] * 1e12,
            )
        )
    print(format_table(
        ["leaf", "Elmore (ps)", "earliest (ps)", "latest (ps)"],
        rows, precision=5, title=title,
    ))
    print(f"  estimated skew (Elmore)   : {report.elmore_skew * 1e12:7.2f} ps")
    print(f"  guaranteed skew bound     : {report.guaranteed_skew_bound * 1e12:7.2f} ps")
    print(f"  slowest / fastest leaves  : {report.slowest_leaf} / {report.fastest_leaf}")
    print()
    return report


def main() -> None:
    driver = DriverModel("clkbuf_x8", effective_resistance=200.0, output_capacitance=40e-15)

    # A 3-level H-tree (8 leaves) with alternating 20 fF / 30 fF clocked loads.
    unbalanced = h_tree(
        3,
        driver=driver,
        trunk_length=2e-3,
        leaf_capacitance=20e-15,
        leaf_capacitance_mismatch=(1.0, 1.5),
    )
    baseline = report_tree("Baseline H-tree (load mismatch 20 fF / 30 fF)", unbalanced)

    # Fix 1: a stronger driver.  It speeds every leaf up but barely changes the
    # skew, because the imbalance sits out at the leaves.
    stronger = h_tree(
        3,
        driver=driver.scaled(4.0),
        trunk_length=2e-3,
        leaf_capacitance=20e-15,
        leaf_capacitance_mismatch=(1.0, 1.5),
    )
    strong_report = report_tree("Same tree with a 4x stronger clock driver", stronger)

    # Fix 2: widen the wires (4x the width), cutting the wire resistance that
    # separates the mismatched loads from the common trunk.
    widened = h_tree(
        3,
        driver=driver,
        trunk_length=2e-3,
        wire_width=16e-6,
        leaf_capacitance=20e-15,
        leaf_capacitance_mismatch=(1.0, 1.5),
    )
    wide_report = report_tree("Same tree with 4x wider clock routing", widened)

    print("Summary of guaranteed skew bounds:")
    print(f"  baseline        : {baseline.guaranteed_skew_bound * 1e12:7.2f} ps")
    print(f"  stronger driver : {strong_report.guaranteed_skew_bound * 1e12:7.2f} ps")
    print(f"  wider routing   : {wide_report.guaranteed_skew_bound * 1e12:7.2f} ps")
    print()

    # Cross-check the slowest leaf against the exact simulator.
    leaf = baseline.slowest_leaf
    times = characteristic_times(unbalanced, leaf)
    exact = exact_step_response(unbalanced, segments_per_line=SEGMENTS).delay(leaf, 0.5)
    print(
        f"exact 50% arrival at {leaf}: {exact * 1e12:.2f} ps, inside "
        f"[{baseline.earliest[leaf] * 1e12:.2f}, {baseline.latest[leaf] * 1e12:.2f}] ps "
        f"(Elmore estimate {times.tde * 1e12:.2f} ps)"
    )


if __name__ == "__main__":
    main()
